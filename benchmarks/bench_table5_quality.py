"""Benchmark for Table 5 — query-result quality of OpineDB vs the baselines.

Regenerates both halves of the paper's Table 5 (hotels and restaurants) and
asserts the qualitative shape: OpineDB beats the IR baseline and the simple
rank-by-price / rank-by-rating baselines, and the attribute-based baselines
sit between those extremes.
"""

import pytest

from benchmarks.conftest import BENCH_QUERIES, print_result
from repro.experiments.exp_table5_quality import (
    format_quality_experiment,
    run_quality_experiment,
)


def _average(result, method):
    cells = [cell.quality for cell in result.cells if cell.method == method]
    return sum(cells) / len(cells)


@pytest.mark.parametrize("domain", ["hotels", "restaurants"])
def test_table5_result_quality(benchmark, domain, hotel_setup_bench, restaurant_setup_bench):
    setup = hotel_setup_bench if domain == "hotels" else restaurant_setup_bench
    result = benchmark.pedantic(
        run_quality_experiment,
        kwargs={"domain": domain, "setup": setup, "queries_per_cell": BENCH_QUERIES},
        rounds=1, iterations=1,
    )
    print_result(format_quality_experiment(result))

    opine = _average(result, "OpineDB")
    ir = _average(result, "GZ12 (IR-based)")
    by_price = _average(result, "ByPrice")
    by_rating = _average(result, "ByRating")
    one_attribute = _average(result, "1-Attribute")

    # Paper's Table 5 shape: OpineDB outperforms the IR baseline and the
    # simple attribute orderings; richer attribute combinations close part of
    # the gap (especially in the restaurant domain).
    assert opine > ir
    assert opine > by_price
    assert opine > by_rating
    assert one_attribute > by_price
    # All qualities are valid normalised scores.
    assert all(0.0 <= cell.quality <= 1.0 for cell in result.cells)
    if domain == "hotels":
        # The margin over the IR baseline is sizeable for hotels (the domain
        # with many reviews per entity), as in the paper (~0.05–0.15).
        assert opine - ir > 0.03
