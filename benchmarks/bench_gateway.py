"""Closed-loop Zipfian load against the serving gateway vs a naive front.

The gateway (PR 6) is the stack's front door: an asyncio server that
coalesces identical in-flight requests into one shared execution, folds
concurrent arrivals into ``run_batch`` micro-batches, and bounds its queue
with typed admission control.  This benchmark measures what that buys a
serving deployment under the traffic shape it was built for — **Zipfian
popularity skew** from many concurrent clients (a few queries dominate,
exactly the regime the plan/membership caches and the coalescing map
exploit):

* **naive front** — the same gateway process with coalescing and
  micro-batching disabled (``coalesce=False, batch_window=0,
  max_batch_size=1``) and one-connection-one-query clients: every request
  opens a fresh TCP connection and executes privately, the
  pre-gateway way of putting the engine behind a socket;
* **gateway** — the default configuration: persistent connections,
  identical in-flight requests share one execution, concurrent arrivals
  share one ``run_batch``.

Both fronts drive the **same** :class:`ClusterQueryEngine` (TCP shard
nodes — the deployment topology the gateway exists for) with the same
seeded per-client schedules, the coordinator membership cache flushed
before every timed pass, passes interleaved so both see the same noise
windows.  Assertions pin the contract from ISSUE 6: every transported
response **bit-identical** to the serial engine, ≥ 30% of gateway requests
served via coalescing or micro-batch sharing, zero admission rejections in
either mode, and gateway throughput ≥ 2× the naive front with ≥ 100
simulated clients.  Results are recorded in ``BENCH_gateway.json`` at the
repository root.

Scale knobs: ``REPRO_BENCH_GATEWAY_CLIENTS`` (default 100, floored at
100), ``REPRO_BENCH_GATEWAY_REQUESTS`` (per client, default 10, floored
at 5), ``REPRO_BENCH_GATEWAY_ENTITIES`` (default 800, floored at 400) and
``REPRO_BENCH_GATEWAY_NODES`` (default 2, floored at 2).
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_result
from repro.experiments.common import ExperimentTable
from repro.serving import (
    AsyncGatewayClient,
    ClusterQueryEngine,
    ServingGateway,
    SubjectiveQueryEngine,
)
from repro.testing import build_synthetic_columnar_database, env_int

pytestmark = pytest.mark.slow

#: The measurement harness, recorded verbatim under ``"harness"`` in the
#: results document so a stale ``BENCH_gateway.json`` is detectable.  Must
#: stay a pure literal — ``tools/check_bench_floors.py`` reads it with
#: ``ast.literal_eval`` and warns when it drifts from the committed JSON.
HARNESS = {
    "benchmark": "bench_gateway",
    "domain": "synthetic",
    "clients_default": 100,
    "requests_per_client_default": 10,
    "entities_default": 800,
    "entities_env": "REPRO_BENCH_GATEWAY_ENTITIES",
    "num_nodes_default": 2,
    "zipf_s": 1.1,
    "top_k": 10,
    "passes": 3,
    "timing": "best-of-zipfian-client-passes",
    "speedup_floor": 2.0,
    "shared_fraction_floor": 0.3,
}

NUM_CLIENTS = max(100, env_int("REPRO_BENCH_GATEWAY_CLIENTS", 100))
REQUESTS_PER_CLIENT = max(5, env_int("REPRO_BENCH_GATEWAY_REQUESTS", 10))
GATEWAY_ENTITIES = max(400, env_int("REPRO_BENCH_GATEWAY_ENTITIES", 800))
NUM_NODES = max(2, env_int("REPRO_BENCH_GATEWAY_NODES", 2))
ZIPF_S = 1.1
TOP_K = 10
SPEEDUP_FLOOR = 2.0
SHARED_FLOOR = 0.3
PASSES = 3
PASS_TIMEOUT = 120.0
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_gateway.json"

#: The popularity pool: 32 distinct predicate-pair queries.  Zipfian rank
#: probabilities over this pool give the head queries most of the traffic
#: (rank 1 alone draws ~¼ of all requests at s=1.1), which is what makes
#: coalescing meaningful — and is how real subjective-query traffic skews.
_QUALITY = [f"word{index:03d}" for index in range(8)]
_SERVICE = [f"word{index:03d}" for index in range(16, 24)]
QUERY_POOL = [
    sql
    for index in range(8)
    for sql in (
        'select * from Entities where '
        f'"{_QUALITY[index]}" and "{_SERVICE[index]}" limit {TOP_K}',
        'select * from Entities where '
        f'"{_QUALITY[index]}" or "{_SERVICE[(index + 1) % 8]}" limit {TOP_K}',
        'select * from Entities where '
        f'"{_QUALITY[(index + 3) % 8]}" and not "{_SERVICE[index]}" limit {TOP_K}',
        'select * from Entities where '
        f'not "{_QUALITY[index]}" or "{_SERVICE[(index + 5) % 8]}" limit {TOP_K}',
    )
][:32]


def zipfian_schedules(seed: int) -> list[list[str]]:
    """One seeded Zipfian request schedule per simulated client.

    Query ``rank`` (0-based) is drawn with probability proportional to
    ``1 / (rank + 1) ** ZIPF_S`` — the closed-form popularity skew of web
    and query traffic.  The same seed yields the same schedules, so the
    naive and gateway passes replay identical traffic.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(QUERY_POOL))]
    return [
        rng.choices(QUERY_POOL, weights=weights, k=REQUESTS_PER_CLIENT)
        for _ in range(NUM_CLIENTS)
    ]


async def _drive_clients(host, port, schedules, reconnect_per_request):
    """Closed-loop clients: each awaits its reply before its next request.

    Returns every ``(client, request_index, sql, reply)`` so the caller can
    check each transported response against the serial engine.
    """

    async def one_client(schedule):
        replies = []
        client = None
        for sql in schedule:
            if client is None:
                client = await AsyncGatewayClient.connect(host, port)
            replies.append((sql, await client.query(sql)))
            if reconnect_per_request:
                await client.close()
                client = None
        if client is not None:
            await client.close()
        return replies

    nested = await asyncio.gather(*(one_client(schedule) for schedule in schedules))
    return [pair for replies in nested for pair in replies]


def _one_pass(engine, schedules, *, naive: bool):
    """(queries/s, replies, counters) of one pass with a flushed membership cache.

    Each pass runs a fresh gateway (fresh counters) over the shared engine
    on its own event loop; the engine's membership cache is flushed first so
    both fronts pay the same post-flush degree recomputation and the
    comparison isolates the front's discipline — private per-request
    executions versus coalesced, micro-batched ones.
    """
    engine.membership_cache.clear()

    async def body():
        if naive:
            gateway = ServingGateway(
                engine, coalesce=False, batch_window=0.0, max_batch_size=1
            )
        else:
            gateway = ServingGateway(engine)
        host, port = await gateway.start()
        try:
            started = time.perf_counter()
            replies = await _drive_clients(
                host, port, schedules, reconnect_per_request=naive
            )
            elapsed = time.perf_counter() - started
        finally:
            await gateway.stop()
        return len(replies) / elapsed, replies, gateway.counters

    return asyncio.run(asyncio.wait_for(body(), timeout=PASS_TIMEOUT))


@pytest.fixture(scope="module")
def synthetic_database():
    return build_synthetic_columnar_database(num_entities=GATEWAY_ENTITIES, seed=0)


def test_gateway_speedup_over_naive_front(synthetic_database):
    database = synthetic_database
    serial = SubjectiveQueryEngine(database=database)
    expected = {sql: serial.execute(sql) for sql in QUERY_POOL}
    schedules = zipfian_schedules(seed=17)
    total_requests = sum(len(schedule) for schedule in schedules)
    engine = ClusterQueryEngine(database=database, num_nodes=NUM_NODES)
    try:
        # Untimed warm-up: hydrate the nodes and build plans/candidates so
        # every timed pass pays exactly the post-flush serving work.
        for sql in QUERY_POOL:
            engine.execute(sql)

        naive_qps = gateway_qps = 0.0
        gateway_counters = None
        all_replies = []
        for _ in range(PASSES):
            qps, replies, _ = _one_pass(engine, schedules, naive=True)
            naive_qps = max(naive_qps, qps)
            all_replies.append(replies)
            qps, replies, counters = _one_pass(engine, schedules, naive=False)
            if qps > gateway_qps:
                gateway_qps, gateway_counters = qps, counters
            all_replies.append(replies)
        speedup = gateway_qps / naive_qps

        # Every transported response — both fronts, every pass — must be
        # bit-identical to the serial engine: ids, scores and degrees.
        for replies in all_replies:
            assert len(replies) == total_requests
            for sql, reply in replies:
                result = expected[sql]
                assert reply.entity_ids == [str(e.entity_id) for e in result.entities], sql
                assert reply.scores == [e.score for e in result.entities], sql
                assert reply.predicate_degrees == [
                    dict(e.predicate_degrees) for e in result.entities
                ], sql

        # The sharing contract: under Zipfian skew at this concurrency a
        # third of requests must ride on someone else's execution.
        shared_fraction = gateway_counters.shared_requests / gateway_counters.requests
        assert gateway_counters.rejections == 0  # closed loop never overloads

        table = ExperimentTable(
            title=(
                f"Serving gateway under Zipfian load ({len(database)} entities, "
                f"{NUM_NODES} nodes, {NUM_CLIENTS} clients x {REQUESTS_PER_CLIENT} requests)"
            ),
            columns=["front", "qps"],
        )
        table.add_row("naive (one-connection-one-query)", round(naive_qps, 1))
        table.add_row("gateway (coalesce + micro-batch)", round(gateway_qps, 1))
        table.add_row("speedup", round(speedup, 2))
        table.add_row("shared fraction", round(shared_fraction, 3))
        print_result(table.format())

        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "bench_gateway",
                    "domain": "synthetic",
                    "entities": len(database),
                    "num_nodes": NUM_NODES,
                    "clients": NUM_CLIENTS,
                    "requests_per_client": REQUESTS_PER_CLIENT,
                    "requests": total_requests,
                    "distinct_queries": len(QUERY_POOL),
                    "zipf_s": ZIPF_S,
                    "naive_qps": round(naive_qps, 2),
                    "gateway_qps": round(gateway_qps, 2),
                    "speedup": round(speedup, 2),
                    "speedup_floor": SPEEDUP_FLOOR,
                    "shared_fraction": round(shared_fraction, 3),
                    "shared_fraction_floor": SHARED_FLOOR,
                    "responses_bit_identical": True,
                    "rejections": gateway_counters.rejections,
                    "harness": HARNESS,
                },
                indent=2,
            )
            + "\n"
        )

        assert shared_fraction >= SHARED_FLOOR, (
            f"only {shared_fraction:.1%} of requests shared an execution"
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"gateway only {speedup:.2f}x the naive front"
        )
    finally:
        engine.close()
