"""Cold-path win of bound-based top-k pruning over the full scan.

The pruned ranking path (ISSUE 7) maintains per-slice score-bound
summaries, propagates the running k-th score down the AND-path of the
WHERE tree, and skips the exact kernel for every entity whose upper
bound cannot reach the heap.  This benchmark measures the cold
(membership-cache-flushed) query path of two otherwise identical
serial sharded engines over the same synthetic domain:

* **full** — ``ShardedSubjectiveQueryEngine(prune_topk=False)``, which
  scores every candidate entity exactly;
* **pruned** — the default engine, which consults the bound summaries
  first and only runs the exact kernel over the survivors.

Both engines share plan/candidate caches and built column arrays across
the timed passes; the bound summaries persist across cache flushes (they
are invalidated by ``data_version``, not by the membership cache), so the
measurement isolates exactly the steady-state cold-query contrast: full
kernel scan versus bound screen plus survivor scan.

Assertions pin the contract from ISSUE 7: rankings (ids *and* scores)
exactly equal to the unpruned engine, strictly fewer entities scored,
and ≥ 1.5× cold-path speedup on selective ``limit 5`` conjunctions over
a ≥ 1600-entity synthetic domain.  Results are recorded in
``BENCH_pruned.json`` at the repository root, together with the
``HARNESS`` parameters that produced them.

Scale knob: ``REPRO_BENCH_PRUNED_ENTITIES`` (default 1600, floored at
1600).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_result
from repro.experiments.common import ExperimentTable
from repro.serving import ShardedSubjectiveQueryEngine
from repro.testing import build_synthetic_columnar_database, env_int

pytestmark = pytest.mark.slow

#: The measurement harness, recorded verbatim under ``"harness"`` in the
#: results document so a stale ``BENCH_pruned.json`` is detectable.  Must
#: stay a pure literal — ``tools/check_bench_floors.py`` reads it with
#: ``ast.literal_eval`` and warns when it drifts from the committed JSON.
HARNESS = {
    "benchmark": "bench_pruned_topk",
    "domain": "synthetic",
    "entities_default": 1600,
    "entities_env": "REPRO_BENCH_PRUNED_ENTITIES",
    "num_shards": 4,
    "backend": "serial",
    "top_k": 5,
    "queries": 5,
    "passes": 14,
    "timing": "best-of-interleaved-cold-passes",
    "speedup_floor": 1.5,
}

PRUNED_ENTITIES = max(
    HARNESS["entities_default"],
    env_int(HARNESS["entities_env"], HARNESS["entities_default"]),
)
NUM_SHARDS = HARNESS["num_shards"]
SPEEDUP_FLOOR = HARNESS["speedup_floor"]
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_pruned.json"

#: Selective conjunctive top-5 queries — the pruned path's home turf:
#: small k, AND roots whose threshold transfers to every operand.
QUERIES = [
    'select * from Entities where "word003" and "word019" limit 5',
    'select * from Entities where "word001" and "word002" and "word020" limit 5',
    'select * from Entities where "word007" and "word023" limit 5',
    "select * from Entities where city = 'london' and \"word004\" limit 5",
    'select * from Entities where "word011" and "word017" limit 5',
]


@pytest.fixture(scope="module")
def synthetic_database():
    return build_synthetic_columnar_database(num_entities=PRUNED_ENTITIES, seed=0)


def _one_cold_pass(engine) -> float:
    """Queries per second of one membership-cache-flushed workload pass."""
    engine.membership_cache.clear()
    started = time.perf_counter()
    for sql in QUERIES:
        engine.execute(sql)
    return len(QUERIES) / (time.perf_counter() - started)


def _cold_queries_per_second(engines, passes: int = 14) -> list[float]:
    """Best-of-``passes`` cold throughput per engine, passes interleaved.

    Plans, candidate rows, column arrays and bound summaries stay warm
    (one untimed pass builds them), so each timed query pays exactly the
    membership-cache-miss scoring work.  Interleaving exposes both
    engines to the same scheduler-noise windows; the per-engine maxima
    are stable estimators of sustainable throughput.
    """
    for engine in engines:
        for sql in QUERIES:
            engine.execute(sql)
    best = [0.0] * len(engines)
    for _ in range(passes):
        for position, engine in enumerate(engines):
            best[position] = max(best[position], _one_cold_pass(engine))
    return best


def test_pruned_topk_cold_path_speedup(synthetic_database):
    database = synthetic_database
    full = ShardedSubjectiveQueryEngine(
        database=database, num_shards=NUM_SHARDS, prune_topk=False
    )
    pruned = ShardedSubjectiveQueryEngine(database=database, num_shards=NUM_SHARDS)

    # Rankings — ids and scores — must be exactly those of the full scan
    # (the differential suite additionally pins per-predicate degrees).
    for sql in QUERIES:
        expected = full.execute(sql)
        actual = pruned.execute(sql)
        assert actual.entity_ids == expected.entity_ids, sql
        assert [entity.score for entity in actual] == [
            entity.score for entity in expected
        ], sql

    # One cold pass each, to pin the work contract before timing: the
    # pruned engine must settle strictly more rows from bounds alone.
    full.entities_scored = full.entities_pruned = 0
    pruned.entities_scored = pruned.entities_pruned = 0
    _one_cold_pass(full)
    _one_cold_pass(pruned)
    assert full.entities_pruned == 0
    assert pruned.entities_pruned > 0
    assert 0 < pruned.entities_scored < full.entities_scored

    full_qps, pruned_qps = _cold_queries_per_second(
        [full, pruned], passes=HARNESS["passes"]
    )
    speedup = pruned_qps / full_qps

    table = ExperimentTable(
        title=(
            f"Bound-pruned cold-path serving ({len(database)} entities, "
            f"top-{HARNESS['top_k']}, {NUM_SHARDS} serial shards)"
        ),
        columns=["engine", "queries", "qps"],
    )
    table.add_row("full scan", len(QUERIES), round(full_qps, 1))
    table.add_row("bound-pruned", len(QUERIES), round(pruned_qps, 1))
    table.add_row("speedup", "", round(speedup, 2))
    print_result(table.format())

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "benchmark": "bench_pruned_topk",
                "domain": "synthetic",
                "entities": len(database),
                "num_shards": NUM_SHARDS,
                "backend": "serial",
                "queries": len(QUERIES),
                "full_qps": round(full_qps, 2),
                "pruned_qps": round(pruned_qps, 2),
                "speedup": round(speedup, 2),
                "speedup_floor": SPEEDUP_FLOOR,
                "entities_scored_full": full.entities_scored,
                "entities_scored_pruned": pruned.entities_scored,
                "entities_pruned": pruned.entities_pruned,
                "rankings_identical": True,
                "harness": HARNESS,
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"bound-pruned cold path only {speedup:.2f}x the full scan"
    )
