"""Cold boot from the persistent storage tier vs rebuild-from-reviews.

The storage tier's economic claim is that restart cost stops scaling with
the corpus: a database booted from disk maps its column files and reads
the catalog, while the rebuild path re-runs everything the save amortised
— summary construction, text-model fitting, and the scalar column
derivation.  Two measurements pin that:

* **10k-entity boot speedup.**  Best-of-passes wall-clock of
  ``SubjectiveDatabase.open`` (plus forcing both attributes' serving
  columns, so the mmap path really executes) against rebuilding the same
  database from its review corpus and deriving the columns in RAM.  The
  floor: disk boot is ≥ 3× faster (``boot_speedup``).

* **Scale arm (≥100k entities).**  :func:`repro.storage.generate_synthetic_store`
  writes a consistent 100k-entity directory straight to disk — far past
  what the rebuild path could produce in bench time — and the boot and
  first-query-ready times are recorded to show the boot cost curve stays
  flat in the corpus size (recorded, not floored: absolute times are
  machine-dependent).

Results land in ``BENCH_persist.json``.  Scale knobs:
``REPRO_BENCH_PERSIST_ENTITIES`` (default 10000, floored at 500) and
``REPRO_BENCH_PERSIST_BIG_ENTITIES`` (default 100000, floored at 5000).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_result
from repro.core.database import SubjectiveDatabase
from repro.experiments.common import ExperimentTable
from repro.storage import PersistentColumnarStore, generate_synthetic_store
from repro.storage.synthetic import SYNTHETIC_ATTRIBUTE
from repro.testing import build_synthetic_columnar_database, env_int

pytestmark = pytest.mark.slow

#: The measurement harness, recorded verbatim under ``"harness"`` in the
#: results document so a stale ``BENCH_persist.json`` is detectable.  Must
#: stay a pure literal — ``tools/check_bench_floors.py`` reads it with
#: ``ast.literal_eval`` and warns when it drifts from the committed JSON.
HARNESS = {
    "benchmark": "bench_persistent_boot",
    "domain": "synthetic",
    "entities_default": 10000,
    "entities_env": "REPRO_BENCH_PERSIST_ENTITIES",
    "big_entities_default": 100000,
    "big_entities_env": "REPRO_BENCH_PERSIST_BIG_ENTITIES",
    "markers_per_attribute": 16,
    "dimension": 48,
    "passes": 3,
    "timing": "best-of-passes; boot = open + force both attributes' columns",
    "boot_speedup_floor": 3.0,
}

ENTITIES = max(500, env_int("REPRO_BENCH_PERSIST_ENTITIES", 10_000))
BIG_ENTITIES = max(5_000, env_int("REPRO_BENCH_PERSIST_BIG_ENTITIES", 100_000))
MARKERS = 16
DIMENSION = 48
PASSES = 3
BOOT_SPEEDUP_FLOOR = 3.0
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_persist.json"


def _scratch_dir(prefix: str) -> str:
    """A scratch storage directory honoring ``REPRO_STORAGE_DIR``."""
    base = os.environ.get("REPRO_STORAGE_DIR")
    if base:
        os.makedirs(base, exist_ok=True)
    return tempfile.mkdtemp(prefix=prefix, dir=base or None)


def _best_s(action, passes: int = PASSES) -> float:
    """Best-of-``passes`` wall-clock of ``action`` in seconds."""
    best = float("inf")
    for _ in range(passes):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best


def _force_columns(database: SubjectiveDatabase) -> object:
    """Build (or map) every subjective attribute's serving columns."""
    store = database.columnar_store()
    for attribute in database.schema.subjective_attributes:
        assert store.columns(attribute.name) is not None
    return store


def _rebuild_from_reviews() -> SubjectiveDatabase:
    """The no-storage-tier restart: rebuild the database and its columns."""
    database = build_synthetic_columnar_database(
        num_entities=ENTITIES, markers_per_attribute=MARKERS, dimension=DIMENSION, seed=0
    )
    _force_columns(database)
    return database


def _boot_from_disk(directory: str) -> SubjectiveDatabase:
    """The storage-tier restart: map the columns, read the catalog."""
    database = SubjectiveDatabase.open(directory)
    _force_columns(database)
    return database


def test_persistent_boot_benchmark():
    directory = _scratch_dir("repro-bench-persist-")
    big_directory = _scratch_dir("repro-bench-persist-big-")
    try:
        # --- 10k arm: rebuild vs boot ---------------------------------------
        rebuild_s = _best_s(_rebuild_from_reviews)
        database = build_synthetic_columnar_database(
            num_entities=ENTITIES, markers_per_attribute=MARKERS, dimension=DIMENSION, seed=0
        )
        started = time.perf_counter()
        database.save(directory)
        save_s = time.perf_counter() - started
        boot_s = _best_s(lambda: _boot_from_disk(directory))

        booted = SubjectiveDatabase.open(directory)
        store = _force_columns(booted)
        assert isinstance(store, PersistentColumnarStore)
        mmap_serves = store.mmap_serves
        assert mmap_serves == len(booted.schema.subjective_attributes)
        assert len(booted.entities()) == len(database.entities())
        boot_speedup = rebuild_s / boot_s

        # --- scale arm: ≥100k entities straight from disk -------------------
        started = time.perf_counter()
        generate_synthetic_store(
            big_directory, num_entities=BIG_ENTITIES, num_markers=8, dimension=8
        )
        generate_s = time.perf_counter() - started
        big_boot_s = _best_s(lambda: _boot_from_disk(big_directory))
        big = SubjectiveDatabase.open(big_directory)
        big_columns = big.columnar_store().columns(SYNTHETIC_ATTRIBUTE)
        assert big_columns is not None and big_columns.num_entities == BIG_ENTITIES

        table = ExperimentTable(
            title=f"Persistent boot ({ENTITIES} entities; scale arm {BIG_ENTITIES})",
            columns=["measurement", "value"],
        )
        table.add_row("rebuild from reviews (s)", round(rebuild_s, 3))
        table.add_row("cold boot from disk (s)", round(boot_s, 3))
        table.add_row("boot speedup", round(boot_speedup, 2))
        table.add_row("save (s)", round(save_s, 3))
        table.add_row(f"boot {BIG_ENTITIES} entities (s)", round(big_boot_s, 3))
        table.add_row("mmap-served attributes", mmap_serves)
        print_result(table.format())

        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "bench_persistent_boot",
                    "domain": "synthetic",
                    "entities": ENTITIES,
                    "big_entities": BIG_ENTITIES,
                    "rebuild_s": round(rebuild_s, 4),
                    "boot_s": round(boot_s, 4),
                    "boot_speedup": round(boot_speedup, 2),
                    "boot_speedup_floor": BOOT_SPEEDUP_FLOOR,
                    "save_s": round(save_s, 4),
                    "big_generate_s": round(generate_s, 4),
                    "big_boot_s": round(big_boot_s, 4),
                    "mmap_served_attributes": mmap_serves,
                    "harness": HARNESS,
                },
                indent=2,
            )
            + "\n"
        )

        assert boot_speedup >= BOOT_SPEEDUP_FLOOR, (
            f"cold boot from disk only {boot_speedup:.2f}x the rebuild "
            f"(floor {BOOT_SPEEDUP_FLOOR}x)"
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)
        shutil.rmtree(big_directory, ignore_errors=True)
