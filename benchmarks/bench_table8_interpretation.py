"""Benchmark for Table 8 — predicate-interpretation accuracy."""

from benchmarks.conftest import print_result
from repro.experiments.exp_table8_interpretation import (
    format_interpretation_experiment,
    run_interpretation_experiment,
)


def test_table8_interpretation_accuracy(benchmark, hotel_setup_bench, restaurant_setup_bench):
    result = benchmark.pedantic(
        run_interpretation_experiment,
        kwargs={
            "domains": ("hotels", "restaurants"),
            "setups": {"hotels": hotel_setup_bench, "restaurants": restaurant_setup_bench},
            "max_predicates": 120,
        },
        rounds=1, iterations=1,
    )
    print_result(format_interpretation_experiment(result))
    for query_set in ("Hotel queries", "Restaurant queries"):
        w2v = result.accuracy(query_set, "w2v")
        cooccur = result.accuracy(query_set, "co-occur")
        combined = result.accuracy(query_set, "w2v+co-occur")
        # Paper's Table 8 shape: the word2vec method is accurate on its own
        # (>80%), the co-occurrence method is weaker, and the combined
        # three-stage algorithm is at least as good as word2vec alone.
        assert w2v >= 0.8
        assert combined >= w2v - 1e-9
        assert cooccur <= combined + 1e-9
