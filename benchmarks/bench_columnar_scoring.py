"""Cold-path scoring throughput: columnar kernels vs the scalar per-entity path.

The serving layer (PR 1) made *warm* traffic fast; this benchmark measures
the *cold* path that remains when every membership degree must be computed
from the summaries — the serving engine's membership-cache-miss work.  Query
plans, candidate rows, and predicate interpretations are prepared once and
shared by both sides (the engine caches those even on a membership miss);
each measured request then re-scores every candidate entity from scratch:

* **scalar** — ``use_columnar=False``: one Python-loop
  :meth:`MembershipFunction.degrees` pass per predicate, entity by entity;
* **columnar** — the default path through
  :class:`repro.core.columnar.ColumnarSummaryStore`: per predicate, a
  handful of NumPy kernel calls over dense per-attribute summary arrays.

Assertions pin the contract from ISSUE 2: rankings identical to sequential
:class:`SubjectiveQueryProcessor` execution, and columnar cold-path
throughput at least 5× the scalar path on a ≥200-entity domain.  Results
are recorded in ``BENCH_columnar.json`` at the repository root.

Scale knobs: ``REPRO_BENCH_COLUMNAR_ENTITIES`` (default 200, floored at
200) and ``REPRO_BENCH_COLUMNAR_REVIEWS`` (default 6).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_result
from repro.core import SubjectiveQueryProcessor
from repro.datasets.queries import HOTEL_OPTIONS, generate_workload, hotel_predicate_bank
from repro.experiments.common import ExperimentTable
from repro.testing import build_domain_setup, env_int

pytestmark = pytest.mark.slow

#: The measurement harness, recorded verbatim under ``"harness"`` in the
#: results document so a stale ``BENCH_columnar.json`` is detectable.  Must
#: stay a pure literal — ``tools/check_bench_floors.py`` reads it with
#: ``ast.literal_eval`` and warns when it drifts from the committed JSON.
HARNESS = {
    "benchmark": "bench_columnar_scoring",
    "domain": "hotels",
    "entities_default": 200,
    "entities_env": "REPRO_BENCH_COLUMNAR_ENTITIES",
    "reviews_per_entity_default": 6,
    "queries": 12,
    "timing": "scalar-vs-columnar-batch-scoring",
    "speedup_floor": 5.0,
}

COLUMNAR_ENTITIES = max(200, env_int("REPRO_BENCH_COLUMNAR_ENTITIES", 200))
COLUMNAR_REVIEWS = env_int("REPRO_BENCH_COLUMNAR_REVIEWS", 6)
SPEEDUP_FLOOR = 5.0
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"


@pytest.fixture(scope="module")
def columnar_setup():
    """Hotel domain at columnar-benchmark scale (≥200 entities)."""
    return build_domain_setup(
        "hotels",
        num_entities=COLUMNAR_ENTITIES,
        reviews_per_entity=COLUMNAR_REVIEWS,
        seed=0,
    )


def _hotel_workload(num_queries: int = 12) -> list[str]:
    """Distinct hotel-workload queries across options and difficulties."""
    bank = hotel_predicate_bank()
    sqls: list[str] = []
    per_cell = max(1, num_queries // (len(HOTEL_OPTIONS) * 2))
    for option_name, conditions in sorted(HOTEL_OPTIONS.items()):
        for difficulty in ("easy", "medium"):
            workload = generate_workload(
                bank, option_name, conditions, difficulty,
                num_queries=per_cell, domain="hotels", seed=23,
            )
            sqls.extend(query.sql for query in workload)
    return sqls


def test_columnar_cold_path_speedup(columnar_setup):
    database = columnar_setup.database
    sqls = _hotel_workload()

    scalar = SubjectiveQueryProcessor(database, use_columnar=False)
    columnar = SubjectiveQueryProcessor(database)

    # End-to-end rankings must be identical to sequential execution.
    for sql in sqls:
        scalar_result = scalar.execute(sql)
        columnar_result = columnar.execute(sql)
        assert columnar_result.entity_ids == scalar_result.entity_ids, sql

    # Shared prepared plans: parsing/interpretation/candidate rows are cached
    # even on a serving-layer membership miss, so the cold path under test is
    # pure scoring + ranking over all candidates.
    plans = []
    for sql in sqls:
        statement = scalar.prepare_statement(sql)
        candidates = scalar.candidate_rows(statement)
        interpretations = scalar.interpret_predicates(statement)
        plans.append((sql, statement, candidates, interpretations))

    def passes_per_second(processor: SubjectiveQueryProcessor, repeats: int) -> float:
        started = time.perf_counter()
        for _ in range(repeats):
            for sql, statement, candidates, interpretations in plans:
                processor.rank_candidates(statement, candidates, interpretations, sql=sql)
        elapsed = time.perf_counter() - started
        return repeats * len(plans) / elapsed

    passes_per_second(columnar, 1)  # build the column arrays outside the timing
    scalar_qps = passes_per_second(scalar, 1)
    columnar_qps = passes_per_second(columnar, 5)
    speedup = columnar_qps / scalar_qps

    table = ExperimentTable(
        title=f"Columnar cold-path scoring ({len(database)} entities, hotel workload)",
        columns=["path", "queries", "qps"],
    )
    table.add_row("scalar per-entity", len(sqls), round(scalar_qps, 1))
    table.add_row("columnar kernels", len(sqls), round(columnar_qps, 1))
    table.add_row("speedup", "", round(speedup, 2))
    print_result(table.format())

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "benchmark": "bench_columnar_scoring",
                "domain": "hotels",
                "entities": len(database),
                "reviews_per_entity": COLUMNAR_REVIEWS,
                "queries": len(sqls),
                "scalar_qps": round(scalar_qps, 2),
                "columnar_qps": round(columnar_qps, 2),
                "speedup": round(speedup, 2),
                "speedup_floor": SPEEDUP_FLOOR,
                "rankings_identical": True,
                "harness": HARNESS,
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar cold path only {speedup:.2f}x the scalar path"
    )
