"""Benchmark for Table 7 — marker summaries vs raw-extraction processing.

Runs on the dense hotel setup (many reviews per entity), which is the regime
where the paper's 3.3×–6.6× speedups arise: the marker-based membership
functions read only the per-entity summaries while the marker-free variant
scans every extracted phrase of the entity at query time.
"""

from benchmarks.conftest import print_result
from repro.experiments.exp_table7_markers import (
    format_marker_experiment,
    run_marker_experiment,
)


def test_table7_markers_vs_no_markers(benchmark, hotel_setup_dense):
    result = benchmark.pedantic(
        run_marker_experiment,
        kwargs={
            "domains": ("hotels",),
            "setups": {"hotels": hotel_setup_dense},
            "num_markers": 10,
            "queries_per_set": 15,
            "membership_examples": 1000,
        },
        rounds=1, iterations=1,
    )
    print_result(format_marker_experiment(result))
    total_with = total_without = 0.0
    for option in ("london_under_300", "amsterdam"):
        with_markers = result.row(option, "10-mkrs")
        without = result.row(option, "no-mkrs")
        total_with += with_markers.runtime_seconds
        total_without += without.runtime_seconds
        # Per-option timings are noisy at this scale; require only that the
        # marker-based variant is not substantially slower anywhere...
        assert result.speedup(option) > 0.8
        # ...while result quality and membership accuracy stay comparable.
        assert with_markers.ndcg_at_10 > without.ndcg_at_10 - 0.15
        assert with_markers.lr_accuracy > without.lr_accuracy - 0.15
        assert 0.4 <= with_markers.lr_accuracy <= 1.0
    # Shape of Table 7: over the whole workload, marker summaries accelerate
    # query processing (the factor grows with reviews per entity).
    assert total_without > total_with
