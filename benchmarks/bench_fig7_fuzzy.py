"""Benchmark for Figure 7 / Appendix A — fuzzy combination vs hard thresholds."""

from benchmarks.conftest import print_result
from repro.experiments.exp_fig7_fuzzy import format_fuzzy_comparison, run_fuzzy_comparison


def test_fig7_fuzzy_vs_hard_constraints(benchmark):
    result = benchmark(
        run_fuzzy_comparison,
        fuzzy_score_threshold=0.06,
        hard_thresholds=(0.2, 0.3),
        num_entities=5000,
        seed=0,
    )
    print_result(format_fuzzy_comparison(result))
    # Figure 7's message: the fuzzy acceptance region strictly contains
    # entities the hard thresholds reject (the shaded area), so hard
    # constraints lose relevant results.
    assert result.accepted_fuzzy > result.accepted_hard
    assert result.missed_by_hard > 0
    assert result.missed_fraction > 0.05
    # Boundary curves: once A2 clears its hard threshold, the fuzzy rule
    # accepts strictly smaller A1 degrees than the hard rule for large A2.
    assert result.fuzzy_boundary[-1] < result.hard_boundary[-1]
