"""Benchmark for Table 2 — example outputs of the co-occurrence method."""

from benchmarks.conftest import print_result
from repro.experiments.exp_table2_cooccurrence import (
    format_cooccurrence_examples,
    run_cooccurrence_examples,
)


def test_table2_cooccurrence_examples(benchmark, hotel_setup_bench, restaurant_setup_bench):
    result = benchmark.pedantic(
        run_cooccurrence_examples,
        kwargs={
            "domains": ("hotels", "restaurants"),
            "setups": {"hotels": hotel_setup_bench, "restaurants": restaurant_setup_bench},
        },
        rounds=1, iterations=1,
    )
    print_result(format_cooccurrence_examples(result))
    # Every out-of-schema predicate of both banks receives an interpretation
    # row, and a sizeable share of the top-1 interpretations hit one of the
    # gold proxy attributes (the paper's Table 2 is qualitative; the
    # co-occurrence method is its least accurate component at 68–72%).
    assert len(result.examples) >= 15
    assert result.plausible_fraction >= 0.3
