"""Ablation: fuzzy product t-norm vs Zadeh min/max vs hard thresholds.

The paper motivates the multiplication variant of fuzzy logic but does not
quantify the choice; this ablation measures result quality on a hotel
workload under the two fuzzy variants and under crisp per-condition
thresholds (the Appendix-A strawman).
"""


from benchmarks.conftest import print_result
from repro.core.fuzzy import ProductLogic, ZadehLogic
from repro.core.processor import SubjectiveQueryProcessor
from repro.datasets.queries import generate_workload
from repro.experiments.common import ExperimentTable, result_quality


def _workload(setup, option="london_under_300", difficulty="medium", n=12):
    return generate_workload(
        setup.predicate_bank, option, setup.options[option], difficulty,
        num_queries=n, domain="hotels", seed=11,
    )


def _quality(setup, processor, workload, option, threshold=None):
    candidates = setup.candidate_entities(option)
    qualities = []
    for query in workload:
        result = processor.execute(query.sql, top_k=10)
        entities = result.entity_ids
        if threshold is not None:
            # Hard-threshold semantics: keep only entities whose every
            # predicate degree clears the threshold, in their original order.
            entities = [
                entity.entity_id for entity in result.entities
                if entity.predicate_degrees
                and all(value > threshold for value in entity.predicate_degrees.values())
            ]
        qualities.append(
            result_quality(entities, list(query.predicates), candidates,
                           lambda p, e: setup.oracle(p, e), k=10)
        )
    return sum(qualities) / len(qualities)


def run_fuzzy_variant_ablation(setup):
    option = "london_under_300"
    workload = _workload(setup, option)
    rows = {}
    for name, logic in (("product", ProductLogic()), ("zadeh", ZadehLogic())):
        processor = SubjectiveQueryProcessor(setup.database, logic=logic)
        rows[name] = _quality(setup, processor, workload, option)
    processor = SubjectiveQueryProcessor(setup.database, logic=ProductLogic())
    rows["hard thresholds (0.5)"] = _quality(setup, processor, workload, option, threshold=0.5)
    return rows


def test_ablation_fuzzy_variants(benchmark, hotel_setup_bench):
    rows = benchmark.pedantic(
        run_fuzzy_variant_ablation, args=(hotel_setup_bench,), rounds=1, iterations=1
    )
    table = ExperimentTable(
        "Ablation: fuzzy-logic variant vs result quality (NDCG@10, hotels, medium queries)",
        ["Variant", "NDCG@10"],
    )
    for name, value in rows.items():
        table.add_row(name, round(value, 3))
    print_result(table.format())
    # Both fuzzy variants produce valid, comparable quality; hard thresholds
    # discard borderline entities and lose quality (the Appendix-A argument).
    assert all(0.0 <= value <= 1.0 for value in rows.values())
    assert abs(rows["product"] - rows["zadeh"]) < 0.2
    assert rows["product"] >= rows["hard thresholds (0.5)"] - 1e-9
