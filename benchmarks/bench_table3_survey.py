"""Benchmark for Table 3 — share of subjective criteria per domain."""

from benchmarks.conftest import print_result
from repro.experiments.exp_table3_survey import (
    format_survey_experiment,
    run_survey_experiment,
)


def test_table3_survey(benchmark):
    result = benchmark(run_survey_experiment, num_workers=30, criteria_per_worker=7, seed=0)
    print_result(format_survey_experiment(result))
    percentages = {r.domain: r.percent_subjective for r in result.results}
    # Paper's Table 3: every domain is majority-subjective, vacation the most
    # subjective, cars the least.
    assert all(value > 50.0 for value in percentages.values())
    assert percentages["Vacation"] == max(percentages.values())
    assert percentages["Car"] == min(percentages.values())
