"""Benchmark for Section 4.2 — attribute classification from seed expansion."""

from benchmarks.conftest import print_result
from repro.experiments.exp_attribute_classifier import (
    format_attribute_classifier_experiment,
    run_attribute_classifier_experiment,
)


def test_attribute_classifier_from_seeds(benchmark):
    result = benchmark.pedantic(
        run_attribute_classifier_experiment,
        kwargs={
            "domains": ("hotels", "restaurants"),
            "num_entities": 25,
            "reviews_per_entity": 12,
            "test_size": 1000,
            "target_expanded": 5000,
        },
        rounds=1, iterations=1,
    )
    print_result(format_attribute_classifier_experiment(result))
    # Section 4.2's claim: a handful of designer seeds expand into thousands
    # of training tuples and yield a high-accuracy attribute classifier
    # (86.6% hotels / 88.3% restaurants in the paper).
    for score in result.scores:
        assert score.num_expanded >= 1000
        assert score.accuracy > 0.75
    assert result.accuracy("hotels") > 0.75
    assert result.accuracy("restaurants") > 0.75
