"""Ablation: interpreter fallback threshold θ1 vs interpretation accuracy.

Figure 5's fallback threshold decides when the word2vec interpretation is
trusted; this ablation sweeps θ1 and reports how often each interpretation
method is chosen and the resulting attribute accuracy on the hotel predicate
bank.
"""

from benchmarks.conftest import print_result
from repro.core.interpreter import InterpretationMethod, SubjectiveQueryInterpreter
from repro.experiments.common import ExperimentTable


def run_threshold_ablation(setup, thresholds=(0.3, 0.5, 0.7, 0.9), max_predicates=120):
    bank = setup.predicate_bank[:max_predicates]
    rows = []
    for threshold in thresholds:
        interpreter = SubjectiveQueryInterpreter(setup.database, w2v_threshold=threshold)
        correct = 0
        used = {method: 0 for method in InterpretationMethod}
        for predicate in bank:
            interpretation = interpreter.interpret(predicate.text)
            used[interpretation.method] += 1
            if interpretation.top_attribute in predicate.attributes:
                correct += 1
        rows.append(
            (threshold, correct / len(bank),
             used[InterpretationMethod.WORD2VEC],
             used[InterpretationMethod.COOCCURRENCE],
             used[InterpretationMethod.TEXT_RETRIEVAL])
        )
    return rows


def test_ablation_fallback_thresholds(benchmark, hotel_setup_bench):
    rows = benchmark.pedantic(
        run_threshold_ablation, args=(hotel_setup_bench,), rounds=1, iterations=1
    )
    table = ExperimentTable(
        "Ablation: w2v fallback threshold θ1 vs interpretation accuracy (hotel bank)",
        ["θ1", "Accuracy", "#w2v", "#co-occur", "#text-retrieval"],
    )
    for threshold, accuracy, n_w2v, n_cooccur, n_ir in rows:
        table.add_row(threshold, round(accuracy, 3), n_w2v, n_cooccur, n_ir)
    print_result(table.format())
    accuracies = {threshold: accuracy for threshold, accuracy, *_rest in rows}
    usage = {threshold: w2v for threshold, _accuracy, w2v, *_rest in rows}
    # Raising θ1 pushes more predicates to the fallback methods (monotone
    # non-increasing w2v usage) while accuracy stays reasonable at moderate
    # thresholds.
    thresholds = sorted(usage)
    assert all(usage[a] >= usage[b] for a, b in zip(thresholds, thresholds[1:]))
    assert accuracies[0.5] > 0.7
