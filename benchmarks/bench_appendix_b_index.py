"""Benchmark for Appendix B — the single-substitution index for w2v interpretation."""

from benchmarks.conftest import print_result
from repro.experiments.exp_appendix_b_index import (
    format_index_experiment,
    run_index_experiment,
)


def test_appendix_b_substitution_index(benchmark, hotel_setup_bench):
    result = benchmark.pedantic(
        run_index_experiment,
        kwargs={"setup": hotel_setup_bench, "max_predicates": 150},
        rounds=1, iterations=1,
    )
    print_result(format_index_experiment(result))
    # Appendix B's shape: a substantial fraction of predicate lookups avoid
    # the full similarity search, and the indexed path agrees with the
    # brute-force path on the vast majority of predicates.
    assert result.fast_hit_rate > 0.1
    assert result.agreement > 0.8
    assert result.indexed_seconds < result.brute_force_seconds
