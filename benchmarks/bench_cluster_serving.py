"""Concurrent-coordinator throughput of the TCP cluster serving engine.

The cluster layer (PR 5) makes shard workers network-addressable — TCP
nodes hydrated from shipped column snapshots — and, on top of that, makes
the coordinator *concurrent*: ``run_batch`` keeps a bounded look-ahead
window of queries whose uncached degree fan-outs are issued to the nodes
ahead of time, and queries inside the window share assembled degree
vectors outright instead of each re-walking the per-entity membership
cache.  This benchmark measures what that buys a serving deployment on a
repetitive query mix (the regime batch serving exists for — popular
predicates recur across a traffic window):

* **serial coordinator** — the same :class:`ClusterQueryEngine` with
  ``max_inflight_queries=1``: queries execute strictly one at a time, each
  paying its own per-entity cache walk and its own blocking node
  round-trips (exactly the PR 4 coordinator's batch discipline);
* **concurrent coordinator** — the same engine with the full look-ahead
  window: fan-outs overlap across the window and per-pair degree vectors
  are assembled once per batch.

Both modes run over the same live node fleet with the same caches and the
coordinator's membership cache flushed before every timed pass, so the
comparison isolates the batch discipline itself.  Assertions pin the
contract from ISSUE 5: batch results **bit-identical** between the two
modes (and rankings equal to the unsharded engine), and concurrent
throughput ≥ 1.3× serial over 2+ nodes on a ≥ 800-entity domain with ≥ 16
queries in flight.  Results are recorded in ``BENCH_cluster.json`` at the
repository root.

Scale knobs: ``REPRO_BENCH_CLUSTER_ENTITIES`` (default 800, floored at
800), ``REPRO_BENCH_CLUSTER_NODES`` (default 2, floored at 2) and
``REPRO_BENCH_CLUSTER_INFLIGHT`` (default 32, floored at 16).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_result
from repro.experiments.common import ExperimentTable
from repro.serving import ClusterQueryEngine, SubjectiveQueryEngine
from repro.testing import build_synthetic_columnar_database, env_int

pytestmark = pytest.mark.slow

#: The measurement harness, recorded verbatim under ``"harness"`` in the
#: results document so a stale ``BENCH_cluster.json`` is detectable.  Must
#: stay a pure literal — ``tools/check_bench_floors.py`` reads it with
#: ``ast.literal_eval`` and warns when it drifts from the committed JSON.
HARNESS = {
    "benchmark": "bench_cluster_serving",
    "domain": "synthetic",
    "entities_default": 800,
    "entities_env": "REPRO_BENCH_CLUSTER_ENTITIES",
    "num_nodes_default": 2,
    "max_inflight_default": 32,
    "passes": 12,
    "timing": "best-of-interleaved-batch-passes",
    "speedup_floor": 1.3,
}

CLUSTER_ENTITIES = max(800, env_int("REPRO_BENCH_CLUSTER_ENTITIES", 800))
NUM_NODES = max(2, env_int("REPRO_BENCH_CLUSTER_NODES", 2))
MAX_INFLIGHT = max(16, env_int("REPRO_BENCH_CLUSTER_INFLIGHT", 32))
SPEEDUP_FLOOR = 1.3
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

#: Popular-predicate serving mix: 32 queries drawn from 8 distinct
#: predicate pairs (marker names double as predicates in the synthetic
#: domain).  Repetition across the batch is what a traffic window of real
#: users looks like, and it is the regime the look-ahead coordinator's
#: vector reuse targets.
_QUALITY = [f"word{index:03d}" for index in range(4)]
_SERVICE = [f"word{index:03d}" for index in range(16, 20)]
QUERIES = [
    sql
    for _ in range(4)
    for index in range(4)
    for sql in (
        'select * from Entities where '
        f'"{_QUALITY[index]}" and "{_SERVICE[index]}" limit 10',
        'select * from Entities where '
        f'"{_QUALITY[index]}" or "{_SERVICE[(index + 1) % 4]}" limit 10',
    )
]


@pytest.fixture(scope="module")
def synthetic_database():
    return build_synthetic_columnar_database(num_entities=CLUSTER_ENTITIES, seed=0)


def _one_pass(engine, max_inflight: int):
    """(queries/s, batch) of one workload pass with a flushed membership cache."""
    engine.max_inflight_queries = max_inflight
    engine.membership_cache.clear()
    started = time.perf_counter()
    batch = engine.run_batch(QUERIES)
    return len(QUERIES) / (time.perf_counter() - started), batch


def _best_of(engine, max_inflight: int, passes: int = 12):
    """Best-of-``passes`` throughput plus the last batch for equality checks.

    Plans, candidate rows, column arrays, node hydration and node degree
    caches stay warm (one untimed pass builds them), so each timed pass
    pays exactly the post-flush coordinator work; the best pass wins since
    scheduler noise on a shared box only ever slows a pass down.
    """
    best = 0.0
    batch = None
    for _ in range(passes):
        qps, batch = _one_pass(engine, max_inflight)
        best = max(best, qps)
    return best, batch


def test_cluster_concurrent_coordinator_speedup(synthetic_database):
    database = synthetic_database
    unsharded = SubjectiveQueryEngine(database=database)
    engine = ClusterQueryEngine(
        database=database, num_nodes=NUM_NODES, max_inflight_queries=MAX_INFLIGHT
    )
    try:
        # Rankings — ids and scores — must be exactly those of the single
        # engine (the differential suite additionally pins degrees).
        for sql in dict.fromkeys(QUERIES):
            expected = unsharded.execute(sql)
            actual = engine.execute(sql)
            assert actual.entity_ids == expected.entity_ids, sql
            assert [entity.score for entity in actual] == [
                entity.score for entity in expected
            ], sql

        # Interleave serial and concurrent passes so both see the same
        # noise windows; the untimed warm-up already ran above.
        serial_qps = 0.0
        concurrent_qps = 0.0
        serial_batch = concurrent_batch = None
        for _ in range(12):
            qps, serial_batch = _one_pass(engine, 1)
            serial_qps = max(serial_qps, qps)
            qps, concurrent_batch = _one_pass(engine, MAX_INFLIGHT)
            concurrent_qps = max(concurrent_qps, qps)
        speedup = concurrent_qps / serial_qps

        # Bit-identical batches: ids, scores and per-predicate degrees.
        for serial_result, concurrent_result in zip(
            serial_batch.results, concurrent_batch.results
        ):
            assert concurrent_result.entity_ids == serial_result.entity_ids
            for expected_entity, actual_entity in zip(
                serial_result.entities, concurrent_result.entities
            ):
                assert actual_entity.score == expected_entity.score
                assert (
                    actual_entity.predicate_degrees
                    == expected_entity.predicate_degrees
                )

        # Round once and use the same figures in the printed table and the
        # committed JSON, so the report and BENCH_cluster.json can never
        # drift apart (the CHANGES-vs-JSON mismatch this PR reconciles).
        serial_reported = round(serial_qps, 2)
        concurrent_reported = round(concurrent_qps, 2)
        speedup_reported = round(speedup, 2)
        table = ExperimentTable(
            title=(
                f"Cluster concurrent coordinator ({len(database)} entities, "
                f"{NUM_NODES} nodes, window {MAX_INFLIGHT})"
            ),
            columns=["coordinator", "qps"],
        )
        table.add_row("serial (window 1)", serial_reported)
        table.add_row(f"concurrent (window {MAX_INFLIGHT})", concurrent_reported)
        table.add_row("speedup", speedup_reported)
        print_result(table.format())

        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "bench_cluster_serving",
                    "domain": "synthetic",
                    "entities": len(database),
                    "num_nodes": NUM_NODES,
                    "max_inflight_queries": MAX_INFLIGHT,
                    "queries": len(QUERIES),
                    "distinct_queries": len(dict.fromkeys(QUERIES)),
                    "serial_qps": serial_reported,
                    "concurrent_qps": concurrent_reported,
                    "speedup": speedup_reported,
                    "speedup_floor": SPEEDUP_FLOOR,
                    "batch_results_bit_identical": True,
                    "rankings_identical_to_unsharded": True,
                    "harness": HARNESS,
                },
                indent=2,
            )
            + "\n"
        )

        assert speedup >= SPEEDUP_FLOOR, (
            f"concurrent coordinator only {speedup:.2f}x the serial coordinator"
        )
    finally:
        engine.close()
