"""Benchmark for Figure 8 / Appendix D — the quietness case study."""

from benchmarks.conftest import print_result
from repro.experiments.exp_fig8_case import format_case_study, run_case_study


def test_fig8_quietness_case_study(benchmark, hotel_setup_bench):
    result = benchmark.pedantic(
        run_case_study,
        kwargs={"setup": hotel_setup_bench, "predicate": "quiet room",
                "attribute": "room_quietness"},
        rounds=1, iterations=1,
    )
    print_result(format_case_study(result))
    # Figure 8's message: OpineDB's top hotel for "quiet room" is genuinely
    # quiet (latent ground truth), at least as quiet as the keyword-retrieval
    # winner, because the IR baseline also counts "not quiet" / "never quiet"
    # mentions as matches.
    assert result.opine_truth >= result.ir_truth - 0.05
    assert result.opine_truth >= 0.45
    assert result.opine_summary  # the winning hotel has a quietness summary
