"""Ablation: embedding dimensionality vs interpreter accuracy and training cost.

The word2vec interpretation method relies on the review-trained embeddings;
this ablation sweeps the PPMI-SVD dimension and measures (a) how accurately
query predicates map to their gold attributes using phrase similarity over
the raw phrase banks and (b) embedding training time.
"""

import time

from benchmarks.conftest import print_result
from repro.datasets.hotels import generate_hotel_corpus
from repro.datasets.phrasebanks import hotel_domain_spec
from repro.datasets.queries import hotel_predicate_bank
from repro.experiments.common import ExperimentTable
from repro.text.embeddings import PhraseEmbedder, PpmiSvdEmbeddings
from repro.text.idf import DocumentFrequencies
from repro.text.tokenize import tokenize


def run_embedding_dim_ablation(dimensions=(8, 24, 48, 96), num_entities=30,
                               reviews_per_entity=15, max_predicates=80):
    corpus = generate_hotel_corpus(num_entities, reviews_per_entity, seed=4)
    texts = [review.text for review in corpus.reviews]
    frequencies = DocumentFrequencies()
    frequencies.add_corpus([tokenize(text) for text in texts])
    spec = hotel_domain_spec()
    # Reference phrases: one representative positive phrase per attribute.
    references = {
        aspect.attribute: f"{aspect.opinion_levels[4][0]} {aspect.aspect_terms[0]}"
        for aspect in spec.aspects
    }
    bank = [p for p in hotel_predicate_bank() if p.in_schema][:max_predicates]
    rows = []
    for dimension in dimensions:
        start = time.perf_counter()
        embeddings = PpmiSvdEmbeddings(dimension=dimension, min_count=2).fit(texts)
        train_seconds = time.perf_counter() - start
        embedder = PhraseEmbedder(embeddings, frequencies)
        correct = 0
        for predicate in bank:
            best_attribute, best_similarity = None, -1.0
            for attribute, reference in references.items():
                similarity = embedder.similarity(predicate.text, reference)
                if similarity > best_similarity:
                    best_attribute, best_similarity = attribute, similarity
            if best_attribute in predicate.attributes:
                correct += 1
        rows.append((dimension, correct / len(bank), train_seconds))
    return rows


def test_ablation_embedding_dimension(benchmark):
    rows = benchmark.pedantic(run_embedding_dim_ablation, rounds=1, iterations=1)
    table = ExperimentTable(
        "Ablation: embedding dimension vs predicate→attribute matching accuracy",
        ["Dimension", "Accuracy", "Training time (s)"],
    )
    for dimension, accuracy, seconds in rows:
        table.add_row(dimension, round(accuracy, 3), round(seconds, 3))
    print_result(table.format())
    accuracies = {dimension: accuracy for dimension, accuracy, _seconds in rows}
    # Every dimensionality carries usable signal; the spread between the best
    # and worst configuration is bounded (on review-scale corpora the
    # count-based embeddings saturate early and extra dimensions mostly add
    # noise, which is why the library defaults to a mid-size dimension).
    assert all(value > 0.3 for value in accuracies.values())
    assert max(accuracies.values()) - min(accuracies.values()) < 0.45
