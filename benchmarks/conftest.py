"""Shared fixtures for the benchmark harness.

The benchmarks regenerate the paper's tables and figures at a laptop-friendly
scale.  Domain setups (synthetic corpus + fully built subjective database)
are expensive, so they are built once per benchmark session and shared.

Scale knobs can be overridden through environment variables:

* ``REPRO_BENCH_ENTITIES`` (default 60) — entities per domain;
* ``REPRO_BENCH_REVIEWS``  (default 18) — mean reviews per entity;
* ``REPRO_BENCH_QUERIES``  (default 10) — queries per workload cell.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import DomainSetup, prepare_domain

BENCH_ENTITIES = int(os.environ.get("REPRO_BENCH_ENTITIES", "60"))
BENCH_REVIEWS = int(os.environ.get("REPRO_BENCH_REVIEWS", "18"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "10"))


@pytest.fixture(scope="session")
def hotel_setup_bench() -> DomainSetup:
    """Hotel domain at benchmark scale."""
    return prepare_domain(
        "hotels", num_entities=BENCH_ENTITIES, reviews_per_entity=BENCH_REVIEWS, seed=0
    )


@pytest.fixture(scope="session")
def restaurant_setup_bench() -> DomainSetup:
    """Restaurant domain at benchmark scale (fewer reviews per entity, as in the paper)."""
    return prepare_domain(
        "restaurants",
        num_entities=BENCH_ENTITIES,
        reviews_per_entity=max(8, int(BENCH_REVIEWS * 0.75)),
        seed=0,
    )


@pytest.fixture(scope="session")
def hotel_setup_dense() -> DomainSetup:
    """A smaller hotel domain with many reviews per entity (Table 7 speedups).

    The marker-summary speedup of Table 7 comes from entities having many
    reviews (the Booking.com corpus averages ~345 reviews per hotel); this
    setup trades entity count for review density to reproduce that regime.
    """
    return prepare_domain(
        "hotels", num_entities=24, reviews_per_entity=60, seed=1, num_markers=10
    )


def print_result(text: str) -> None:
    """Print a formatted experiment table under pytest-benchmark output."""
    print("\n" + text + "\n")
