"""Shared fixtures for the benchmark harness.

The benchmarks regenerate the paper's tables and figures at a laptop-friendly
scale.  Domain setups (synthetic corpus + fully built subjective database)
are expensive, so they are built once per benchmark session and shared.
Scale knobs and the setup construction live in :mod:`repro.testing`
(``REPRO_BENCH_ENTITIES`` / ``REPRO_BENCH_REVIEWS`` / ``REPRO_BENCH_QUERIES``
environment variables).

Every test collected from this directory is marked ``slow`` so the default
CI test run can deselect benchmark-backed tests with ``-m "not slow"``.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import DomainSetup
from repro.testing import bench_scale, build_domain_setup, print_result

__all__ = ["BENCH_ENTITIES", "BENCH_REVIEWS", "BENCH_QUERIES", "print_result"]

BENCH_ENTITIES, BENCH_REVIEWS, BENCH_QUERIES = bench_scale()


def pytest_collection_modifyitems(items) -> None:
    """Mark every benchmark test as slow, with a benchmark-sized hang guard.

    Both markers are registered in pyproject.toml.  The 300 s timeout
    (pytest-timeout) overrides the repository-wide 60 s default: benchmark
    items build domain setups and run many timed passes, but a stuck pass
    must still fail the job rather than hang it.
    """
    for item in items:
        item.add_marker(pytest.mark.slow)
        item.add_marker(pytest.mark.timeout(300))


@pytest.fixture(scope="session")
def hotel_setup_bench() -> DomainSetup:
    """Hotel domain at benchmark scale."""
    return build_domain_setup(
        "hotels", num_entities=BENCH_ENTITIES, reviews_per_entity=BENCH_REVIEWS, seed=0
    )


@pytest.fixture(scope="session")
def restaurant_setup_bench() -> DomainSetup:
    """Restaurant domain at benchmark scale (fewer reviews per entity, as in the paper)."""
    return build_domain_setup(
        "restaurants",
        num_entities=BENCH_ENTITIES,
        reviews_per_entity=max(8, int(BENCH_REVIEWS * 0.75)),
        seed=0,
    )


@pytest.fixture(scope="session")
def hotel_setup_dense() -> DomainSetup:
    """A smaller hotel domain with many reviews per entity (Table 7 speedups).

    The marker-summary speedup of Table 7 comes from entities having many
    reviews (the Booking.com corpus averages ~345 reviews per hotel); this
    setup trades entity count for review density to reproduce that regime.
    """
    return build_domain_setup(
        "hotels", num_entities=24, reviews_per_entity=60, seed=1, num_markers=10
    )
