"""Benchmark for Table 6 — opinion-extractor quality on four ABSA datasets."""

from benchmarks.conftest import print_result
from repro.experiments.exp_table6_extractor import (
    format_extractor_experiment,
    run_extractor_experiment,
)


def test_table6_extractor_quality(benchmark):
    result = benchmark.pedantic(
        run_extractor_experiment,
        kwargs={"repeats": 2, "scale": 0.15, "epochs": 4, "seed": 0},
        rounds=1, iterations=1,
    )
    print_result(format_extractor_experiment(result))
    datasets = sorted({score.dataset for score in result.scores})
    assert len(datasets) == 4
    # Paper's Table 6 shape: our model beats the previous-SOTA stand-in on
    # every dataset.
    for dataset in datasets:
        assert result.f1(dataset, "ours") > result.f1(dataset, "baseline")
    # The gap is largest on the smallest (hotel) dataset, the transfer-learning
    # argument of Section 5.4.1.
    gaps = {
        dataset: result.f1(dataset, "ours") - result.f1(dataset, "baseline")
        for dataset in datasets
    }
    assert gaps["booking_hotel"] >= max(
        gap for dataset, gap in gaps.items() if dataset != "booking_hotel"
    ) - 0.05
    # Robustness: training on 20% of the hotel sentences stays usable.
    assert result.small_train_f1 is not None
    assert result.small_train_f1 > 0.5
