"""Coordinator cold-path throughput of the shard-service RPC engine.

The RPC layer (PR 4) moves the entity shards of PR 3 behind a service
boundary: long-lived forked workers each own contiguous slices and serve a
length-prefixed binary ``score`` protocol, while the coordinator plans,
fans WHERE-tree scoring out, and merges per-shard top-k heaps.  This
benchmark measures what that buys a serving deployment:

* **serial sharded** — :class:`repro.serving.ShardedSubjectiveQueryEngine`
  with the in-process ``serial`` backend at ``REPRO_BENCH_RPC_WORKERS``
  shards: every cache flush pays the full kernel recomputation inline;
* **rpc coordinator** — :class:`repro.serving.CoordinatorQueryEngine` at
  the same worker count.

The headline metric is the **coordinator cold path**: the coordinator's
own membership cache is flushed before every timed pass (the state of a
freshly restarted or scaled-out coordinator), while the worker fleet stays
up — long-lived shard services keep their per-slice degree caches, and on
multi-core hosts additionally compute uncached slices concurrently.  The
serial baseline has no second tier to stay warm, so the same flush sends
it back to kernel execution — the architectural asymmetry this PR exists
to create.  A **fully cold** pass (worker caches dropped too, via the
``invalidate`` RPC) is also measured and recorded for reference; it
isolates pure fan-out parallelism and transport overhead.

Assertions pin the contract from ISSUE 4: rankings (ids *and* scores)
exactly equal to the unsharded engine, and coordinator cold-path
throughput ≥ 1.3× the serial sharded baseline at 4 workers on a ≥
800-entity synthetic domain.  Results are recorded in ``BENCH_rpc.json``
at the repository root.

Scale knobs: ``REPRO_BENCH_RPC_ENTITIES`` (default 800, floored at 800)
and ``REPRO_BENCH_RPC_WORKERS`` (default 4).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_result
from repro.experiments.common import ExperimentTable
from repro.serving import (
    CoordinatorQueryEngine,
    ShardedSubjectiveQueryEngine,
    SubjectiveQueryEngine,
)
from repro.testing import build_synthetic_columnar_database, env_int

pytestmark = pytest.mark.slow

#: The measurement harness, recorded verbatim under ``"harness"`` in the
#: results document so a stale ``BENCH_rpc.json`` is detectable.  Must
#: stay a pure literal — ``tools/check_bench_floors.py`` reads it with
#: ``ast.literal_eval`` and warns when it drifts from the committed JSON.
HARNESS = {
    "benchmark": "bench_rpc_serving",
    "domain": "synthetic",
    "entities_default": 800,
    "entities_env": "REPRO_BENCH_RPC_ENTITIES",
    "num_workers_default": 4,
    "queries": 6,
    "passes": 14,
    "timing": "best-of-interleaved-cold-passes",
    "speedup_floor": 1.3,
}

RPC_ENTITIES = max(800, env_int("REPRO_BENCH_RPC_ENTITIES", 800))
NUM_WORKERS = env_int("REPRO_BENCH_RPC_WORKERS", 4)
SPEEDUP_FLOOR = 1.3
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_rpc.json"

#: Marker names double as predicates in the synthetic domain (each is its
#: own linguistic variation, resolved by the word2vec method).
QUERIES = [
    'select * from Entities where "word003" and "word019" limit 10',
    'select * from Entities where "word005" or "word021" limit 10',
    "select * from Entities where city = 'london' and \"word010\" limit 10",
    'select * from Entities where not "word007" and "word023" limit 10',
    'select * from Entities where "word001" limit 10',
    'select * from Entities where "word017" and "word002" and price < 200 limit 10',
]


@pytest.fixture(scope="module")
def synthetic_database():
    return build_synthetic_columnar_database(num_entities=RPC_ENTITIES, seed=0)


def _flush_coordinator_caches(engine) -> None:
    """Drop the engine's own membership cache (plans/candidates stay warm)."""
    engine.membership_cache.clear()


def _flush_worker_caches(engine) -> None:
    """Additionally drop worker-side caches (RPC engines only)."""
    store = getattr(engine, "sharded_store", None)
    if store is not None and hasattr(store, "invalidate_worker_caches"):
        store.invalidate_worker_caches()


def _one_pass(engine, flush) -> float:
    """Queries per second of one workload pass after ``flush(engine)``."""
    flush(engine)
    started = time.perf_counter()
    for sql in QUERIES:
        engine.execute(sql)
    return len(QUERIES) / (time.perf_counter() - started)


def _best_of(engines, flush, passes: int = 14) -> list[float]:
    """Best-of-``passes`` throughput per engine, passes interleaved.

    Plans, candidate rows and column arrays stay warm (one untimed pass
    builds them), so each timed query pays exactly the post-flush scoring
    work.  Passes alternate between the engines and each pass is timed
    separately with the best pass winning: scheduler noise on a shared box
    only ever slows a pass down, and interleaving exposes every engine to
    the same noise windows.
    """
    for engine in engines:
        for sql in QUERIES:
            engine.execute(sql)
    best = [0.0] * len(engines)
    for _ in range(passes):
        for position, engine in enumerate(engines):
            best[position] = max(best[position], _one_pass(engine, flush))
    return best


def test_rpc_coordinator_cold_path_speedup(synthetic_database):
    database = synthetic_database
    unsharded = SubjectiveQueryEngine(database=database)
    serial = ShardedSubjectiveQueryEngine(
        database=database, num_shards=NUM_WORKERS, backend="serial"
    )
    coordinator = CoordinatorQueryEngine(database=database, num_workers=NUM_WORKERS)
    try:
        # Rankings — ids and scores — must be exactly those of the single
        # engine (the differential suite additionally pins degrees).
        for sql in QUERIES:
            expected = unsharded.execute(sql)
            actual = coordinator.execute(sql)
            assert actual.entity_ids == expected.entity_ids, sql
            assert [entity.score for entity in actual] == [
                entity.score for entity in expected
            ], sql

        serial_qps, rpc_qps = _best_of(
            [serial, coordinator], _flush_coordinator_caches
        )
        speedup = rpc_qps / serial_qps

        def flush_fully(engine):
            _flush_coordinator_caches(engine)
            _flush_worker_caches(engine)

        serial_cold_qps, rpc_cold_qps = _best_of(
            [serial, coordinator], flush_fully, passes=6
        )

        table = ExperimentTable(
            title=(
                f"Shard-service RPC serving ({len(database)} entities, "
                f"{NUM_WORKERS} workers)"
            ),
            columns=["engine", "flush", "qps"],
        )
        table.add_row("serial sharded", "coordinator caches", round(serial_qps, 1))
        table.add_row("rpc coordinator", "coordinator caches", round(rpc_qps, 1))
        table.add_row("speedup", "", round(speedup, 2))
        table.add_row("serial sharded", "all caches", round(serial_cold_qps, 1))
        table.add_row("rpc coordinator", "all caches", round(rpc_cold_qps, 1))
        print_result(table.format())

        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "bench_rpc_serving",
                    "domain": "synthetic",
                    "entities": len(database),
                    "num_workers": NUM_WORKERS,
                    "queries": len(QUERIES),
                    "serial_sharded_qps": round(serial_qps, 2),
                    "rpc_coordinator_qps": round(rpc_qps, 2),
                    "speedup": round(speedup, 2),
                    "speedup_floor": SPEEDUP_FLOOR,
                    "fully_cold": {
                        "serial_sharded_qps": round(serial_cold_qps, 2),
                        "rpc_coordinator_qps": round(rpc_cold_qps, 2),
                        "speedup": round(rpc_cold_qps / serial_cold_qps, 2),
                    },
                    "rankings_identical": True,
                    "harness": HARNESS,
                },
                indent=2,
            )
            + "\n"
        )

        assert speedup >= SPEEDUP_FLOOR, (
            f"rpc coordinator cold path only {speedup:.2f}x the serial sharded baseline"
        )
    finally:
        coordinator.close()
        serial.close()
