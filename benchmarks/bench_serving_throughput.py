"""Serving-layer throughput: cold single-query processing vs warm-cache serving.

Models a production traffic pattern on the hotel workload: a pool of
distinct queries (objective option + subjective predicates) served
repeatedly, as popular queries are in practice.

* **cold** — the seed behaviour: every request builds a fresh
  :class:`SubjectiveQueryProcessor` and executes from scratch (parse,
  interpret, per-entity scoring);
* **warm** — a :class:`SubjectiveQueryEngine` whose plan/candidate/membership
  caches were populated by a first pass over the query pool.

The assertions pin the serving layer's contract: warm-cache repeated-query
throughput at least 3× the cold path, and rankings identical to the
sequential processor for every query.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BENCH_QUERIES, print_result
from repro.core import SubjectiveQueryProcessor
from repro.datasets.queries import HOTEL_OPTIONS, generate_workload, hotel_predicate_bank
from repro.experiments.common import ExperimentTable
from repro.serving import SubjectiveQueryEngine

pytestmark = pytest.mark.slow


def _hotel_workload(num_queries: int) -> list[str]:
    """Distinct hotel-workload queries across options and difficulties."""
    bank = hotel_predicate_bank()
    sqls: list[str] = []
    per_cell = max(1, num_queries // (len(HOTEL_OPTIONS) * 2))
    for option_name, conditions in sorted(HOTEL_OPTIONS.items()):
        for difficulty in ("easy", "medium"):
            workload = generate_workload(
                bank, option_name, conditions, difficulty,
                num_queries=per_cell, domain="hotels", seed=17,
            )
            sqls.extend(query.sql for query in workload)
    return sqls


def test_serving_throughput_and_equivalence(hotel_setup_bench):
    database = hotel_setup_bench.database
    sqls = _hotel_workload(max(8, BENCH_QUERIES))
    repeats = 3

    # Cold: a fresh processor per request, the seed's serving story.
    cold_started = time.perf_counter()
    cold_results = [SubjectiveQueryProcessor(database).execute(sql) for sql in sqls]
    cold_seconds = time.perf_counter() - cold_started
    cold_qps = len(sqls) / cold_seconds

    # Warm: populate the caches once, then measure repeated traffic.
    engine = SubjectiveQueryEngine(database=database)
    engine.run_batch(sqls)
    warm_batch = engine.run_batch(sqls * repeats)
    warm_qps = warm_batch.queries_per_second
    speedup = warm_qps / cold_qps

    # run_batch() must reproduce the sequential processor's rankings exactly.
    for cold, warm in zip(cold_results, warm_batch.results):
        assert warm.entity_ids == cold.entity_ids
        assert [entity.score for entity in warm] == [entity.score for entity in cold]

    snapshot = engine.stats_snapshot()
    table = ExperimentTable(
        title="Serving throughput (hotel workload)",
        columns=["path", "queries", "seconds", "qps"],
    )
    table.add_row("cold (fresh processor)", len(sqls), round(cold_seconds, 4), round(cold_qps, 1))
    table.add_row(
        "warm (cached engine)", len(warm_batch), round(warm_batch.elapsed_seconds, 4),
        round(warm_qps, 1),
    )
    table.add_row("speedup", "", "", round(speedup, 2))
    print_result(table.format())
    print_result(
        "cache hit rates: "
        f"plan={snapshot['plan_cache']['hit_rate']:.3f} "
        f"membership={snapshot['membership_cache']['hit_rate']:.3f} "
        f"candidate={snapshot['candidate_cache']['hit_rate']:.3f}"
    )

    assert speedup >= 3.0, f"warm-cache throughput only {speedup:.2f}x the cold path"
