"""Cold hydration and kill-one-node recovery of the cluster serving layer.

``BENCH_rpc.json`` pinned the standing bottleneck: fully-cold serving
loses (0.69×) because every cold start re-ships whole column slices.
This benchmark pins what the PR-8 recovery machinery buys back, in two
measurements:

* **Cold hydrate, compressed vs lossless.**  Per slice, the three real
  costs of a hydration are measured directly: coordinator pack CPU, frame
  bytes, and node-side install CPU (``handle_frame`` on a real
  :class:`ShardNodeServer` — the identical code path the TCP node runs,
  minus the socket).  Loopback wall-clock cannot see the bytes (localhost
  moves gigabytes per second, so both arms measure the same kernel time —
  recorded here as the honest ``loopback_*`` figures); a cluster crossing
  a network does, so the headline figure models the cold hydrate on a
  reference 1 Gbps link: ``pack + bytes/bandwidth + install`` summed over
  every slice.  The compressed arm is the full optimisation — zlib
  framing plus f32 centroid quantization under an explicit ``1e-6``
  tolerance; zlib-only (bit-lossless) bytes are recorded alongside.  The
  floor: the compressed cold hydrate is ≥ 1.5× faster than the lossless
  full-snapshot hydrate on the reference link.

* **Kill-one-node recovery.**  Over real TCP with ``replication=2``: node
  0 is paused (provably unanswered), a cold fan-out is issued, node 0 is
  SIGKILLed mid-flight, and the batch must complete **bit-identical** to
  the unsharded store with zero caller-visible errors — pinned as
  ``killnode_replicated_success`` 1.0 with a 1.0 floor.  The failover
  latency is recorded next to the ``replication=1`` alternative (typed
  error, then respawn + full re-hydrate on the next query).

A one-entity ingest's delta frame size is recorded against the full
snapshot it replaces (``delta_to_full_ratio``), pinning the delta path's
payload saving.  Results land in ``BENCH_recovery.json``.

Scale knobs: ``REPRO_BENCH_RECOVERY_ENTITIES`` (default 800, floored at
400).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_result
from repro.core.columnar import ColumnSnapshot, ColumnarSummaryStore, SnapshotDelta
from repro.core.markers import MarkerSummary
from repro.core.processor import SubjectiveQueryProcessor
from repro.experiments.common import ExperimentTable
from repro.serving import ClusterShardStore, ShardNodeServer, WorkerCrashedError
from repro.serving.protocol import encode_hydrate_request
from repro.serving.sharded import partition_bounds
from repro.testing import (
    ClusterFaultInjector,
    build_synthetic_columnar_database,
    env_int,
)

pytestmark = pytest.mark.slow

#: The measurement harness, recorded verbatim under ``"harness"`` in the
#: results document so a stale ``BENCH_recovery.json`` is detectable.  Must
#: stay a pure literal — ``tools/check_bench_floors.py`` reads it with
#: ``ast.literal_eval`` and warns when it drifts from the committed JSON.
HARNESS = {
    "benchmark": "bench_cold_recovery",
    "domain": "synthetic",
    "entities_default": 800,
    "entities_env": "REPRO_BENCH_RECOVERY_ENTITIES",
    "num_nodes": 2,
    "num_slices": 4,
    "replication": 2,
    "reference_link_gbps": 1.0,
    "centroid_tolerance": 1e-06,
    "passes": 5,
    "timing": "best-of-passes; modeled transfer = pack + bytes/link + install",
    "compressed_speedup_floor": 1.5,
    "killnode_replicated_success_floor": 1.0,
}

ENTITIES = max(400, env_int("REPRO_BENCH_RECOVERY_ENTITIES", 800))
NUM_NODES = 2
NUM_SLICES = 4
REFERENCE_BYTES_PER_SECOND = 1.0e9 / 8  # 1 Gbps reference link
CENTROID_TOLERANCE = 1e-6
COMPRESSED_SPEEDUP_FLOOR = 1.5
PASSES = 5
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"
FAST = {"connect_timeout": 10.0, "io_timeout": 60.0}


@pytest.fixture(scope="module")
def recovery_database():
    return build_synthetic_columnar_database(num_entities=ENTITIES, seed=0)


def _best_ms(action, passes: int = PASSES) -> float:
    """Best-of-``passes`` wall-clock of ``action`` in milliseconds."""
    best = float("inf")
    for _ in range(passes):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


def _slice_snapshots(database) -> list[ColumnSnapshot]:
    """Every (attribute, slice) snapshot the cold fan-out would ship."""
    store = ColumnarSummaryStore(database)
    snapshots = []
    for attribute in database.schema.subjective_attributes:
        columns = store.columns(attribute.name)
        bounds = partition_bounds(columns.num_entities, NUM_SLICES)
        for slice_id, (start, stop) in enumerate(zip(bounds, bounds[1:])):
            snapshots.append(
                ColumnSnapshot.of_slice(
                    columns, slice_id, start, stop, database.data_version
                )
            )
    return snapshots


def _hydrate_profile(database, membership, **pack_kwargs):
    """(pack ms, payload bytes, install ms) summed over every cold slice.

    Install time is measured on a real :class:`ShardNodeServer` through
    ``handle_frame`` — container verify, (de)compression, array unpack and
    slice install, exactly what the TCP node executes per hydrate frame.
    """
    snapshots = _slice_snapshots(database)
    node = ShardNodeServer(node_id=0, membership=membership)
    pack_ms = sum(
        _best_ms(lambda s=snapshot: s.pack(**pack_kwargs)) for snapshot in snapshots
    )
    payloads = [snapshot.pack(**pack_kwargs) for snapshot in snapshots]
    total_bytes = sum(len(payload) for payload in payloads)
    install_ms = sum(
        _best_ms(lambda p=payload: node.handle_frame(encode_hydrate_request(p)))
        for payload in payloads
    )
    return pack_ms, total_bytes, install_ms


def _modeled_cold_ms(pack_ms: float, total_bytes: int, install_ms: float) -> float:
    """Cold-hydrate time on the reference link: CPU plus modeled transfer."""
    return pack_ms + total_bytes / REFERENCE_BYTES_PER_SECOND * 1000.0 + install_ms


def _loopback_rehydrate_ms(database, membership, ids, attributes, **store_kwargs):
    """Wall-clock of a forced full re-hydration fan-out over live TCP."""
    store = ClusterShardStore(
        database, num_nodes=NUM_NODES, num_slices=NUM_SLICES, **store_kwargs, **FAST
    )
    try:
        phrases = iter(f"word{index:03d}" for index in range(2, 2 + PASSES + 1))
        store.pair_degrees(membership, ids, attributes[0], next(phrases))
        best = float("inf")
        for _ in range(PASSES):
            store._hydrated.clear()
            store._node_bases.clear()
            phrase = next(phrases)
            started = time.perf_counter()
            for attribute in attributes:
                store.pair_degrees(membership, ids, attribute, phrase)
            best = min(best, time.perf_counter() - started)
        return best * 1000.0
    finally:
        store.close()


def _delta_bytes(database) -> tuple[int, int]:
    """(delta frame bytes, full frame bytes) for a one-entity ingest."""
    attribute = database.schema.subjective_attributes[0]
    store = ColumnarSummaryStore(database)
    columns = store.columns(attribute.name)
    old = ColumnSnapshot.of_slice(
        columns, 0, 0, columns.num_entities, database.data_version
    )
    summary = MarkerSummary(attribute.name, list(attribute.markers))
    summary.add_phrase(attribute.markers[0].name, sentiment=0.5)
    database.store_summary(columns.entity_ids[0], summary)
    fresh = ColumnarSummaryStore(database)
    new_columns = fresh.columns(attribute.name)
    new = ColumnSnapshot.of_slice(
        new_columns, 0, 0, new_columns.num_entities, database.data_version
    )
    delta = SnapshotDelta.between(old, new)
    assert delta is not None
    return len(delta.pack(compress=True)), len(new.pack())


def _measure_killnode(database, membership, ids, attribute, expected):
    """(success flag, failover ms, failovers) of the mid-flight kill scenario."""
    store = ClusterShardStore(
        database, num_nodes=NUM_NODES, num_slices=NUM_SLICES, replication=2, **FAST
    )
    faults = ClusterFaultInjector(store)
    try:
        store.pair_degrees(membership, ids, attribute, "word001")
        faults.pause_node(0)
        request = store.request_degrees(membership, ids, attribute, "word003")
        faults.kill_node(0)
        started = time.perf_counter()
        degrees = store.collect_degrees(request)
        failover_ms = (time.perf_counter() - started) * 1000.0
        success = degrees == expected and store.failovers > 0
        return (1.0 if success else 0.0), failover_ms, store.failovers
    finally:
        faults.restore()
        store.close()


def _measure_respawn(database, membership, ids, attribute):
    """Recovery latency of the unreplicated alternative: respawn + re-hydrate."""
    store = ClusterShardStore(
        database, num_nodes=NUM_NODES, num_slices=NUM_SLICES, replication=1, **FAST
    )
    faults = ClusterFaultInjector(store)
    try:
        store.pair_degrees(membership, ids, attribute, "word001")
        faults.kill_node(0)
        started = time.perf_counter()
        try:
            store.pair_degrees(membership, ids, attribute, "word003")
        except WorkerCrashedError:
            pass
        store.pair_degrees(membership, ids, attribute, "word003")
        return (time.perf_counter() - started) * 1000.0
    finally:
        store.close()


def test_cold_recovery_benchmark(recovery_database):
    database = recovery_database
    membership = SubjectiveQueryProcessor(database).membership
    attributes = [attribute.name for attribute in database.schema.subjective_attributes]
    base = ColumnarSummaryStore(database)
    ids = list(base.columns(attributes[0]).entity_ids)
    expected = base.pair_degrees(membership, ids, attributes[0], "word003")

    # --- cold hydrate: lossless vs compressed --------------------------------
    pack_lossless, bytes_lossless, install_lossless = _hydrate_profile(
        database, membership
    )
    pack_compressed, bytes_compressed, install_compressed = _hydrate_profile(
        database, membership, compress=True, centroid_tolerance=CENTROID_TOLERANCE
    )
    bytes_zlib = sum(
        len(snapshot.pack(compress=True)) for snapshot in _slice_snapshots(database)
    )
    cold_lossless = _modeled_cold_ms(pack_lossless, bytes_lossless, install_lossless)
    cold_compressed = _modeled_cold_ms(
        pack_compressed, bytes_compressed, install_compressed
    )
    compressed_speedup = cold_lossless / cold_compressed

    loopback_lossless = _loopback_rehydrate_ms(database, membership, ids, attributes)
    loopback_compressed = _loopback_rehydrate_ms(
        database,
        membership,
        ids,
        attributes,
        snapshot_compression=True,
        centroid_tolerance=CENTROID_TOLERANCE,
    )

    # --- kill-one-node recovery ---------------------------------------------
    killnode_success, failover_ms, failovers = _measure_killnode(
        database, membership, ids, attributes[0], expected
    )
    respawn_ms = _measure_respawn(database, membership, ids, attributes[0])

    # Mutates the database (one-entity ingest), so this runs last.
    delta_bytes, full_bytes = _delta_bytes(database)

    table = ExperimentTable(
        title=f"Cold hydrate & recovery ({ENTITIES} entities, "
        f"{NUM_NODES} nodes, 1 Gbps reference link)",
        columns=["measurement", "value"],
    )
    table.add_row("cold hydrate lossless (ms)", round(cold_lossless, 1))
    table.add_row("cold hydrate compressed (ms)", round(cold_compressed, 1))
    table.add_row("compressed speedup", round(compressed_speedup, 2))
    table.add_row("hydrate bytes lossless", bytes_lossless)
    table.add_row("hydrate bytes compressed", bytes_compressed)
    table.add_row("delta vs full bytes (1-entity ingest)", f"{delta_bytes}/{full_bytes}")
    table.add_row("kill-node failover (ms, R=2)", round(failover_ms, 1))
    table.add_row("kill-node respawn+rehydrate (ms, R=1)", round(respawn_ms, 1))
    print_result(table.format())

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "benchmark": "bench_cold_recovery",
                "domain": "synthetic",
                "entities": len(database),
                "num_nodes": NUM_NODES,
                "num_slices": NUM_SLICES,
                "reference_link_gbps": 1.0,
                "hydrate_bytes_lossless": bytes_lossless,
                "hydrate_bytes_zlib": bytes_zlib,
                "hydrate_bytes_compressed": bytes_compressed,
                "pack_ms_lossless": round(pack_lossless, 2),
                "pack_ms_compressed": round(pack_compressed, 2),
                "install_ms_lossless": round(install_lossless, 2),
                "install_ms_compressed": round(install_compressed, 2),
                "cold_hydrate_ms_lossless": round(cold_lossless, 2),
                "cold_hydrate_ms_compressed": round(cold_compressed, 2),
                "compressed_speedup": round(compressed_speedup, 2),
                "compressed_speedup_floor": COMPRESSED_SPEEDUP_FLOOR,
                "loopback_rehydrate_ms_lossless": round(loopback_lossless, 1),
                "loopback_rehydrate_ms_compressed": round(loopback_compressed, 1),
                "delta_bytes_one_entity_ingest": delta_bytes,
                "full_snapshot_bytes": full_bytes,
                "delta_to_full_ratio": round(delta_bytes / full_bytes, 4),
                "killnode_replicated_success": killnode_success,
                "killnode_replicated_success_floor": 1.0,
                "killnode_failover_ms": round(failover_ms, 1),
                "killnode_respawn_ms": round(respawn_ms, 1),
                "killnode_failovers": failovers,
                "harness": HARNESS,
            },
            indent=2,
        )
        + "\n"
    )

    assert killnode_success == 1.0, "kill-one-node with R=2 was not invisible"
    assert compressed_speedup >= COMPRESSED_SPEEDUP_FLOOR, (
        f"compressed cold hydrate only {compressed_speedup:.2f}x lossless "
        f"on the reference link"
    )
