"""Observability cost on the warm serving path: tracing on vs off.

The unified observability layer (ISSUE 10) keeps the metrics registry
always-on — every cache hit, kernel call, and pruning decision lands in a
registry-backed counter cell — and gates the *tracing* side (contextvar
propagation, span records, ring-buffer stores) behind a runtime flag.
This benchmark prices that design on the warm path, where instrument
overhead is proportionally largest because each query does the least
work:

* **off** — the default production posture: metrics recording, tracing
  disabled (``span()`` degrades to a shared no-op context);
* **on** — ``enable_tracing()``: every query mints a trace context and
  records plan/candidate/score/merge spans into the ring buffer.

One warm :class:`ShardedSubjectiveQueryEngine` serves both modes, so the
caches, column arrays, and bound summaries are byte-identical; the modes
alternate pass-by-pass so both see the same scheduler-noise windows, and
the per-mode best-of-``passes`` maxima are compared.  Rankings must be
bit-identical across modes — tracing is observation, never behaviour.

The contract from ISSUE 10: tracing-on warm throughput within 5% of
tracing-off (``throughput_ratio_floor`` 0.95, gated by
``tools/check_bench_floors.py`` over ``BENCH_obs.json``).

Scale knob: ``REPRO_BENCH_OBS_ENTITIES`` (default 800, floored at 400).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_result
from repro.experiments.common import ExperimentTable
from repro.obs import disable_tracing, enable_tracing, global_trace_store
from repro.serving import ShardedSubjectiveQueryEngine
from repro.testing import build_synthetic_columnar_database, env_int

pytestmark = pytest.mark.slow

#: The measurement harness, recorded verbatim under ``"harness"`` in the
#: results document so a stale ``BENCH_obs.json`` is detectable.  Must
#: stay a pure literal — ``tools/check_bench_floors.py`` reads it with
#: ``ast.literal_eval`` and warns when it drifts from the committed JSON.
HARNESS = {
    "benchmark": "bench_obs_overhead",
    "domain": "synthetic",
    "entities_default": 800,
    "entities_env": "REPRO_BENCH_OBS_ENTITIES",
    "num_shards": 4,
    "backend": "serial",
    "queries": 6,
    "repeats_per_pass": 4,
    "passes": 12,
    "timing": "best-of-alternating-warm-passes",
    "throughput_ratio_floor": 0.95,
}

OBS_ENTITIES = max(400, env_int(HARNESS["entities_env"], HARNESS["entities_default"]))
NUM_SHARDS = HARNESS["num_shards"]
RATIO_FLOOR = HARNESS["throughput_ratio_floor"]
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: A small mixed workload (conjunctions, disjunction, objective filter)
#: served fully warm: the regime where per-query observability overhead
#: is the largest fraction of total work.
QUERIES = [
    'select * from Entities where "word003" and "word019" limit 5',
    'select * from Entities where "word001" and "word002" limit 5',
    'select * from Entities where "word007" or "word023" limit 10',
    "select * from Entities where city = 'london' and \"word004\" limit 5",
    'select * from Entities where "word011" and "word017" limit 5',
    'select * from Entities where "word020" limit 10',
]


@pytest.fixture(scope="module")
def synthetic_database():
    return build_synthetic_columnar_database(num_entities=OBS_ENTITIES, seed=0)


def _one_warm_pass(engine, repeats: int) -> float:
    """Queries per second of one fully warm workload pass."""
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in QUERIES:
            engine.execute(sql)
    return (repeats * len(QUERIES)) / (time.perf_counter() - started)


def test_observability_overhead_within_budget(synthetic_database):
    engine = ShardedSubjectiveQueryEngine(
        database=synthetic_database, num_shards=NUM_SHARDS
    )
    repeats = HARNESS["repeats_per_pass"]
    passes = HARNESS["passes"]

    # Warm every cache once, and pin the differential contract: the same
    # rankings (ids and scores) with tracing off and on.
    disable_tracing()
    baseline = {sql: engine.execute(sql) for sql in QUERIES}
    enable_tracing()
    try:
        for sql in QUERIES:
            traced = engine.execute(sql)
            assert traced.entity_ids == baseline[sql].entity_ids, sql
            assert [entity.score for entity in traced] == [
                entity.score for entity in baseline[sql]
            ], sql
        assert global_trace_store().trace_ids(), "tracing recorded no spans"
    finally:
        disable_tracing()

    # Alternate modes pass-by-pass over the one warm engine and keep the
    # per-mode maxima; tracing state is always restored on the way out.
    best_off = best_on = 0.0
    try:
        for _ in range(passes):
            disable_tracing()
            best_off = max(best_off, _one_warm_pass(engine, repeats))
            enable_tracing()
            best_on = max(best_on, _one_warm_pass(engine, repeats))
    finally:
        disable_tracing()
    ratio = best_on / best_off

    table = ExperimentTable(
        title=(
            f"Observability overhead ({len(synthetic_database)} entities, "
            f"{NUM_SHARDS} serial shards, warm path)"
        ),
        columns=["mode", "qps"],
    )
    table.add_row("metrics only (tracing off)", round(best_off, 1))
    table.add_row("metrics + tracing", round(best_on, 1))
    table.add_row("ratio (on/off)", round(ratio, 4))
    print_result(table.format())

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "benchmark": "bench_obs_overhead",
                "domain": "synthetic",
                "entities": len(synthetic_database),
                "num_shards": NUM_SHARDS,
                "backend": "serial",
                "queries": len(QUERIES),
                "qps_tracing_off": round(best_off, 2),
                "qps_tracing_on": round(best_on, 2),
                "throughput_ratio": round(ratio, 4),
                "throughput_ratio_floor": RATIO_FLOOR,
                "rankings_identical": True,
                "harness": HARNESS,
            },
            indent=2,
        )
        + "\n"
    )

    assert ratio >= RATIO_FLOOR, (
        f"tracing-on warm throughput only {ratio:.4f}x of tracing-off"
    )
