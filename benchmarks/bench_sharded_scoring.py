"""Cold-path scaling of the entity-sharded serving engine.

The sharded engine (PR 3) partitions every attribute's columnar arrays into
K contiguous entity slices, fans uncached degree computation out across
them, scores the WHERE tree over degree *vectors*, and merges per-shard
top-k heaps into the global ranking.  This benchmark measures the cold
(membership-cache-flushed) query path of:

* **unsharded** — the PR 1/2 :class:`repro.serving.SubjectiveQueryEngine`;
* **sharded** — :class:`repro.serving.ShardedSubjectiveQueryEngine` at
  ``REPRO_BENCH_SHARDED_SHARDS`` threaded shards (threads release the GIL
  inside the NumPy kernels; the executor sizes its concurrency to the
  available cores).

Both engines share plan/candidate caches and built column arrays across the
timed passes, so the measurement isolates exactly the work a membership-
cache miss triggers: kernel scoring, fuzzy combination, ranking.

Assertions pin the contract from ISSUE 3: rankings (ids *and* scores)
exactly equal to the unsharded engine, and ≥ 1.5× cold-path speedup at 4
threaded shards on a ≥ 800-entity synthetic domain.  Results are recorded
in ``BENCH_sharded.json`` at the repository root.

Scale knobs: ``REPRO_BENCH_SHARDED_ENTITIES`` (default 800, floored at
800) and ``REPRO_BENCH_SHARDED_SHARDS`` (default 4).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_result
from repro.experiments.common import ExperimentTable
from repro.serving import ShardedSubjectiveQueryEngine, SubjectiveQueryEngine
from repro.testing import build_synthetic_columnar_database, env_int

pytestmark = pytest.mark.slow

#: The measurement harness, recorded verbatim under ``"harness"`` in the
#: results document so a stale ``BENCH_sharded.json`` is detectable.  Must
#: stay a pure literal — ``tools/check_bench_floors.py`` reads it with
#: ``ast.literal_eval`` and warns when it drifts from the committed JSON.
HARNESS = {
    "benchmark": "bench_sharded_scoring",
    "domain": "synthetic",
    "entities_default": 800,
    "entities_env": "REPRO_BENCH_SHARDED_ENTITIES",
    "num_shards_default": 4,
    "backend": "thread",
    "queries": 6,
    "passes": 14,
    "timing": "best-of-interleaved-cold-passes",
    "speedup_floor": 1.5,
}

SHARDED_ENTITIES = max(800, env_int("REPRO_BENCH_SHARDED_ENTITIES", 800))
NUM_SHARDS = env_int("REPRO_BENCH_SHARDED_SHARDS", 4)
SPEEDUP_FLOOR = 1.5
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"

#: Marker names double as predicates in the synthetic domain (each is its
#: own linguistic variation, resolved by the word2vec method).
QUERIES = [
    'select * from Entities where "word003" and "word019" limit 10',
    'select * from Entities where "word005" or "word021" limit 10',
    "select * from Entities where city = 'london' and \"word010\" limit 10",
    'select * from Entities where not "word007" and "word023" limit 10',
    'select * from Entities where "word001" limit 10',
    'select * from Entities where "word017" and "word002" and price < 200 limit 10',
]


@pytest.fixture(scope="module")
def synthetic_database():
    return build_synthetic_columnar_database(num_entities=SHARDED_ENTITIES, seed=0)


def _one_cold_pass(engine) -> float:
    """Queries per second of one membership-cache-flushed workload pass."""
    engine.membership_cache.clear()
    started = time.perf_counter()
    for sql in QUERIES:
        engine.execute(sql)
    return len(QUERIES) / (time.perf_counter() - started)


def _cold_queries_per_second(engines, passes: int = 14) -> list[float]:
    """Best-of-``passes`` cold throughput per engine, passes interleaved.

    Plans, candidate rows and column arrays stay warm (one untimed pass
    builds them), so each timed query pays exactly the cache-miss scoring
    work.  Passes alternate between the engines and each pass is timed
    separately with the best pass winning: scheduler noise on a shared box
    only ever slows a pass down and interleaving exposes every engine to
    the same noise windows, so the per-engine maxima are stable estimators
    of sustainable throughput.
    """
    for engine in engines:
        for sql in QUERIES:
            engine.execute(sql)
    best = [0.0] * len(engines)
    for _ in range(passes):
        for position, engine in enumerate(engines):
            best[position] = max(best[position], _one_cold_pass(engine))
    return best


def test_sharded_cold_path_speedup(synthetic_database):
    database = synthetic_database
    unsharded = SubjectiveQueryEngine(database=database)
    sharded = ShardedSubjectiveQueryEngine(
        database=database, num_shards=NUM_SHARDS, backend="thread"
    )
    try:
        # Rankings — ids and scores — must be exactly those of the single
        # engine (the differential suite additionally pins degrees).
        for sql in QUERIES:
            expected = unsharded.execute(sql)
            actual = sharded.execute(sql)
            assert actual.entity_ids == expected.entity_ids, sql
            assert [entity.score for entity in actual] == [
                entity.score for entity in expected
            ], sql

        unsharded_qps, sharded_qps = _cold_queries_per_second([unsharded, sharded])
        speedup = sharded_qps / unsharded_qps

        table = ExperimentTable(
            title=(
                f"Sharded cold-path serving ({len(database)} entities, "
                f"{NUM_SHARDS} threaded shards)"
            ),
            columns=["engine", "queries", "qps"],
        )
        table.add_row("unsharded", len(QUERIES), round(unsharded_qps, 1))
        table.add_row(f"{NUM_SHARDS}-shard thread", len(QUERIES), round(sharded_qps, 1))
        table.add_row("speedup", "", round(speedup, 2))
        print_result(table.format())

        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "bench_sharded_scoring",
                    "domain": "synthetic",
                    "entities": len(database),
                    "num_shards": NUM_SHARDS,
                    "backend": "thread",
                    "queries": len(QUERIES),
                    "unsharded_qps": round(unsharded_qps, 2),
                    "sharded_qps": round(sharded_qps, 2),
                    "speedup": round(speedup, 2),
                    "speedup_floor": SPEEDUP_FLOOR,
                    "rankings_identical": True,
                    "harness": HARNESS,
                },
                indent=2,
            )
            + "\n"
        )

        assert speedup >= SPEEDUP_FLOOR, (
            f"sharded cold path only {speedup:.2f}x the unsharded engine"
        )
    finally:
        sharded.close()
