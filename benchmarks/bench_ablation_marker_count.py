"""Ablation: number of markers per attribute vs membership quality and cost.

DESIGN.md calls out marker granularity as a designer decision; this ablation
rebuilds the hotel summaries with 2, 4 and 10 markers and measures the
heuristic-membership ranking quality (Spearman-style agreement with the
latent ground truth) and the per-query degree-computation cost.
"""

import time

import numpy as np

from benchmarks.conftest import print_result
from repro.core.membership import HeuristicMembership
from repro.experiments.common import ExperimentTable, prepare_domain


def run_marker_count_ablation(marker_counts=(2, 4, 10), num_entities=25,
                              reviews_per_entity=15):
    rows = []
    for count in marker_counts:
        setup = prepare_domain(
            "hotels", num_entities=num_entities, reviews_per_entity=reviews_per_entity,
            seed=2, num_markers=count,
        )
        membership = HeuristicMembership(embedder=setup.database.phrase_embedder)
        degrees, truths = [], []
        start = time.perf_counter()
        for entity_id in setup.database.entity_ids():
            summary = setup.database.marker_summary(entity_id, "room_cleanliness")
            degrees.append(membership.degree(summary, "really clean rooms"))
            truths.append(setup.corpus.quality(entity_id, "room_cleanliness"))
        elapsed = time.perf_counter() - start
        order_degrees = np.argsort(np.argsort(degrees))
        order_truth = np.argsort(np.argsort(truths))
        correlation = float(np.corrcoef(order_degrees, order_truth)[0, 1])
        rows.append((count, correlation, elapsed))
    return rows


def test_ablation_marker_count(benchmark):
    rows = benchmark.pedantic(run_marker_count_ablation, rounds=1, iterations=1)
    table = ExperimentTable(
        "Ablation: markers per attribute vs ranking agreement with ground truth",
        ["#Markers", "Rank correlation", "Degree-computation time (s)"],
    )
    for count, correlation, elapsed in rows:
        table.add_row(count, round(correlation, 3), round(elapsed, 4))
    print_result(table.format())
    correlations = {count: correlation for count, correlation, _elapsed in rows}
    # Even two markers carry most of the signal; more markers must not hurt
    # badly, and all configurations correlate positively with the truth.
    assert all(value > 0.3 for value in correlations.values())
    assert max(correlations.values()) - min(correlations.values()) < 0.5
