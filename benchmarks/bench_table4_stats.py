"""Benchmark for Table 4 — review statistics per objective query option."""

from benchmarks.conftest import print_result
from repro.experiments.exp_table4_stats import (
    format_review_statistics,
    run_review_statistics,
)


def test_table4_review_statistics(benchmark, hotel_setup_bench, restaurant_setup_bench):
    result = benchmark.pedantic(
        run_review_statistics,
        kwargs={
            "hotel_corpus": hotel_setup_bench.corpus,
            "restaurant_corpus": restaurant_setup_bench.corpus,
        },
        rounds=1, iterations=1,
    )
    print_result(format_review_statistics(result))
    rows = {row.option: row for row in result.rows}
    assert set(rows) == {"london_under_300", "amsterdam", "low_price", "jp_cuisine"}
    # Paper's Table 4 shape: every option keeps a non-trivial candidate pool;
    # review lengths are of comparable magnitude across domains (the synthetic
    # hotel reviews mention more aspects, so they are not shorter as in the
    # paper — see EXPERIMENTS.md), and restaurant reviews are at least as
    # positive as hotel reviews.
    assert all(row.num_entities > 0 and row.num_reviews > 0 for row in result.rows)
    hotel_words = (rows["london_under_300"].avg_words + rows["amsterdam"].avg_words) / 2
    restaurant_words = (rows["low_price"].avg_words + rows["jp_cuisine"].avg_words) / 2
    assert restaurant_words > hotel_words * 0.5
    hotel_polarity = (rows["london_under_300"].avg_polarity + rows["amsterdam"].avg_polarity) / 2
    restaurant_polarity = (rows["low_price"].avg_polarity + rows["jp_cuisine"].avg_polarity) / 2
    assert restaurant_polarity > hotel_polarity - 0.15
