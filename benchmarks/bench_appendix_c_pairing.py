"""Benchmark for Appendix C — rule-based vs supervised pairing."""

from benchmarks.conftest import print_result
from repro.experiments.exp_appendix_c_pairing import (
    format_pairing_experiment,
    run_pairing_experiment,
)


def test_appendix_c_pairing_models(benchmark):
    result = benchmark.pedantic(
        run_pairing_experiment,
        kwargs={"num_sentences": 600, "num_labelled_pairs": 1000, "seed": 0},
        rounds=1, iterations=1,
    )
    print_result(format_pairing_experiment(result))
    # Appendix C's shape: the supervised classifier reaches ~84% accuracy on
    # labelled candidate pairs and the simple rule-based pairer achieves
    # comparable pairing quality (which is why the pipeline defaults to it).
    assert result.supervised_accuracy > 0.7
    assert result.rule_based_f1 > 0.7
    assert abs(result.rule_based_f1 - result.supervised_f1) < 0.25
