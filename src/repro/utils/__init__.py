"""Small shared utilities: deterministic RNG handling and timing helpers."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timing import Stopwatch, timed

__all__ = ["ensure_rng", "spawn_rng", "Stopwatch", "timed"]
