"""Deterministic random-number-generator helpers.

All stochastic components of the library (dataset generators, embedding
training, k-means initialisation, query-workload sampling) accept either a
seed or a :class:`numpy.random.Generator`.  Centralising the conversion here
keeps experiment runs reproducible: the same seed always produces the same
corpus, the same query workload, and the same model initialisation.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (a fixed default seed of 0, so that "unseeded" library calls are
    still deterministic — experiments must be repeatable by default).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if seed_or_rng is None:
        return np.random.default_rng(0)
    return np.random.default_rng(int(seed_or_rng))


def spawn_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a named sub-stream.

    Used when one seeded experiment needs several independent random streams
    (e.g. one for corpus generation and one for query sampling) that must not
    perturb each other when one of them draws more numbers.
    """
    seed = int(rng.integers(0, 2**31 - 1)) + stream * 1_000_003
    return np.random.default_rng(seed)
