"""Timing helpers used by the experiment harness (Table 7 runtimes)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across multiple measured sections.

    The Table 7 experiment measures the total running time of 100 queries;
    a stopwatch lets the harness exclude setup (index construction, model
    training) from the measured query-processing time.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            lap = time.perf_counter() - start
            self.elapsed += lap
            self.laps.append(lap)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Context manager returning a stopwatch holding the elapsed block time."""
    watch = Stopwatch()
    start = time.perf_counter()
    try:
        yield watch
    finally:
        watch.elapsed = time.perf_counter() - start
        watch.laps.append(watch.elapsed)
