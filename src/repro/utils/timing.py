"""Timing helpers: the shared clock plus experiment stopwatches.

:func:`now` is the repo's single monotonic clock source — serving-layer
latency stats and the :mod:`repro.obs` trace spans both read it, so a
span's duration and the legacy ``total_seconds`` counters can never
disagree about what a second is.  ``tools/check_timing_discipline.py``
(run in CI lint) rejects new bare ``time.perf_counter()`` call sites
outside this module and :mod:`repro.obs`.

:class:`Stopwatch` / :func:`timed` serve the experiment harness (Table 7
runtimes): accumulating measured sections while excluding setup.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: The shared monotonic clock (seconds, arbitrary epoch).  An alias of
#: ``time.perf_counter`` so routing call sites through it costs nothing.
now = time.perf_counter


def monotonic() -> float:
    """Coarser monotonic clock for freshness/age checks (not for spans)."""
    return time.monotonic()


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across multiple measured sections.

    The Table 7 experiment measures the total running time of 100 queries;
    a stopwatch lets the harness exclude setup (index construction, model
    training) from the measured query-processing time.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            lap = time.perf_counter() - start
            self.elapsed += lap
            self.laps.append(lap)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Context manager returning a stopwatch holding the elapsed block time."""
    watch = Stopwatch()
    start = time.perf_counter()
    try:
        yield watch
    finally:
        watch.elapsed = time.perf_counter() - start
        watch.laps.append(watch.elapsed)
