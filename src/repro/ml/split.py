"""Dataset splitting helpers (deterministic, seedable)."""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from repro.utils.rng import ensure_rng

T = TypeVar("T")


def train_test_split(
    items: Sequence[T],
    test_fraction: float = 0.2,
    seed: int | np.random.Generator | None = 0,
) -> tuple[list[T], list[T]]:
    """Shuffle ``items`` and split into (train, test) lists.

    ``test_fraction`` must lie in (0, 1); at least one item lands in each
    side whenever there are two or more items.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = ensure_rng(seed)
    indices = np.arange(len(items))
    rng.shuffle(indices)
    n_test = int(round(len(items) * test_fraction))
    if len(items) >= 2:
        n_test = min(max(n_test, 1), len(items) - 1)
    test_indices = set(indices[:n_test].tolist())
    train = [item for i, item in enumerate(items) if i not in test_indices]
    test = [item for i, item in enumerate(items) if i in test_indices]
    return train, test
