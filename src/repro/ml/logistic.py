"""Binary and multiclass logistic regression (numpy, batch gradient descent).

Logistic regression is the workhorse model of OpineDB:

* the **membership functions** of Section 3.3 are the probability outputs of
  a binary logistic-regression classifier trained on (marker summary,
  phrase, label) tuples — the paper explicitly picks LR because its
  probability output can be read as a degree of truth in [0, 1];
* the **attribute classifier** of Section 4.2 maps extracted (aspect,
  opinion) pairs to subjective attributes; the multiclass (softmax) variant
  here supports that use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NotFittedError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


def _softmax(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


@dataclass
class LogisticRegression:
    """L2-regularised logistic regression trained with full-batch gradient descent.

    Handles both binary problems (labels in {0, 1}) and multiclass problems
    (arbitrary hashable labels) — the latter switches to a softmax head.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    epochs:
        Number of full passes over the training matrix.
    l2:
        L2 penalty strength (0 disables regularisation).
    fit_intercept:
        Whether to learn a bias term.
    standardize:
        Whether to z-score features before fitting; the scaler statistics are
        stored and re-applied at prediction time.  Marker-summary features
        have wildly different scales (counts vs averages), so this defaults
        to ``True``.
    """

    learning_rate: float = 0.5
    epochs: int = 300
    l2: float = 1e-3
    fit_intercept: bool = True
    standardize: bool = True

    classes_: list | None = field(default=None, init=False, repr=False)
    weights_: np.ndarray | None = field(default=None, init=False, repr=False)
    _mean: np.ndarray | None = field(default=None, init=False, repr=False)
    _std: np.ndarray | None = field(default=None, init=False, repr=False)

    # ------------------------------------------------------------------ fit
    def fit(self, features: np.ndarray, labels: list | np.ndarray) -> "LogisticRegression":
        """Train on a dense feature matrix and a label list."""
        X = np.asarray(features, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("features must be a 2-D array")
        labels = list(labels)
        if len(labels) != X.shape[0]:
            raise ValueError("features and labels must align")
        self.classes_ = sorted(set(labels), key=repr)
        if len(self.classes_) < 2:
            raise ValueError("need at least two distinct labels")

        if self.standardize:
            self._mean = X.mean(axis=0)
            self._std = X.std(axis=0)
            self._std[self._std == 0.0] = 1.0
            X = (X - self._mean) / self._std
        if self.fit_intercept:
            X = np.hstack([X, np.ones((X.shape[0], 1))])

        if len(self.classes_) == 2:
            self._fit_binary(X, labels)
        else:
            self._fit_multiclass(X, labels)
        return self

    def _fit_binary(self, X: np.ndarray, labels: list) -> None:
        positive = self.classes_[1]
        y = np.array([1.0 if label == positive else 0.0 for label in labels])
        weights = np.zeros(X.shape[1])
        n = X.shape[0]
        for _ in range(self.epochs):
            probabilities = _sigmoid(X @ weights)
            gradient = X.T @ (probabilities - y) / n + self.l2 * weights
            weights -= self.learning_rate * gradient
        self.weights_ = weights.reshape(1, -1)

    def _fit_multiclass(self, X: np.ndarray, labels: list) -> None:
        index_of = {label: i for i, label in enumerate(self.classes_)}
        y = np.zeros((X.shape[0], len(self.classes_)))
        for row, label in enumerate(labels):
            y[row, index_of[label]] = 1.0
        weights = np.zeros((len(self.classes_), X.shape[1]))
        n = X.shape[0]
        for _ in range(self.epochs):
            probabilities = _softmax(X @ weights.T)
            gradient = (probabilities - y).T @ X / n + self.l2 * weights
            weights -= self.learning_rate * gradient
        self.weights_ = weights

    # -------------------------------------------------------------- predict
    def _transform(self, features: np.ndarray) -> np.ndarray:
        if self.weights_ is None or self.classes_ is None:
            raise NotFittedError("LogisticRegression is not fitted")
        X = np.asarray(features, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X.reshape(1, -1)
        if self.standardize and self._mean is not None and self._std is not None:
            X = (X - self._mean) / self._std
        if self.fit_intercept:
            X = np.hstack([X, np.ones((X.shape[0], 1))])
        return X

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return class-probability rows aligned with :attr:`classes_`."""
        X = self._transform(features)
        if len(self.classes_) == 2:
            positive = _sigmoid(X @ self.weights_[0])
            return np.vstack([1.0 - positive, positive]).T
        return _softmax(X @ self.weights_.T)

    def predict(self, features: np.ndarray) -> list:
        """Return the most probable class label per row."""
        probabilities = self.predict_proba(features)
        indices = probabilities.argmax(axis=1)
        return [self.classes_[int(i)] for i in indices]

    def positive_probability(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive (larger-sorted) class; binary only.

        This is the degree-of-truth output used by the membership functions.
        """
        if self.classes_ is None or len(self.classes_) != 2:
            raise NotFittedError("positive_probability requires a fitted binary model")
        return self.predict_proba(features)[:, 1]

    def score(self, features: np.ndarray, labels: list | np.ndarray) -> float:
        """Accuracy on a labelled evaluation set."""
        predictions = self.predict(features)
        labels = list(labels)
        if not labels:
            return 0.0
        return sum(1 for p, g in zip(predictions, labels) if p == g) / len(labels)
