"""Averaged structured perceptron for sequence tagging with Viterbi decoding.

This is the learning machinery behind OpineDB's opinion extractor in this
reproduction.  The paper fine-tunes BERT+BiLSTM+CRF; running transformer
models is out of scope for an offline pure-numpy build, so the tagger is a
linear-chain structured model trained with the averaged perceptron — the same
family of model (feature-based sequence labeller with first-order transition
structure, Viterbi inference) that pre-neural ABSA extractors used.  The
feature templates live in :mod:`repro.extraction.features`; this module is
feature-agnostic: it scores (feature set, tag) emissions and (tag, tag)
transitions.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import NotFittedError
from repro.utils.rng import ensure_rng

FeatureExtractor = Callable[[Sequence[str], int], list[str]]


@dataclass
class StructuredPerceptronTagger:
    """Linear-chain sequence tagger trained with the averaged perceptron.

    Parameters
    ----------
    feature_extractor:
        Callable mapping ``(tokens, position)`` to a list of feature strings.
    tags:
        The closed tag set (e.g. ``["O", "AS", "OP"]``).
    epochs:
        Training passes over the data.
    seed:
        Controls the per-epoch shuffling order.
    """

    feature_extractor: FeatureExtractor
    tags: list[str]
    epochs: int = 8
    seed: int | None = 0

    _emission: dict = field(default_factory=dict, init=False, repr=False)
    _transition: dict = field(default_factory=dict, init=False, repr=False)
    _fitted: bool = field(default=False, init=False, repr=False)

    # ------------------------------------------------------------ training
    def fit(
        self,
        sentences: Sequence[Sequence[str]],
        tag_sequences: Sequence[Sequence[str]],
    ) -> "StructuredPerceptronTagger":
        """Train on aligned token and tag sequences."""
        if len(sentences) != len(tag_sequences):
            raise ValueError("sentences and tag sequences must align")
        for tokens, tags in zip(sentences, tag_sequences):
            if len(tokens) != len(tags):
                raise ValueError("each sentence must align with its tags")
            unknown = set(tags) - set(self.tags)
            if unknown:
                raise ValueError(f"unknown tags in training data: {unknown}")

        rng = ensure_rng(self.seed)
        emission: dict[tuple[str, str], float] = defaultdict(float)
        transition: dict[tuple[str, str], float] = defaultdict(float)
        emission_totals: dict[tuple[str, str], float] = defaultdict(float)
        transition_totals: dict[tuple[str, str], float] = defaultdict(float)
        emission_stamps: dict[tuple[str, str], int] = defaultdict(int)
        transition_stamps: dict[tuple[str, str], int] = defaultdict(int)

        def bump(weights, totals, stamps, key, delta, step):
            totals[key] += (step - stamps[key]) * weights[key]
            stamps[key] = step
            weights[key] += delta

        examples = list(range(len(sentences)))
        step = 0
        for _epoch in range(self.epochs):
            rng.shuffle(examples)
            for index in examples:
                tokens = list(sentences[index])
                gold = list(tag_sequences[index])
                if not tokens:
                    continue
                features = [self.feature_extractor(tokens, i) for i in range(len(tokens))]
                predicted = self._viterbi(features, emission, transition)
                step += 1
                if predicted == gold:
                    continue
                previous_gold = previous_predicted = None
                for i in range(len(tokens)):
                    if gold[i] != predicted[i]:
                        for feature in features[i]:
                            bump(emission, emission_totals, emission_stamps,
                                 (feature, gold[i]), +1.0, step)
                            bump(emission, emission_totals, emission_stamps,
                                 (feature, predicted[i]), -1.0, step)
                    gold_key = (previous_gold or "<s>", gold[i])
                    predicted_key = (previous_predicted or "<s>", predicted[i])
                    if gold_key != predicted_key:
                        bump(transition, transition_totals, transition_stamps,
                             gold_key, +1.0, step)
                        bump(transition, transition_totals, transition_stamps,
                             predicted_key, -1.0, step)
                    previous_gold, previous_predicted = gold[i], predicted[i]

        # Finalise averaging.
        self._emission = {}
        for key, weight in emission.items():
            total = emission_totals[key] + (step - emission_stamps[key]) * weight
            averaged = total / max(1, step)
            if averaged != 0.0:
                self._emission[key] = averaged
        self._transition = {}
        for key, weight in transition.items():
            total = transition_totals[key] + (step - transition_stamps[key]) * weight
            averaged = total / max(1, step)
            if averaged != 0.0:
                self._transition[key] = averaged
        self._fitted = True
        return self

    # ------------------------------------------------------------ inference
    def _viterbi(
        self,
        features: list[list[str]],
        emission: dict[tuple[str, str], float],
        transition: dict[tuple[str, str], float],
    ) -> list[str]:
        n = len(features)
        tags = self.tags
        scores = [[0.0] * len(tags) for _ in range(n)]
        backpointers = [[0] * len(tags) for _ in range(n)]
        for t, tag in enumerate(tags):
            scores[0][t] = (
                sum(emission.get((f, tag), 0.0) for f in features[0])
                + transition.get(("<s>", tag), 0.0)
            )
        for i in range(1, n):
            for t, tag in enumerate(tags):
                emit = sum(emission.get((f, tag), 0.0) for f in features[i])
                best_score, best_prev = float("-inf"), 0
                for p, previous in enumerate(tags):
                    candidate = scores[i - 1][p] + transition.get((previous, tag), 0.0)
                    if candidate > best_score:
                        best_score, best_prev = candidate, p
                scores[i][t] = best_score + emit
                backpointers[i][t] = best_prev
        best_last = max(range(len(tags)), key=lambda t: scores[n - 1][t])
        path = [best_last]
        for i in range(n - 1, 0, -1):
            path.append(backpointers[i][path[-1]])
        path.reverse()
        return [tags[t] for t in path]

    def predict(self, tokens: Sequence[str]) -> list[str]:
        """Tag a single token sequence."""
        if not self._fitted:
            raise NotFittedError("StructuredPerceptronTagger is not fitted")
        if not tokens:
            return []
        features = [self.feature_extractor(list(tokens), i) for i in range(len(tokens))]
        return self._viterbi(features, self._emission, self._transition)

    def predict_many(self, sentences: Sequence[Sequence[str]]) -> list[list[str]]:
        """Tag a corpus of token sequences."""
        return [self.predict(tokens) for tokens in sentences]
