"""Evaluation metrics used across the experiments.

* classification accuracy and precision/recall/F1 (extractor, attribute
  classifier, membership-function LR — Tables 6, 7 and Section 4.2);
* span-level (chunk) F1 for sequence tagging, matching the paper's rule that
  an aspect/opinion term counts only when it matches the gold span exactly;
* NDCG@k-style result quality (Table 5, Table 7) following the paper's
  ``sat(Q, E)`` definition with the 1/log2(j+1) position discount.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence


def accuracy(gold: Sequence[Hashable], predicted: Sequence[Hashable]) -> float:
    """Fraction of positions where ``predicted`` equals ``gold``."""
    if len(gold) != len(predicted):
        raise ValueError("gold and predicted must have the same length")
    if not gold:
        return 0.0
    correct = sum(1 for g, p in zip(gold, predicted) if g == p)
    return correct / len(gold)


def precision_recall_f1(
    num_correct: int, num_predicted: int, num_gold: int
) -> tuple[float, float, float]:
    """Compute (precision, recall, F1) from raw counts, guarding zeros."""
    precision = num_correct / num_predicted if num_predicted else 0.0
    recall = num_correct / num_gold if num_gold else 0.0
    if precision + recall == 0.0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def f1_score(gold: Sequence[Hashable], predicted: Sequence[Hashable],
             positive_label: Hashable = 1) -> float:
    """Binary F1 of ``positive_label`` over aligned label sequences."""
    if len(gold) != len(predicted):
        raise ValueError("gold and predicted must have the same length")
    num_correct = sum(
        1 for g, p in zip(gold, predicted) if g == p == positive_label
    )
    num_predicted = sum(1 for p in predicted if p == positive_label)
    num_gold = sum(1 for g in gold if g == positive_label)
    return precision_recall_f1(num_correct, num_predicted, num_gold)[2]


def extract_spans(tags: Sequence[str]) -> set[tuple[int, int, str]]:
    """Convert a tag sequence into a set of ``(start, end, label)`` spans.

    Tags use the scheme of the paper's Figure 6: "AS" for aspect-term tokens,
    "OP" for opinion-term tokens, "O" for other tokens.  Maximal runs of the
    same non-O tag form one span (an IO scheme — the synthetic corpora never
    place two same-type terms adjacently, matching how the paper's datasets
    are constructed).
    """
    spans: set[tuple[int, int, str]] = set()
    start: int | None = None
    current = "O"
    for index, tag in enumerate(tags):
        if tag != current:
            if current != "O" and start is not None:
                spans.add((start, index, current))
            start = index if tag != "O" else None
            current = tag
    if current != "O" and start is not None:
        spans.add((start, len(tags), current))
    return spans


def span_f1(
    gold_sequences: Sequence[Sequence[str]],
    predicted_sequences: Sequence[Sequence[str]],
    label: str | None = None,
) -> float:
    """Exact-match span F1 over a corpus of tag sequences.

    When ``label`` is given only spans of that type (e.g. "AS" or "OP") are
    scored; otherwise all spans count.  This is the metric of Table 6.
    """
    if len(gold_sequences) != len(predicted_sequences):
        raise ValueError("gold and predicted corpora must have the same size")
    num_correct = num_predicted = num_gold = 0
    for gold_tags, predicted_tags in zip(gold_sequences, predicted_sequences):
        gold_spans = extract_spans(gold_tags)
        predicted_spans = extract_spans(predicted_tags)
        if label is not None:
            gold_spans = {s for s in gold_spans if s[2] == label}
            predicted_spans = {s for s in predicted_spans if s[2] == label}
        num_correct += len(gold_spans & predicted_spans)
        num_predicted += len(predicted_spans)
        num_gold += len(gold_spans)
    return precision_recall_f1(num_correct, num_predicted, num_gold)[2]


def dcg(gains: Sequence[float]) -> float:
    """Discounted cumulative gain with the paper's 1/log2(j+1) discount."""
    return sum(gain / math.log2(j + 2) for j, gain in enumerate(gains))


def ndcg_at_k(gains: Sequence[float], ideal_gains: Sequence[float], k: int) -> float:
    """Normalised DCG@k: DCG of the result divided by DCG of the ideal list.

    ``gains[j]`` is the gain of the entity at rank j (for Table 5 the gain is
    the number of query predicates that entity satisfies); ``ideal_gains``
    are the gains of the best possible ranking, usually the same values
    sorted in decreasing order over all candidate entities.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    numerator = dcg(list(gains)[:k])
    denominator = dcg(sorted(ideal_gains, reverse=True)[:k])
    if denominator == 0.0:
        return 0.0
    return numerator / denominator
