"""Multinomial naive Bayes over bag-of-words features.

Used as a light-weight alternative head for the attribute classifier
(Section 4.2): the classifier maps concatenated (aspect, opinion) phrases to
subjective attributes.  Naive Bayes over token counts is fast to train on the
seed-expanded training set and serves as a comparison point against the
logistic-regression head in the ablation benches.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.errors import NotFittedError
from repro.text.tokenize import tokenize


@dataclass
class MultinomialNaiveBayes:
    """Multinomial naive Bayes text classifier with Laplace smoothing."""

    alpha: float = 1.0

    _class_counts: Counter = field(default_factory=Counter, init=False, repr=False)
    _token_counts: dict = field(default_factory=dict, init=False, repr=False)
    _class_totals: Counter = field(default_factory=Counter, init=False, repr=False)
    _vocabulary: set = field(default_factory=set, init=False, repr=False)
    _fitted: bool = field(default=False, init=False, repr=False)

    def fit(self, texts: Sequence[str], labels: Sequence[Hashable]) -> "MultinomialNaiveBayes":
        """Train on raw text snippets and their labels."""
        if len(texts) != len(labels):
            raise ValueError("texts and labels must align")
        if not texts:
            raise ValueError("training set is empty")
        self._class_counts = Counter()
        self._token_counts = defaultdict(Counter)
        self._class_totals = Counter()
        self._vocabulary = set()
        for text, label in zip(texts, labels):
            tokens = tokenize(text)
            self._class_counts[label] += 1
            self._token_counts[label].update(tokens)
            self._class_totals[label] += len(tokens)
            self._vocabulary.update(tokens)
        self._fitted = True
        return self

    @property
    def classes(self) -> list:
        if not self._fitted:
            raise NotFittedError("MultinomialNaiveBayes is not fitted")
        return sorted(self._class_counts, key=repr)

    def log_scores(self, text: str) -> dict[Hashable, float]:
        """Per-class unnormalised log posterior of ``text``."""
        if not self._fitted:
            raise NotFittedError("MultinomialNaiveBayes is not fitted")
        tokens = tokenize(text)
        total_documents = sum(self._class_counts.values())
        vocabulary_size = max(1, len(self._vocabulary))
        scores: dict[Hashable, float] = {}
        for label in self.classes:
            log_prior = math.log(self._class_counts[label] / total_documents)
            log_likelihood = 0.0
            denominator = self._class_totals[label] + self.alpha * vocabulary_size
            for token in tokens:
                count = self._token_counts[label].get(token, 0)
                log_likelihood += math.log((count + self.alpha) / denominator)
            scores[label] = log_prior + log_likelihood
        return scores

    def predict(self, text: str) -> Hashable:
        """Most probable class for ``text``."""
        scores = self.log_scores(text)
        return max(scores.items(), key=lambda item: (item[1], repr(item[0])))[0]

    def predict_many(self, texts: Sequence[str]) -> list[Hashable]:
        """Vector form of :meth:`predict`."""
        return [self.predict(text) for text in texts]

    def score(self, texts: Sequence[str], labels: Sequence[Hashable]) -> float:
        """Accuracy over a labelled evaluation set."""
        if len(texts) != len(labels):
            raise ValueError("texts and labels must align")
        if not texts:
            return 0.0
        predictions = self.predict_many(texts)
        return sum(1 for p, g in zip(predictions, labels) if p == g) / len(labels)
