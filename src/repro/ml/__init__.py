"""ML substrate: the classical models OpineDB's components are built from.

Logistic regression backs the membership functions (Section 3.3), naive
Bayes / logistic regression back the attribute classifier (Section 4.2),
k-means backs categorical marker discovery (Section 4.2.1), and the
structured perceptron sequence tagger backs the opinion extractor
(Section 4.1, substituting for BERT+BiLSTM+CRF).
"""

from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.kmeans import KMeans, KMeansResult
from repro.ml.perceptron import StructuredPerceptronTagger
from repro.ml.metrics import (
    accuracy,
    f1_score,
    ndcg_at_k,
    precision_recall_f1,
    span_f1,
)
from repro.ml.split import train_test_split

__all__ = [
    "LogisticRegression",
    "MultinomialNaiveBayes",
    "KMeans",
    "KMeansResult",
    "StructuredPerceptronTagger",
    "accuracy",
    "f1_score",
    "precision_recall_f1",
    "span_f1",
    "ndcg_at_k",
    "train_test_split",
]
