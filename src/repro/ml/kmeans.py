"""k-means clustering (k-means++ initialisation, Lloyd iterations).

Categorical marker discovery (Section 4.2.1) clusters the phrase vectors of
a linguistic domain and proposes the variation nearest each centroid as a
marker.  The implementation is deterministic given a seed and exposes both
the assignments and the indices of the points nearest each centroid (the
"medoids"), which is what the marker-discovery step needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    medoid_indices: list[int]


class KMeans:
    """Standard k-means with k-means++ seeding.

    Parameters
    ----------
    n_clusters:
        Number of clusters to produce (clamped to the number of points).
    max_iterations:
        Upper bound on Lloyd iterations.
    tolerance:
        Early-stop threshold on centroid movement.
    seed:
        RNG seed controlling the k-means++ initialisation.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        seed: int | None = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed

    def fit(self, points: np.ndarray) -> KMeansResult:
        """Cluster ``points`` (one row per observation)."""
        X = np.asarray(points, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("points must be a non-empty 2-D array")
        rng = ensure_rng(self.seed)
        k = min(self.n_clusters, X.shape[0])
        centroids = self._init_plus_plus(X, k, rng)
        assignments = np.zeros(X.shape[0], dtype=np.int64)
        for _ in range(self.max_iterations):
            distances = self._pairwise_sq_distances(X, centroids)
            assignments = distances.argmin(axis=1)
            new_centroids = centroids.copy()
            for cluster in range(k):
                members = X[assignments == cluster]
                if len(members):
                    new_centroids[cluster] = members.mean(axis=0)
            movement = float(np.linalg.norm(new_centroids - centroids))
            centroids = new_centroids
            if movement < self.tolerance:
                break
        distances = self._pairwise_sq_distances(X, centroids)
        assignments = distances.argmin(axis=1)
        inertia = float(distances[np.arange(X.shape[0]), assignments].sum())
        medoids = self._medoids(X, centroids, assignments, k)
        return KMeansResult(centroids, assignments, inertia, medoids)

    @staticmethod
    def _pairwise_sq_distances(X: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        diff = X[:, None, :] - centroids[None, :, :]
        return np.einsum("ijk,ijk->ij", diff, diff)

    @staticmethod
    def _init_plus_plus(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        n = X.shape[0]
        centroids = np.empty((k, X.shape[1]))
        first = int(rng.integers(0, n))
        centroids[0] = X[first]
        closest_sq = ((X - centroids[0]) ** 2).sum(axis=1)
        for i in range(1, k):
            total = closest_sq.sum()
            if total <= 0.0:
                choice = int(rng.integers(0, n))
            else:
                probabilities = closest_sq / total
                choice = int(rng.choice(n, p=probabilities))
            centroids[i] = X[choice]
            new_sq = ((X - centroids[i]) ** 2).sum(axis=1)
            closest_sq = np.minimum(closest_sq, new_sq)
        return centroids

    @staticmethod
    def _medoids(
        X: np.ndarray, centroids: np.ndarray, assignments: np.ndarray, k: int
    ) -> list[int]:
        medoids: list[int] = []
        for cluster in range(k):
            member_indices = np.where(assignments == cluster)[0]
            if len(member_indices) == 0:
                distances = ((X - centroids[cluster]) ** 2).sum(axis=1)
                medoids.append(int(distances.argmin()))
                continue
            members = X[member_indices]
            distances = ((members - centroids[cluster]) ** 2).sum(axis=1)
            medoids.append(int(member_indices[distances.argmin()]))
        return medoids
