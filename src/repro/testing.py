"""Shared fixture helpers for the test suite and the benchmark harness.

``tests/conftest.py`` and ``benchmarks/conftest.py`` both need fully built
domain setups (synthetic corpus + subjective database) at different scales;
this module holds the one implementation of the scale knobs and the setup
construction so the two conftests stay thin wrappers.  It also hosts the
cluster **fault-injection harness** (:class:`ClusterFaultInjector`) that
the fault suites and the recovery benchmark drive kill-node /
drop-connection / delay scenarios with.

Scale knobs (benchmark defaults) can be overridden through environment
variables:

* ``REPRO_BENCH_ENTITIES`` (default 60) — entities per domain;
* ``REPRO_BENCH_REVIEWS``  (default 18) — mean reviews per entity;
* ``REPRO_BENCH_QUERIES``  (default 10) — queries per workload cell.
"""

from __future__ import annotations

import os
import signal
import socket
import time

import numpy as np

from repro.core.attributes import ObjectiveAttribute, SubjectiveAttribute, SubjectiveSchema
from repro.core.database import ReviewRecord, SubjectiveDatabase
from repro.core.markers import Marker, MarkerSummary
from repro.engine.types import ColumnType
from repro.experiments.common import DomainSetup, prepare_domain
from repro.extraction.tagger import OpinionTagger


def env_int(name: str, default: int) -> int:
    """An integer environment knob with a default."""
    return int(os.environ.get(name, str(default)))


def bench_scale() -> tuple[int, int, int]:
    """(entities, reviews per entity, queries per cell) for benchmark runs."""
    return (
        env_int("REPRO_BENCH_ENTITIES", 60),
        env_int("REPRO_BENCH_REVIEWS", 18),
        env_int("REPRO_BENCH_QUERIES", 10),
    )


def build_domain_setup(
    domain: str,
    num_entities: int,
    reviews_per_entity: int,
    seed: int,
    num_markers: int = 4,
    tagger: OpinionTagger | None = None,
) -> DomainSetup:
    """One fully built domain setup (corpus, database, banks, oracle)."""
    return prepare_domain(
        domain,
        num_entities=num_entities,
        reviews_per_entity=reviews_per_entity,
        seed=seed,
        num_markers=num_markers,
        tagger=tagger,
    )


def print_result(text: str) -> None:
    """Print a formatted experiment table under pytest/benchmark output."""
    print("\n" + text + "\n")


def corrupt_frame(payload: bytes, position: int, flip: int = 0x01) -> bytes:
    """``payload`` with one byte XOR-flipped — the canonical corruption probe.

    ``flip`` must be non-zero (a zero XOR is a no-op, which would silently
    turn a corruption test into a pass-through) and ``position`` indexes
    into the payload, negative indices included.
    """
    if not payload:
        raise ValueError("cannot corrupt an empty payload")
    if not 0 < flip < 256:
        raise ValueError(f"flip must be a non-zero byte value, got {flip}")
    mutated = bytearray(payload)
    mutated[position] ^= flip
    return bytes(mutated)


class ClusterFaultInjector:
    """Deterministic fault injection against one managed cluster fleet.

    Wraps a :class:`~repro.serving.cluster.ClusterShardStore` (or any
    object exposing its ``processes`` / ``channels`` lists) and turns the
    faults the recovery machinery must survive into one-line test calls:

    * :meth:`kill_node` — SIGKILL the node process (a crashed machine);
    * :meth:`drop_connection` — close the coordinator's socket to one
      node without touching the process (a network partition the node
      survives);
    * :meth:`pause_node` / :meth:`resume_node` — SIGSTOP / SIGCONT the
      process (a stalled node: accepts connections, answers nothing);
    * :func:`corrupt_frame` (module-level) — flip one byte of a payload.

    Only managed fleets can receive process-level faults; the injector
    raises rather than signal a process it cannot see.  Every injector is
    synchronous and deterministic — no background threads, no sleeps
    hidden inside — so tests control exactly when the fault lands
    relative to the request flow.
    """

    def __init__(self, store: object) -> None:
        self.store = store
        self._paused: set[int] = set()

    def _process(self, index: int):
        processes = getattr(self.store, "processes", None)
        if not processes or processes[index] is None:
            raise ValueError(
                f"node {index} has no managed process (external fleet?); "
                "process-level faults need a managed cluster"
            )
        return processes[index]

    def kill_node(self, index: int, wait: bool = True, timeout: float = 10.0) -> int:
        """SIGKILL node ``index``; returns the dead pid.

        With ``wait`` (the default) the call blocks until the process is
        reaped, so the node is provably gone — not merely signalled —
        when the test proceeds to the next request.
        """
        process = self._process(index)
        os.kill(process.pid, signal.SIGKILL)
        if wait:
            process.join(timeout=timeout)
            if process.is_alive():
                raise TimeoutError(f"node {index} (pid {process.pid}) survived SIGKILL")
        return process.pid

    def drop_connection(self, index: int) -> bool:
        """Sever the coordinator's TCP connection to node ``index``.

        The node process stays alive and listening; only the established
        socket dies, exactly like a mid-flight network failure.  Returns
        whether there was a live connection to sever.  The socket is shut
        down, not closed — its descriptor stays valid for the
        coordinator's select pump, which observes EOF and handles the loss
        through its ordinary crash path.
        """
        channel = self.store.channels[index]
        if channel is None or channel.sock is None:
            return False
        try:
            channel.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        return True

    def pause_node(self, index: int) -> None:
        """SIGSTOP node ``index``: alive and connected, but answering nothing."""
        process = self._process(index)
        os.kill(process.pid, signal.SIGSTOP)
        self._paused.add(index)

    def resume_node(self, index: int) -> None:
        """SIGCONT a paused node; it drains its backlog and answers again."""
        process = self._process(index)
        os.kill(process.pid, signal.SIGCONT)
        self._paused.discard(index)

    def delay_node(self, index: int, seconds: float) -> None:
        """Stall node ``index`` for ``seconds`` (SIGSTOP, sleep, SIGCONT).

        A synchronous convenience over :meth:`pause_node` /
        :meth:`resume_node` for tests that only need "the node was slow",
        not precise control of what happens while it is stopped.
        """
        self.pause_node(index)
        try:
            time.sleep(seconds)
        finally:
            self.resume_node(index)

    def restore(self) -> None:
        """Resume every still-paused node (teardown safety net)."""
        for index in list(self._paused):
            try:
                self.resume_node(index)
            except (ValueError, OSError):
                self._paused.discard(index)


def build_synthetic_columnar_database(
    num_entities: int = 800,
    markers_per_attribute: int = 16,
    dimension: int = 48,
    seed: int = 0,
) -> SubjectiveDatabase:
    """A large synthetic database with directly constructed marker summaries.

    The full extraction pipeline is too slow to build the ≥800-entity
    domains the scale-out benchmarks need, and those benchmarks only
    exercise serving-time scoring: what matters is a database with fitted
    text models and one marker summary per (entity, attribute).  Summaries
    are drawn from a seeded RNG; marker names double as interpretable query
    predicates (each is registered as its own linguistic variation, so the
    word2vec method resolves it with similarity 1.0).
    """
    rng = np.random.default_rng(seed)
    vocab = [f"word{index:03d}" for index in range(max(120, 3 * markers_per_attribute))]
    attributes = []
    marker_names: dict[str, list[str]] = {}
    for position, name in enumerate(("quality", "service")):
        names = vocab[position * markers_per_attribute : (position + 1) * markers_per_attribute]
        marker_names[name] = names
        attribute = SubjectiveAttribute(
            name=name,
            markers=[
                Marker(marker, index, 1.0 - 2.0 * index / (markers_per_attribute - 1))
                for index, marker in enumerate(names)
            ],
        )
        attribute.domain.add_many(names)
        attributes.append(attribute)
    schema = SubjectiveSchema(
        name="synthetic",
        entity_key="eid",
        objective_attributes=[
            ObjectiveAttribute("city", ColumnType.TEXT),
            ObjectiveAttribute("price", ColumnType.FLOAT),
        ],
        subjective_attributes=attributes,
    )
    database = SubjectiveDatabase(schema, embedding_dimension=dimension)
    review_id = 0
    cities = ("london", "paris", "rome")
    for position in range(num_entities):
        entity_id = f"e{position:05d}"
        database.add_entity(
            entity_id,
            {"city": cities[position % 3], "price": float(50 + position % 200)},
        )
        for _ in range(2):
            words = rng.choice(vocab, size=12)
            database.add_review(ReviewRecord(review_id, entity_id, " ".join(words)))
            review_id += 1
        for attribute in attributes:
            summary = MarkerSummary(attribute.name, list(attribute.markers))
            for _ in range(int(rng.integers(3, 7))):
                summary.add_phrase(
                    str(rng.choice(marker_names[attribute.name])),
                    sentiment=float(rng.uniform(-1.0, 1.0)),
                )
            summary.add_unmatched(float(rng.integers(0, 3)))
            database.store_summary(entity_id, summary)
    for attribute in attributes:
        for name in marker_names[attribute.name]:
            database.set_variation_marker(attribute.name, name, name)
    database.fit_text_models()
    return database
