"""Shared fixture helpers for the test suite and the benchmark harness.

``tests/conftest.py`` and ``benchmarks/conftest.py`` both need fully built
domain setups (synthetic corpus + subjective database) at different scales;
this module holds the one implementation of the scale knobs and the setup
construction so the two conftests stay thin wrappers.

Scale knobs (benchmark defaults) can be overridden through environment
variables:

* ``REPRO_BENCH_ENTITIES`` (default 60) — entities per domain;
* ``REPRO_BENCH_REVIEWS``  (default 18) — mean reviews per entity;
* ``REPRO_BENCH_QUERIES``  (default 10) — queries per workload cell.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.attributes import ObjectiveAttribute, SubjectiveAttribute, SubjectiveSchema
from repro.core.database import ReviewRecord, SubjectiveDatabase
from repro.core.markers import Marker, MarkerSummary
from repro.engine.types import ColumnType
from repro.experiments.common import DomainSetup, prepare_domain
from repro.extraction.tagger import OpinionTagger


def env_int(name: str, default: int) -> int:
    """An integer environment knob with a default."""
    return int(os.environ.get(name, str(default)))


def bench_scale() -> tuple[int, int, int]:
    """(entities, reviews per entity, queries per cell) for benchmark runs."""
    return (
        env_int("REPRO_BENCH_ENTITIES", 60),
        env_int("REPRO_BENCH_REVIEWS", 18),
        env_int("REPRO_BENCH_QUERIES", 10),
    )


def build_domain_setup(
    domain: str,
    num_entities: int,
    reviews_per_entity: int,
    seed: int,
    num_markers: int = 4,
    tagger: OpinionTagger | None = None,
) -> DomainSetup:
    """One fully built domain setup (corpus, database, banks, oracle)."""
    return prepare_domain(
        domain,
        num_entities=num_entities,
        reviews_per_entity=reviews_per_entity,
        seed=seed,
        num_markers=num_markers,
        tagger=tagger,
    )


def print_result(text: str) -> None:
    """Print a formatted experiment table under pytest/benchmark output."""
    print("\n" + text + "\n")


def build_synthetic_columnar_database(
    num_entities: int = 800,
    markers_per_attribute: int = 16,
    dimension: int = 48,
    seed: int = 0,
) -> SubjectiveDatabase:
    """A large synthetic database with directly constructed marker summaries.

    The full extraction pipeline is too slow to build the ≥800-entity
    domains the scale-out benchmarks need, and those benchmarks only
    exercise serving-time scoring: what matters is a database with fitted
    text models and one marker summary per (entity, attribute).  Summaries
    are drawn from a seeded RNG; marker names double as interpretable query
    predicates (each is registered as its own linguistic variation, so the
    word2vec method resolves it with similarity 1.0).
    """
    rng = np.random.default_rng(seed)
    vocab = [f"word{index:03d}" for index in range(max(120, 3 * markers_per_attribute))]
    attributes = []
    marker_names: dict[str, list[str]] = {}
    for position, name in enumerate(("quality", "service")):
        names = vocab[position * markers_per_attribute : (position + 1) * markers_per_attribute]
        marker_names[name] = names
        attribute = SubjectiveAttribute(
            name=name,
            markers=[
                Marker(marker, index, 1.0 - 2.0 * index / (markers_per_attribute - 1))
                for index, marker in enumerate(names)
            ],
        )
        attribute.domain.add_many(names)
        attributes.append(attribute)
    schema = SubjectiveSchema(
        name="synthetic",
        entity_key="eid",
        objective_attributes=[
            ObjectiveAttribute("city", ColumnType.TEXT),
            ObjectiveAttribute("price", ColumnType.FLOAT),
        ],
        subjective_attributes=attributes,
    )
    database = SubjectiveDatabase(schema, embedding_dimension=dimension)
    review_id = 0
    cities = ("london", "paris", "rome")
    for position in range(num_entities):
        entity_id = f"e{position:05d}"
        database.add_entity(
            entity_id,
            {"city": cities[position % 3], "price": float(50 + position % 200)},
        )
        for _ in range(2):
            words = rng.choice(vocab, size=12)
            database.add_review(ReviewRecord(review_id, entity_id, " ".join(words)))
            review_id += 1
        for attribute in attributes:
            summary = MarkerSummary(attribute.name, list(attribute.markers))
            for _ in range(int(rng.integers(3, 7))):
                summary.add_phrase(
                    str(rng.choice(marker_names[attribute.name])),
                    sentiment=float(rng.uniform(-1.0, 1.0)),
                )
            summary.add_unmatched(float(rng.integers(0, 3)))
            database.store_summary(entity_id, summary)
    for attribute in attributes:
        for name in marker_names[attribute.name]:
            database.set_variation_marker(attribute.name, name, name)
    database.fit_text_models()
    return database
