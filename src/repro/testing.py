"""Shared fixture helpers for the test suite and the benchmark harness.

``tests/conftest.py`` and ``benchmarks/conftest.py`` both need fully built
domain setups (synthetic corpus + subjective database) at different scales;
this module holds the one implementation of the scale knobs and the setup
construction so the two conftests stay thin wrappers.

Scale knobs (benchmark defaults) can be overridden through environment
variables:

* ``REPRO_BENCH_ENTITIES`` (default 60) — entities per domain;
* ``REPRO_BENCH_REVIEWS``  (default 18) — mean reviews per entity;
* ``REPRO_BENCH_QUERIES``  (default 10) — queries per workload cell.
"""

from __future__ import annotations

import os

from repro.experiments.common import DomainSetup, prepare_domain
from repro.extraction.tagger import OpinionTagger


def env_int(name: str, default: int) -> int:
    """An integer environment knob with a default."""
    return int(os.environ.get(name, str(default)))


def bench_scale() -> tuple[int, int, int]:
    """(entities, reviews per entity, queries per cell) for benchmark runs."""
    return (
        env_int("REPRO_BENCH_ENTITIES", 60),
        env_int("REPRO_BENCH_REVIEWS", 18),
        env_int("REPRO_BENCH_QUERIES", 10),
    )


def build_domain_setup(
    domain: str,
    num_entities: int,
    reviews_per_entity: int,
    seed: int,
    num_markers: int = 4,
    tagger: OpinionTagger | None = None,
) -> DomainSetup:
    """One fully built domain setup (corpus, database, banks, oracle)."""
    return prepare_domain(
        domain,
        num_entities=num_entities,
        reviews_per_entity=reviews_per_entity,
        seed=seed,
        num_markers=num_markers,
        tagger=tagger,
    )


def print_result(text: str) -> None:
    """Print a formatted experiment table under pytest/benchmark output."""
    print("\n" + text + "\n")
