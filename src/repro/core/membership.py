"""Membership functions: from marker summaries to degrees of truth (Section 3.3).

Given an interpreted predicate ``A ≐ m`` (attribute A, marker m, original
query phrase q) and an entity's marker summary for A, a membership function
returns a degree of truth in [0, 1].

Three implementations are provided:

``HeuristicMembership``
    A training-free function combining two signals read off the summary:
    (a) *sentiment-aligned mass* — how much of the summary's phrase mass sits
    on markers whose polarity agrees with the polarity of the query phrase
    ("really clean" is positive, so mass on positive markers counts); and
    (b) *similarity mass* — how much of the mass sits on the markers most
    similar to the phrase in embedding space (which handles non-polar
    phrases like "firm beds").  It is the bootstrap used to label training
    data cheaply and the default when no labelled tuples are available.

``LearnedMembership``
    The paper's approach: a binary logistic-regression classifier trained on
    labelled ``(marker summary, phrase, label)`` tuples; its positive-class
    probability is the degree of truth.  Features come only from the
    precomputed marker summary (marker masses, per-marker sentiments,
    marker/phrase similarities), which is what makes query processing fast.

``RawExtractionMembership``
    The "no markers" ablation of Table 7: the same logistic-regression
    model, but with features computed at query time by scanning all the raw
    extracted phrases of the entity/attribute (number and fraction of
    phrases similar to the query predicate, their average sentiment, ...).
    It is substantially slower, which is exactly the effect Table 7 measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core import columnar
from repro.core.columnar import AttributeColumns
from repro.core.database import ExtractionRecord, SubjectiveDatabase
from repro.core.markers import MarkerSummary
from repro.errors import NotFittedError
from repro.ml.logistic import LogisticRegression, _sigmoid
from repro.text.embeddings import PhraseEmbedder, cosine
from repro.text.sentiment import SentimentAnalyzer

#: Number of features produced by :func:`summary_feature_vector`.
SUMMARY_FEATURE_COUNT = 12

_ANALYZER = SentimentAnalyzer()
_POLARITY_CACHE: dict[str, float] = {}


def _phrase_polarity(phrase: str) -> float:
    """Memoised sentiment polarity of a phrase (phrases repeat across entities)."""
    cached = _POLARITY_CACHE.get(phrase)
    if cached is None:
        cached = _ANALYZER.polarity(phrase)
        if len(_POLARITY_CACHE) < 100_000:
            _POLARITY_CACHE[phrase] = cached
    return cached


@dataclass
class PhraseContext:
    """Per-phrase quantities hoisted out of per-entity scoring.

    Scoring one predicate against many candidate entities repeats the same
    phrase-level work (sentiment polarity, phrase embedding, similarity to
    each marker name) for every entity.  A context computes each of those
    once; the per-entity remainder then only touches that entity's summary
    arrays.  Contexts are what make :meth:`MembershipFunction.degrees` a
    single pass over precomputed arrays rather than N independent scorings.
    """

    #: Memoised marker-name similarities are capped per context; marker-name
    #: vocabularies are tiny in practice, so the cap only guards pathological
    #: callers that stream unbounded marker names through one context.
    NAME_CACHE_LIMIT = 4096

    phrase: str
    polarity: float
    vector: np.ndarray | None
    embedder: PhraseEmbedder | None
    _name_similarities: dict[str, float] = field(default_factory=dict)

    def name_similarity(self, marker_name: str) -> float:
        """Memoised similarity of the query phrase to one marker name."""
        cached = self._name_similarities.get(marker_name)
        if cached is None:
            if self.embedder is None or self.vector is None:
                cached = 0.0
            else:
                cached = cosine(self.vector, self.embedder.represent(marker_name))
            if len(self._name_similarities) < self.NAME_CACHE_LIMIT:
                self._name_similarities[marker_name] = cached
        return cached

    def prime_name_similarities(self, columns: AttributeColumns) -> None:
        """Prefill the name-similarity memo from columnar marker-name units.

        One M×D matrix–vector product against the store's shared
        prenormalized marker-name matrix replaces M separate cosine calls
        when a scalar-path context scores an attribute the columnar store
        has already materialised.
        """
        if self.vector is None or columns.dimension != self.vector.shape[0]:
            return
        norm = float(np.linalg.norm(self.vector))
        if norm == 0.0:
            similarities = np.zeros(columns.num_markers)
        else:
            similarities = columns.name_units @ (self.vector / norm)
        for marker, similarity in zip(columns.markers, similarities):
            if len(self._name_similarities) >= self.NAME_CACHE_LIMIT:
                break
            self._name_similarities.setdefault(marker.name, float(similarity))


def _context_for(phrase: str, embedder: PhraseEmbedder | None) -> PhraseContext:
    return PhraseContext(
        phrase=phrase,
        polarity=_phrase_polarity(phrase),
        vector=embedder.represent(phrase) if embedder is not None else None,
        embedder=embedder,
    )


def _marker_similarities_ctx(summary: MarkerSummary, ctx: PhraseContext) -> list[float]:
    """Similarity of the query phrase to each marker (name and centroid)."""
    if ctx.embedder is None:
        return [0.0] * len(summary.markers)
    arrays = summary.arrays()
    similarities = []
    for index, marker in enumerate(summary.markers):
        name_similarity = ctx.name_similarity(marker.name)
        vector_sum = arrays.vector_sums[index]
        if vector_sum is None:
            centroid_similarity = 0.0
        else:
            count = arrays.counts[index]
            centroid = vector_sum / count if count != 0.0 else vector_sum
            centroid_similarity = cosine(ctx.vector, centroid)
        similarities.append(max(name_similarity, centroid_similarity))
    return similarities


def _marker_similarities(
    summary: MarkerSummary, phrase: str, embedder: PhraseEmbedder | None
) -> list[float]:
    """Similarity of the query phrase to each marker (name and centroid)."""
    return _marker_similarities_ctx(summary, _context_for(phrase, embedder))


def _marker_polarities(summary: MarkerSummary) -> list[float]:
    """Polarity of each marker: observed average sentiment, else the marker's own."""
    arrays = summary.arrays()
    polarities = []
    for index, marker in enumerate(summary.markers):
        observed = float(arrays.average_sentiments[index])
        if abs(observed) < 1e-9 and arrays.counts[index] == 0.0:
            observed = marker.sentiment
        polarities.append(observed if abs(observed) > 1e-9 else marker.sentiment)
    return polarities


def _aligned_mass(summary: MarkerSummary, phrase_polarity: float) -> float:
    """Share of the summary's mass on markers agreeing with the phrase polarity.

    Each marker contributes its fraction weighted by ``0.5·(1 + sign·pol)``,
    so a summary fully concentrated on strongly agreeing markers scores near
    1 and one concentrated on strongly disagreeing markers scores near 0.
    """
    arrays = summary.arrays()
    if arrays.total == 0.0:
        return 0.0
    sign = 1.0 if phrase_polarity >= 0 else -1.0
    polarities = _marker_polarities(summary)
    alignments = [0.5 * (1.0 + sign * max(-1.0, min(1.0, polarity)))
                  for polarity in polarities]
    return float(np.dot(arrays.fractions, alignments))


def _similarity_mass_ctx(
    summary: MarkerSummary, ctx: PhraseContext
) -> tuple[float, list[float]]:
    """Mass concentrated on the markers most similar to the phrase, in [0, 1]."""
    similarities = _marker_similarities_ctx(summary, ctx)
    arrays = summary.arrays()
    fractions = arrays.fractions
    positives = np.clip(np.array(similarities), 0.0, None) ** 2
    if positives.sum() <= 0 or arrays.total == 0.0:
        return 0.5, similarities
    weights = positives / positives.sum()
    expected = float(np.dot(weights, fractions))
    peak = float(np.max(fractions)) if len(fractions) else 1.0
    return min(1.0, expected / (peak + 1e-9)), similarities


def _similarity_mass(
    summary: MarkerSummary, phrase: str, embedder: PhraseEmbedder | None
) -> tuple[float, list[float]]:
    """Mass concentrated on the markers most similar to the phrase, in [0, 1]."""
    return _similarity_mass_ctx(summary, _context_for(phrase, embedder))


def summary_feature_vector(
    summary: MarkerSummary,
    phrase: str,
    embedder: PhraseEmbedder | None,
    phrase_sentiment: float | None = None,
) -> np.ndarray:
    """Fixed-length feature vector of a (marker summary, phrase) pair.

    The features only read the precomputed summary statistics (marker
    masses, per-marker average sentiment, centroids), never the underlying
    extractions — that is the efficiency argument of Section 3.3.  They are
    aggregated so the vector length does not depend on the number of
    markers, letting a single model serve attributes with different marker
    counts.
    """
    return _summary_features_ctx(
        summary, _context_for(phrase, embedder), phrase_sentiment
    )


def _summary_features_ctx(
    summary: MarkerSummary,
    ctx: PhraseContext,
    phrase_sentiment: float | None = None,
) -> np.ndarray:
    """Feature vector against a prebuilt phrase context (hoisted batch path)."""
    if phrase_sentiment is None:
        phrase_sentiment = ctx.polarity
    total = summary.total()
    fractions = [summary.fraction(name) for name in summary.marker_names]
    sentiments = [summary.average_sentiment(name) for name in summary.marker_names]
    similarity_mass, similarities = _similarity_mass_ctx(summary, ctx)
    aligned = _aligned_mass(summary, phrase_sentiment)
    best = int(np.argmax(similarities)) if similarities else 0
    overall_sentiment = summary.overall_sentiment()
    unmatched_fraction = (
        summary.num_unmatched / (summary.num_unmatched + total)
        if (summary.num_unmatched + total) > 0
        else 0.0
    )
    return np.array(
        [
            math.log1p(total),
            aligned,
            similarity_mass,
            fractions[best] if fractions else 0.0,
            similarities[best] if similarities else 0.0,
            sentiments[best] if sentiments else 0.0,
            overall_sentiment,
            phrase_sentiment,
            phrase_sentiment * overall_sentiment,
            unmatched_fraction,
            float(np.dot(fractions, sentiments)) if fractions else 0.0,
            1.0 if total == 0 else 0.0,
        ]
    )


class MembershipFunction:
    """Interface: degree of truth of a phrase given a marker summary."""

    def degree(self, summary: MarkerSummary | None, phrase: str) -> float:
        """Return a degree of truth in [0, 1]; ``summary`` may be ``None``."""
        raise NotImplementedError

    def degrees(
        self, summaries: Sequence[MarkerSummary | None], phrase: str
    ) -> np.ndarray:
        """Degrees of truth of one phrase against many summaries.

        The batch-over-entities primitive driven by the query processor and
        the serving engine.  The default loops over :meth:`degree`;
        implementations override it to hoist phrase-level work out of the
        per-entity loop.  Must return exactly the values :meth:`degree` would
        return element-wise.
        """
        return np.array([self.degree(summary, phrase) for summary in summaries])


@dataclass
class HeuristicMembership(MembershipFunction):
    """Training-free membership: sentiment-aligned mass blended with similarity mass.

    The sentiment-aligned score is shrunk towards the neutral prior 0.5 with
    ``smoothing_pseudocount`` pseudo-observations, so an entity whose summary
    holds a single agreeing phrase does not outrank one with twenty phrases
    that are almost all agreeing.
    """

    embedder: PhraseEmbedder | None = None
    empty_degree: float = 0.25
    polar_sentiment_weight: float = 0.75
    neutral_sentiment_weight: float = 0.3
    smoothing_pseudocount: float = 3.0

    def degree(self, summary: MarkerSummary | None, phrase: str) -> float:
        return self._degree_in_context(summary, _context_for(phrase, self.embedder))

    def degrees(
        self, summaries: Sequence[MarkerSummary | None], phrase: str
    ) -> np.ndarray:
        """Batch scoring: the phrase context is built once for all summaries."""
        ctx = _context_for(phrase, self.embedder)
        return np.array(
            [self._degree_in_context(summary, ctx) for summary in summaries]
        )

    def degrees_columnar(self, columns: AttributeColumns, phrase: str) -> np.ndarray:
        """Attribute-wide scoring: one phrase against every entity in ``columns``.

        The columnar mirror of :meth:`degree` — marker similarities as one
        tensor–vector product, aligned/similarity mass as matrix reductions,
        smoothing and blending as elementwise kernels.  Returns a length-E
        vector aligned with ``columns.entity_ids``, equal to the scalar path
        up to floating-point round-off of the batched linear algebra.
        """
        vector = self.embedder.represent(phrase) if self.embedder is not None else None
        polarity = _phrase_polarity(phrase)
        similarities = columnar.phrase_marker_similarities(columns, vector)
        similarity_mass = columnar.similarity_mass(columns, similarities)
        if abs(polarity) >= 0.05:
            sentiment_weight = self.polar_sentiment_weight
            sentiment_scores = columnar.aligned_mass(columns, polarity)
        else:
            sentiment_weight = self.neutral_sentiment_weight
            sentiment_scores = 0.5 * (1.0 + columns.overall_sentiments)
        totals = columns.totals
        k = self.smoothing_pseudocount
        sentiment_scores = (sentiment_scores * totals + 0.5 * k) / (totals + k)
        degrees = (
            sentiment_weight * sentiment_scores
            + (1.0 - sentiment_weight) * similarity_mass
        )
        return np.where(totals == 0.0, self.empty_degree, np.clip(degrees, 0.0, 1.0))

    def degree_bounds(
        self, bounds: "columnar.ScoreBounds", phrase: str
    ) -> "tuple[np.ndarray, np.ndarray] | None":
        """Sound per-entity ``[lo, hi]`` envelope of :meth:`degrees_columnar`.

        The sentiment half of the blend reads only the E×M fraction and
        sentiment matrices, so it is computed *exactly*; only the similarity
        mass — the half that needs the E×M×D centroid tensor — is bracketed
        through :func:`repro.core.columnar.similarity_mass_bounds`.  Every
        exact degree therefore lies inside the returned envelope, which is
        what lets the top-k planner prune entities whose ``hi`` cannot reach
        the running k-th score without ever computing their exact degree.
        """
        columns = bounds.columns
        vector = self.embedder.represent(phrase) if self.embedder is not None else None
        polarity = _phrase_polarity(phrase)
        mass_lo, mass_hi = columnar.similarity_mass_bounds(bounds, vector)
        if abs(polarity) >= 0.05:
            sentiment_weight = self.polar_sentiment_weight
            sentiment_scores = columnar.aligned_mass(columns, polarity)
        else:
            sentiment_weight = self.neutral_sentiment_weight
            sentiment_scores = 0.5 * (1.0 + columns.overall_sentiments)
        totals = columns.totals
        k = self.smoothing_pseudocount
        sentiment_scores = (sentiment_scores * totals + 0.5 * k) / (totals + k)
        base = sentiment_weight * sentiment_scores
        lo = np.clip(base + (1.0 - sentiment_weight) * mass_lo, 0.0, 1.0)
        hi = np.clip(base + (1.0 - sentiment_weight) * mass_hi, 0.0, 1.0)
        empty = totals == 0.0
        lo = np.where(empty, self.empty_degree, lo)
        hi = np.where(empty, self.empty_degree, hi)
        return lo, hi

    def context_for(self, phrase: str) -> PhraseContext:
        """A phrase context usable with :meth:`context_degree` (fallback path)."""
        return _context_for(phrase, self.embedder)

    def context_degree(self, summary: MarkerSummary | None, ctx: PhraseContext) -> float:
        """Score one summary against a shared (possibly primed) context."""
        return self._degree_in_context(summary, ctx)

    def _degree_in_context(
        self, summary: MarkerSummary | None, ctx: PhraseContext
    ) -> float:
        if summary is None:
            return self.empty_degree
        arrays = summary.arrays()
        if arrays.total == 0.0:
            return self.empty_degree
        similarity_mass, _similarities = _similarity_mass_ctx(summary, ctx)
        if abs(ctx.polarity) >= 0.05:
            sentiment_weight = self.polar_sentiment_weight
            sentiment_score = _aligned_mass(summary, ctx.polarity)
        else:
            sentiment_weight = self.neutral_sentiment_weight
            sentiment_score = 0.5 * (1.0 + summary.overall_sentiment())
        total = arrays.total
        k = self.smoothing_pseudocount
        sentiment_score = (sentiment_score * total + 0.5 * k) / (total + k)
        degree = sentiment_weight * sentiment_score + (1.0 - sentiment_weight) * similarity_mass
        return min(1.0, max(0.0, degree))


@dataclass
class LearnedMembership(MembershipFunction):
    """Logistic-regression membership trained on labelled (summary, phrase) tuples."""

    embedder: PhraseEmbedder | None = None
    model: LogisticRegression = field(default_factory=LogisticRegression)
    _fitted: bool = field(default=False, init=False)

    def _features(self, summary: MarkerSummary, phrase: str) -> np.ndarray:
        return summary_feature_vector(summary, phrase, self.embedder)

    def fit(
        self,
        examples: Sequence[tuple[MarkerSummary, str, int]],
    ) -> "LearnedMembership":
        """Train on ``(summary, phrase, label)`` tuples with binary labels."""
        if not examples:
            raise ValueError("no training examples provided")
        features = np.vstack(
            [self._features(summary, phrase) for summary, phrase, _label in examples]
        )
        labels = [int(label) for _summary, _phrase, label in examples]
        if len(set(labels)) < 2:
            raise ValueError("training labels must include both classes")
        self.model.fit(features, labels)
        self._fitted = True
        return self

    def accuracy(self, examples: Sequence[tuple[MarkerSummary, str, int]]) -> float:
        """Classification accuracy on held-out labelled tuples."""
        if not self._fitted:
            raise NotFittedError("LearnedMembership is not fitted")
        features = np.vstack(
            [self._features(summary, phrase) for summary, phrase, _label in examples]
        )
        labels = [int(label) for _summary, _phrase, label in examples]
        return self.model.score(features, labels)

    def degree(self, summary: MarkerSummary | None, phrase: str) -> float:
        if not self._fitted:
            raise NotFittedError("LearnedMembership is not fitted")
        if summary is None:
            return 0.25
        features = self._features(summary, phrase)
        return float(self.model.positive_probability(features.reshape(1, -1))[0])

    def degrees(
        self, summaries: Sequence[MarkerSummary | None], phrase: str
    ) -> np.ndarray:
        """Batch scoring: one phrase context, one stacked logistic evaluation.

        The phrase-level work (polarity, embedding, marker-name similarities)
        is hoisted into a single context, the per-summary feature vectors are
        vstacked, and the model runs once over the whole matrix instead of
        once per entity.  Values match :meth:`degree` element-wise up to
        floating-point round-off of the batched linear algebra.
        """
        if not self._fitted:
            raise NotFittedError("LearnedMembership is not fitted")
        degrees = np.full(len(summaries), 0.25)
        ctx = _context_for(phrase, self.embedder)
        present = [i for i, summary in enumerate(summaries) if summary is not None]
        if present:
            features = np.vstack(
                [_summary_features_ctx(summaries[i], ctx) for i in present]
            )
            degrees[present] = self.model.positive_probability(features)
        return degrees

    def degrees_columnar(self, columns: AttributeColumns, phrase: str) -> np.ndarray:
        """Attribute-wide scoring: E×12 feature matrix, one logistic pass."""
        if not self._fitted:
            raise NotFittedError("LearnedMembership is not fitted")
        vector = self.embedder.represent(phrase) if self.embedder is not None else None
        features = columnar.summary_feature_matrix(
            columns, vector, _phrase_polarity(phrase)
        )
        return self.model.positive_probability(features)

    def degree_bounds(
        self, bounds: "columnar.ScoreBounds", phrase: str
    ) -> "tuple[np.ndarray, np.ndarray] | None":
        """Sound per-entity ``[lo, hi]`` envelope of :meth:`degrees_columnar`.

        Interval arithmetic through the logistic head: most of the 12
        summary features are exact functions of the E×M matrices, and the
        uncertain ones (similarity mass, best-marker fraction / similarity /
        sentiment) are replaced by per-row boxes from the precomputed
        :class:`repro.core.columnar.ScoreBounds`.  Each feature interval is
        pushed through its effective linear coefficient (weights folded with
        the stored standardization), the interval decision values are padded
        against float round-off, and the monotone sigmoid maps them to
        degree bounds.  Returns ``None`` for configurations the envelope
        cannot cover (unfitted or non-binary model, feature-count mismatch,
        marker-less columns) — callers fall back to full scoring.
        """
        if not self._fitted:
            return None
        model = self.model
        if (
            model.weights_ is None
            or model.classes_ is None
            or len(model.classes_) != 2
        ):
            return None
        columns = bounds.columns
        if columns.num_markers == 0:
            return None
        vector = self.embedder.represent(phrase) if self.embedder is not None else None
        polarity = _phrase_polarity(phrase)
        num_entities = columns.num_entities
        aligned = columnar.aligned_mass(columns, polarity)
        mass_lo, mass_hi = columnar.similarity_mass_bounds(bounds, vector)
        norm = float(np.linalg.norm(vector)) if vector is not None else 0.0
        if vector is None or columns.dimension == 0 or norm == 0.0:
            similarity_lo = np.zeros(num_entities)
            similarity_hi = np.zeros(num_entities)
        else:
            name_similarities = columns.name_units @ (vector / norm)  # (M,)
            similarity_lo = np.full(num_entities, float(name_similarities.max()))
            similarity_hi = (
                name_similarities[np.newaxis, :] + bounds.deviations
            ).max(axis=1)
        denominators = columns.unmatched + columns.totals
        unmatched_fractions = np.where(
            denominators > 0.0,
            columns.unmatched / np.where(denominators > 0.0, denominators, 1.0),
            0.0,
        )
        phrase_sentiments = np.full(num_entities, polarity)
        dots = np.einsum(
            "em,em->e", columns.fractions, columns.average_sentiments
        )
        empties = (columns.totals == 0.0).astype(np.float64)
        shared = {
            0: np.log1p(columns.totals),
            1: aligned,
            6: columns.overall_sentiments,
            7: phrase_sentiments,
            8: polarity * columns.overall_sentiments,
            9: unmatched_fractions,
            10: dots,
            11: empties,
        }
        feature_lo = np.empty((num_entities, SUMMARY_FEATURE_COUNT))
        feature_hi = np.empty((num_entities, SUMMARY_FEATURE_COUNT))
        for index, column in shared.items():
            feature_lo[:, index] = column
            feature_hi[:, index] = column
        feature_lo[:, 2], feature_hi[:, 2] = mass_lo, mass_hi
        feature_lo[:, 3], feature_hi[:, 3] = bounds.fraction_mins, bounds.fraction_peaks
        feature_lo[:, 4], feature_hi[:, 4] = similarity_lo, similarity_hi
        feature_lo[:, 5], feature_hi[:, 5] = bounds.sentiment_mins, bounds.sentiment_maxs
        weights = np.asarray(model.weights_[0], dtype=np.float64)
        if model.fit_intercept:
            if weights.shape[0] != SUMMARY_FEATURE_COUNT + 1:
                return None
            coefficients = weights[:SUMMARY_FEATURE_COUNT].copy()
            constant = float(weights[SUMMARY_FEATURE_COUNT])
        else:
            if weights.shape[0] != SUMMARY_FEATURE_COUNT:
                return None
            coefficients = weights.copy()
            constant = 0.0
        if model.standardize and model._mean is not None and model._std is not None:
            constant -= float(np.dot(coefficients, model._mean / model._std))
            coefficients = coefficients / model._std
        products_lo = feature_lo * coefficients
        products_hi = feature_hi * coefficients
        z_lo = constant + np.minimum(products_lo, products_hi).sum(axis=1) - 1e-6
        z_hi = constant + np.maximum(products_lo, products_hi).sum(axis=1) + 1e-6
        return _sigmoid(z_lo), _sigmoid(z_hi)


def raw_extraction_features(
    extractions: Sequence[ExtractionRecord],
    phrase: str,
    embedder: PhraseEmbedder | None,
    similarity_threshold: float = 0.4,
) -> np.ndarray:
    """Query-time features computed from the raw extraction list (no markers).

    Mirrors the engineered feature set the paper describes for the
    marker-free variant: counts and fractions of extracted phrases similar
    to the query predicate, their sentiment, and overall statistics.  The
    cost is a full scan of the entity's extractions per query predicate.
    """
    total = len(extractions)
    phrase_polarity = _phrase_polarity(phrase)
    if total == 0:
        return np.zeros(9)
    if embedder is not None:
        # One stacked cosine kernel over all extraction-phrase vectors; the
        # embedder memoises represent() so repeated scans of the same entity
        # pay only the matrix product, never re-embedding.
        phrase_vector = embedder.represent(phrase)
        phrase_norm = float(np.linalg.norm(phrase_vector))
        if phrase_norm == 0.0:
            similarities = [0.0] * total
        else:
            matrix = np.vstack(
                [embedder.represent(record.phrase) for record in extractions]
            )
            norms = np.linalg.norm(matrix, axis=1)
            scale = np.where(norms > 0.0, norms * phrase_norm, 1.0)
            products = (matrix @ phrase_vector) / scale
            similarities = np.where(norms > 0.0, products, 0.0).tolist()
    else:
        similarities = [0.0] * total
    similar = [
        (record, sim)
        for record, sim in zip(extractions, similarities)
        if sim >= similarity_threshold
    ]
    sentiments = [record.sentiment for record in extractions]
    similar_sentiments = [record.sentiment for record, _sim in similar]
    sign = 1.0 if phrase_polarity >= 0 else -1.0
    aligned = sum(0.5 * (1.0 + sign * max(-1.0, min(1.0, s))) for s in sentiments) / total
    positive_fraction = sum(1 for s in sentiments if s > 0.05) / total
    return np.array(
        [
            math.log1p(total),
            aligned,
            len(similar) / total,
            float(np.mean(similar_sentiments)) if similar_sentiments else 0.0,
            float(np.mean(sentiments)),
            positive_fraction,
            max(similarities) if similarities else 0.0,
            float(np.mean(similarities)) if similarities else 0.0,
            phrase_polarity,
        ]
    )


@dataclass
class RawExtractionMembership(MembershipFunction):
    """The Table-7 "no markers" variant: LR over raw-extraction features.

    Requires the owning :class:`SubjectiveDatabase` so it can scan the
    extraction lists at query time; the attribute of the interpreted
    predicate must be supplied through :meth:`degree_for_attribute` (the
    generic :meth:`degree` signature has no attribute, so it is not
    supported on this class).
    """

    database: SubjectiveDatabase
    embedder: PhraseEmbedder | None = None
    model: LogisticRegression = field(default_factory=LogisticRegression)
    _fitted: bool = field(default=False, init=False)

    def fit(
        self,
        examples: Sequence[tuple[object, str, str, int]],
    ) -> "RawExtractionMembership":
        """Train on ``(entity_id, attribute, phrase, label)`` tuples."""
        if not examples:
            raise ValueError("no training examples provided")
        features = np.vstack(
            [
                raw_extraction_features(
                    self.database.extractions(entity_id=entity, attribute=attribute),
                    phrase,
                    self.embedder,
                )
                for entity, attribute, phrase, _label in examples
            ]
        )
        labels = [int(label) for _entity, _attribute, _phrase, label in examples]
        if len(set(labels)) < 2:
            raise ValueError("training labels must include both classes")
        self.model.fit(features, labels)
        self._fitted = True
        return self

    def accuracy(self, examples: Sequence[tuple[object, str, str, int]]) -> float:
        """Classification accuracy on held-out (entity, attribute, phrase, label) tuples."""
        if not self._fitted:
            raise NotFittedError("RawExtractionMembership is not fitted")
        features = np.vstack(
            [
                raw_extraction_features(
                    self.database.extractions(entity_id=entity, attribute=attribute),
                    phrase,
                    self.embedder,
                )
                for entity, attribute, phrase, _label in examples
            ]
        )
        labels = [int(label) for _entity, _attribute, _phrase, label in examples]
        return self.model.score(features, labels)

    def degree_for_attribute(self, entity_id: object, attribute: str, phrase: str) -> float:
        """Degree of truth computed by scanning the raw extractions."""
        if not self._fitted:
            raise NotFittedError("RawExtractionMembership is not fitted")
        extractions = self.database.extractions(entity_id=entity_id, attribute=attribute)
        features = raw_extraction_features(extractions, phrase, self.embedder)
        return float(self.model.positive_probability(features.reshape(1, -1))[0])

    def degree(self, summary: MarkerSummary | None, phrase: str) -> float:
        """Summary-based signature for interface compatibility.

        The marker-free model has no use for the summary; callers should use
        :meth:`degree_for_attribute`.  Provided so the class can stand in
        where a :class:`MembershipFunction` is expected.
        """
        raise NotImplementedError(
            "RawExtractionMembership requires degree_for_attribute(entity, attribute, phrase)"
        )
