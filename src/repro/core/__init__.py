"""Core of the reproduction: the subjective data model and query processor.

This package contains the paper's primary contribution:

* the data model — linguistic domains, markers and marker summaries
  (Section 2), subjective attributes and subjective schemas;
* fuzzy-logic combination of degrees of truth (Section 3.1);
* membership functions turning marker summaries into degrees of truth
  (Section 3.3);
* the subjective query interpreter with its word2vec, co-occurrence and
  text-retrieval methods (Section 3.2, Figure 5);
* the subjective query processor tying everything together (Figure 4);
* the :class:`SubjectiveDatabase` container that holds entities, reviews,
  extractions, marker summaries, and the supporting indexes;
* the columnar summary store and vectorized scoring kernels that score a
  predicate against all entities of an attribute in a handful of NumPy
  calls (the cold-path execution layer under the serving caches).
"""

from repro.core.domain import LinguisticDomain
from repro.core.columnar import (
    AttributeColumns,
    ColumnarSummaryStore,
    summary_feature_matrix,
)
from repro.core.markers import Marker, MarkerSummary, SummaryKind
from repro.core.attributes import (
    ObjectiveAttribute,
    SubjectiveAttribute,
    SubjectiveSchema,
)
from repro.core.fuzzy import FuzzyLogic, ProductLogic, ZadehLogic, hard_threshold_filter
from repro.core.membership import (
    HeuristicMembership,
    LearnedMembership,
    MembershipFunction,
    RawExtractionMembership,
    summary_feature_vector,
)
from repro.core.interpreter import (
    AttributeMarker,
    Interpretation,
    InterpretationMethod,
    SubjectiveQueryInterpreter,
)
from repro.core.database import EntityRecord, ExtractionRecord, ReviewRecord, SubjectiveDatabase
from repro.core.processor import QueryResult, RankedEntity, SubjectiveQueryProcessor

__all__ = [
    "AttributeColumns",
    "ColumnarSummaryStore",
    "summary_feature_matrix",
    "LinguisticDomain",
    "Marker",
    "MarkerSummary",
    "SummaryKind",
    "ObjectiveAttribute",
    "SubjectiveAttribute",
    "SubjectiveSchema",
    "FuzzyLogic",
    "ZadehLogic",
    "ProductLogic",
    "hard_threshold_filter",
    "MembershipFunction",
    "HeuristicMembership",
    "LearnedMembership",
    "RawExtractionMembership",
    "summary_feature_vector",
    "AttributeMarker",
    "Interpretation",
    "InterpretationMethod",
    "SubjectiveQueryInterpreter",
    "SubjectiveDatabase",
    "EntityRecord",
    "ReviewRecord",
    "ExtractionRecord",
    "QueryResult",
    "RankedEntity",
    "SubjectiveQueryProcessor",
]
