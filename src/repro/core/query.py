"""Programmatic construction of subjective-SQL queries.

The experiments generate thousands of queries; composing SQL strings by
hand is error-prone (quoting, operator precedence), so the builder exposes a
small fluent API that renders to the dialect of
:mod:`repro.engine.sqlparser`:

    >>> sql = (SubjectiveQueryBuilder("Entities")
    ...        .where_compare("price_pn", "<", 150)
    ...        .where_equals("city", "london")
    ...        .where_subjective("has really clean rooms")
    ...        .limit(10)
    ...        .to_sql())
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _quote_literal(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if value is None:
        return "null"
    escaped = str(value).replace("'", "\\'")
    return f"'{escaped}'"


def _quote_predicate(text: str) -> str:
    escaped = text.replace('"', '\\"')
    return f'"{escaped}"'


@dataclass
class SubjectiveQueryBuilder:
    """Fluent builder for single-table subjective SELECT queries."""

    table: str
    alias: str | None = None
    _conditions: list[str] = field(default_factory=list)
    _order_by: str | None = field(default=None)
    _limit: int | None = field(default=None)

    def where_compare(self, column: str, operator: str, value: object) -> "SubjectiveQueryBuilder":
        """Add an objective comparison condition."""
        if operator not in ("=", "!=", "<", "<=", ">", ">="):
            raise ValueError(f"unsupported operator: {operator!r}")
        self._conditions.append(f"{column} {operator} {_quote_literal(value)}")
        return self

    def where_equals(self, column: str, value: object) -> "SubjectiveQueryBuilder":
        """Shorthand for an equality condition."""
        return self.where_compare(column, "=", value)

    def where_in(self, column: str, values: list) -> "SubjectiveQueryBuilder":
        """Add an IN condition."""
        if not values:
            raise ValueError("IN list must not be empty")
        rendered = ", ".join(_quote_literal(value) for value in values)
        self._conditions.append(f"{column} in ({rendered})")
        return self

    def where_between(self, column: str, low: object, high: object) -> "SubjectiveQueryBuilder":
        """Add a BETWEEN condition."""
        self._conditions.append(
            f"{column} between {_quote_literal(low)} and {_quote_literal(high)}"
        )
        return self

    def where_subjective(self, predicate: str) -> "SubjectiveQueryBuilder":
        """Add a natural-language subjective predicate."""
        if not predicate.strip():
            raise ValueError("subjective predicate must not be empty")
        self._conditions.append(_quote_predicate(predicate))
        return self

    def order_by(self, column: str, descending: bool = False) -> "SubjectiveQueryBuilder":
        """Order results by an objective column."""
        self._order_by = f"{column} {'desc' if descending else 'asc'}"
        return self

    def limit(self, n: int) -> "SubjectiveQueryBuilder":
        """Limit the number of returned entities."""
        if n <= 0:
            raise ValueError("limit must be positive")
        self._limit = n
        return self

    def to_sql(self) -> str:
        """Render the query as a subjective-SQL string."""
        table = f"{self.table} {self.alias}" if self.alias else self.table
        parts = [f"select * from {table}"]
        if self._conditions:
            parts.append("where " + " and ".join(self._conditions))
        if self._order_by:
            parts.append(f"order by {self._order_by}")
        if self._limit is not None:
            parts.append(f"limit {self._limit}")
        return " ".join(parts)
