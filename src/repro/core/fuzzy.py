"""Fuzzy-logic combination of degrees of truth (Section 3.1).

OpineDB replaces boolean connectives by fuzzy operators over degrees of
truth in [0, 1].  Two t-norm variants from the paper are provided:

* :class:`ZadehLogic` — the classic min/max/complement variant;
* :class:`ProductLogic` — the multiplication variant OpineDB uses:
  ``x ⊗ y = x·y``, ``¬x = 1 − x``, and by De Morgan
  ``x ⊕ y = 1 − (1 − x)(1 − y)``.

``hard_threshold_filter`` implements the alternative the paper argues
against (Appendix A): translating subjective conditions into crisp
per-condition thresholds.  It is used by the Figure-7 experiment and the
fuzzy-variant ablation bench.
"""

from __future__ import annotations

from typing import Sequence


def _validate(degree: float) -> float:
    if not 0.0 <= degree <= 1.0 + 1e-9:
        raise ValueError(f"degree of truth out of range: {degree}")
    return min(1.0, max(0.0, degree))


class FuzzyLogic:
    """Interface of a fuzzy-logic variant (a t-norm with its dual t-conorm)."""

    name = "abstract"

    def conjunction(self, degrees: Sequence[float]) -> float:
        """Fuzzy AND (⊗) of one or more degrees of truth."""
        raise NotImplementedError

    def disjunction(self, degrees: Sequence[float]) -> float:
        """Fuzzy OR (⊕) of one or more degrees of truth."""
        raise NotImplementedError

    def negation(self, degree: float) -> float:
        """Fuzzy NOT of a degree of truth."""
        return 1.0 - _validate(degree)


class ZadehLogic(FuzzyLogic):
    """The classic min/max fuzzy logic (Zadeh, Fagin 1996)."""

    name = "zadeh"

    def conjunction(self, degrees: Sequence[float]) -> float:
        if not degrees:
            return 1.0
        return min(_validate(degree) for degree in degrees)

    def disjunction(self, degrees: Sequence[float]) -> float:
        if not degrees:
            return 0.0
        return max(_validate(degree) for degree in degrees)


class ProductLogic(FuzzyLogic):
    """The multiplication variant used by OpineDB (Klement et al.)."""

    name = "product"

    def conjunction(self, degrees: Sequence[float]) -> float:
        result = 1.0
        for degree in degrees:
            result *= _validate(degree)
        return result

    def disjunction(self, degrees: Sequence[float]) -> float:
        result = 1.0
        for degree in degrees:
            result *= 1.0 - _validate(degree)
        return 1.0 - result


def hard_threshold_filter(
    degrees: Sequence[float], thresholds: Sequence[float]
) -> bool:
    """Crisp alternative to fuzzy conjunction: every degree must clear its threshold.

    This is the "hard constraint" semantics of Appendix A
    (``(A1 ≐ p1) > 0.2 AND (A2 ≐ p2) > 0.3``): an entity is accepted only
    when each condition's degree of truth strictly exceeds the corresponding
    threshold.
    """
    if len(degrees) != len(thresholds):
        raise ValueError("degrees and thresholds must align")
    return all(
        _validate(degree) > threshold
        for degree, threshold in zip(degrees, thresholds)
    )
