"""Fuzzy-logic combination of degrees of truth (Section 3.1).

OpineDB replaces boolean connectives by fuzzy operators over degrees of
truth in [0, 1].  Two t-norm variants from the paper are provided:

* :class:`ZadehLogic` — the classic min/max/complement variant;
* :class:`ProductLogic` — the multiplication variant OpineDB uses:
  ``x ⊗ y = x·y``, ``¬x = 1 − x``, and by De Morgan
  ``x ⊕ y = 1 − (1 − x)(1 − y)``.

``hard_threshold_filter`` implements the alternative the paper argues
against (Appendix A): translating subjective conditions into crisp
per-condition thresholds.  It is used by the Figure-7 experiment and the
fuzzy-variant ablation bench.

Each variant also provides *array* forms of its connectives
(:meth:`FuzzyLogic.conjunction_arrays` and friends) that combine degree
*vectors* — one degree per candidate entity — elementwise.  They fold over
the operands in the same left-to-right order as the scalar forms, with the
same validation semantics, so every element of the result is bit-identical
to the scalar connective applied to that element's degrees.  The sharded
serving engine uses them to score a whole candidate slice per WHERE-tree
node instead of re-walking the tree once per row.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _validate(degree: float) -> float:
    if not 0.0 <= degree <= 1.0 + 1e-9:
        raise ValueError(f"degree of truth out of range: {degree}")
    return min(1.0, max(0.0, degree))


def _validate_array(degrees: np.ndarray) -> np.ndarray:
    """Elementwise mirror of :func:`_validate` (NaN fails the range check too)."""
    if not np.all((degrees >= 0.0) & (degrees <= 1.0 + 1e-9)):
        bad = degrees[~((degrees >= 0.0) & (degrees <= 1.0 + 1e-9))]
        raise ValueError(f"degree of truth out of range: {bad[0]}")
    return np.clip(degrees, 0.0, 1.0)


class FuzzyLogic:
    """Interface of a fuzzy-logic variant (a t-norm with its dual t-conorm)."""

    name = "abstract"

    def conjunction(self, degrees: Sequence[float]) -> float:
        """Fuzzy AND (⊗) of one or more degrees of truth."""
        raise NotImplementedError

    def disjunction(self, degrees: Sequence[float]) -> float:
        """Fuzzy OR (⊕) of one or more degrees of truth."""
        raise NotImplementedError

    def negation(self, degree: float) -> float:
        """Fuzzy NOT of a degree of truth."""
        return 1.0 - _validate(degree)

    # Array forms: elementwise connectives over degree vectors.  Subclasses
    # implementing them must fold operands left to right with the scalar
    # arithmetic, so result[i] is bit-identical to the scalar connective of
    # the i-th degrees.  Variants without array forms keep the default
    # ``None`` capability and are scored row by row.
    supports_arrays = False

    # Interval-safe variants opt in here.  ``True`` asserts two properties
    # the bound-based top-k planner relies on: every connective is monotone
    # nondecreasing in each operand (so folding the lo and hi ends of
    # per-predicate intervals separately brackets the exact score), and the
    # conjunction is a true t-norm — never above any single operand — so a
    # top-k threshold on the query score transfers to every AND-path
    # predicate.  Both built-in variants (min/max and product) satisfy both;
    # custom logics keep ``False`` and are never pruned.
    supports_bounds = False

    def conjunction_arrays(self, degree_arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Elementwise fuzzy AND of one or more aligned degree vectors."""
        raise NotImplementedError

    def disjunction_arrays(self, degree_arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Elementwise fuzzy OR of one or more aligned degree vectors."""
        raise NotImplementedError

    def negation_array(self, degrees: np.ndarray) -> np.ndarray:
        """Elementwise fuzzy NOT of a degree vector."""
        return 1.0 - _validate_array(degrees)


class ZadehLogic(FuzzyLogic):
    """The classic min/max fuzzy logic (Zadeh, Fagin 1996)."""

    name = "zadeh"
    supports_arrays = True
    supports_bounds = True

    def conjunction(self, degrees: Sequence[float]) -> float:
        if not degrees:
            return 1.0
        return min(_validate(degree) for degree in degrees)

    def disjunction(self, degrees: Sequence[float]) -> float:
        if not degrees:
            return 0.0
        return max(_validate(degree) for degree in degrees)

    def conjunction_arrays(self, degree_arrays: Sequence[np.ndarray]) -> np.ndarray:
        if not degree_arrays:
            raise ValueError("conjunction_arrays needs at least one operand")
        result = _validate_array(degree_arrays[0])
        for degrees in degree_arrays[1:]:
            result = np.minimum(result, _validate_array(degrees))
        return result

    def disjunction_arrays(self, degree_arrays: Sequence[np.ndarray]) -> np.ndarray:
        if not degree_arrays:
            raise ValueError("disjunction_arrays needs at least one operand")
        result = _validate_array(degree_arrays[0])
        for degrees in degree_arrays[1:]:
            result = np.maximum(result, _validate_array(degrees))
        return result


class ProductLogic(FuzzyLogic):
    """The multiplication variant used by OpineDB (Klement et al.)."""

    name = "product"
    supports_arrays = True
    supports_bounds = True

    def conjunction(self, degrees: Sequence[float]) -> float:
        result = 1.0
        for degree in degrees:
            result *= _validate(degree)
        return result

    def disjunction(self, degrees: Sequence[float]) -> float:
        result = 1.0
        for degree in degrees:
            result *= 1.0 - _validate(degree)
        return 1.0 - result

    def conjunction_arrays(self, degree_arrays: Sequence[np.ndarray]) -> np.ndarray:
        # ``1.0 * x == x`` bit-for-bit on [0, 1], so folding from the first
        # validated operand equals the scalar fold that starts at 1.0.
        if not degree_arrays:
            raise ValueError("conjunction_arrays needs at least one operand")
        result = _validate_array(degree_arrays[0])
        for degrees in degree_arrays[1:]:
            result = result * _validate_array(degrees)
        return result

    def disjunction_arrays(self, degree_arrays: Sequence[np.ndarray]) -> np.ndarray:
        if not degree_arrays:
            raise ValueError("disjunction_arrays needs at least one operand")
        result = 1.0 - _validate_array(degree_arrays[0])
        for degrees in degree_arrays[1:]:
            result = result * (1.0 - _validate_array(degrees))
        return 1.0 - result


def hard_threshold_filter(
    degrees: Sequence[float], thresholds: Sequence[float]
) -> bool:
    """Crisp alternative to fuzzy conjunction: every degree must clear its threshold.

    This is the "hard constraint" semantics of Appendix A
    (``(A1 ≐ p1) > 0.2 AND (A2 ≐ p2) > 0.3``): an entity is accepted only
    when each condition's degree of truth strictly exceeds the corresponding
    threshold.
    """
    if len(degrees) != len(thresholds):
        raise ValueError("degrees and thresholds must align")
    return all(
        _validate(degree) > threshold
        for degree, threshold in zip(degrees, thresholds)
    )
