"""Markers and marker summaries (Section 2).

A *marker* is a designated phrase of a linguistic domain that represents an
important distinction of the application ("very_clean", "luxurious").  A
*marker summary* is the aggregate view OpineDB maintains per entity and
subjective attribute: a histogram of how many extracted phrases mapped to
each marker, together with auxiliary statistics used by the membership
functions — the average sentiment of the phrases mapped to each marker and
the centroid of their phrase-embedding vectors.

Marker summaries come in two kinds (``SummaryKind``):

* ``LINEAR`` — the markers form a linear scale (``very_clean`` > ``average``
  > ``dirty`` > ``very_dirty``); a phrase may contribute fractionally to
  adjacent markers.
* ``CATEGORICAL`` — the markers are unordered categories (bathroom ``old`` /
  ``modern`` / ``luxurious``); a phrase may contribute a full count to
  several markers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SchemaError


class SummaryKind(enum.Enum):
    """Whether a marker summary's markers form a linear scale or categories."""

    LINEAR = "linear"
    CATEGORICAL = "categorical"


@dataclass
class SummaryArrays:
    """Contiguous array view of one marker summary, in marker order.

    Built once per summary state and cached; membership functions read these
    arrays instead of performing per-marker dict lookups, which is what makes
    batch scoring over many entities a sequence of array passes.  ``total``
    and the derived ``fractions``/``average_sentiments`` reproduce the exact
    arithmetic of the scalar :class:`MarkerSummary` accessors so degrees are
    bit-identical whichever path computes them.
    """

    counts: np.ndarray
    sentiment_sums: np.ndarray
    total: float
    fractions: np.ndarray
    average_sentiments: np.ndarray
    vector_sums: list[np.ndarray | None]


@dataclass(frozen=True)
class Marker:
    """One marker of a subjective attribute.

    Attributes
    ----------
    name:
        The marker phrase (e.g. ``"very clean"``); also used as the field
        name of the marker-summary record type.
    position:
        Index of the marker within its summary type.  For linear summaries
        the position encodes the scale order (0 = most positive by
        convention of the discovery step); for categorical summaries it is
        just an identifier.
    sentiment:
        Average sentiment of the linguistic variations the marker represents,
        recorded at marker-discovery time.  Used as a feature by membership
        functions and by the heuristic membership fallback.
    """

    name: str
    position: int
    sentiment: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.name


class MarkerSummary:
    """Aggregate of extracted phrases onto the markers of one attribute.

    The summary records, per marker: the (possibly fractional) phrase count,
    the running mean sentiment, and the running mean phrase-embedding vector.
    These are exactly the precomputed features Section 3.3 lists as inputs to
    the membership functions, and they can be maintained incrementally as new
    reviews arrive (Section 4.2.2).
    """

    def __init__(
        self,
        attribute: str,
        markers: Iterable[Marker],
        kind: SummaryKind = SummaryKind.LINEAR,
        embedding_dimension: int | None = None,
    ) -> None:
        self.attribute = attribute
        self.markers = list(markers)
        if not self.markers:
            raise SchemaError(f"marker summary for {attribute!r} needs markers")
        names = [marker.name for marker in self.markers]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate marker names in {attribute!r}: {names}")
        self.kind = kind
        self._by_name = {marker.name: marker for marker in self.markers}
        self._counts = {marker.name: 0.0 for marker in self.markers}
        self._sentiment_sums = {marker.name: 0.0 for marker in self.markers}
        self._dimension = embedding_dimension
        self._vector_sums = {
            marker.name: (np.zeros(embedding_dimension) if embedding_dimension else None)
            for marker in self.markers
        }
        self.num_phrases = 0.0
        self.num_reviews = 0
        self.num_unmatched = 0.0
        self._arrays: SummaryArrays | None = None

    # ------------------------------------------------------------ structure
    @property
    def marker_names(self) -> list[str]:
        return [marker.name for marker in self.markers]

    def marker(self, name: str) -> Marker:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"attribute {self.attribute!r} has no marker {name!r}"
            ) from None

    def has_marker(self, name: str) -> bool:
        return name in self._by_name

    # ----------------------------------------------------------- aggregation
    def add_phrase(
        self,
        contributions: Mapping[str, float] | str,
        sentiment: float = 0.0,
        vector: np.ndarray | None = None,
    ) -> None:
        """Aggregate one extracted phrase into the summary.

        ``contributions`` is either a single marker name (full count of 1) or
        a mapping marker -> weight.  For linear summaries the weights of one
        phrase should sum to 1 (fractional contribution to adjacent markers);
        for categorical summaries each weight is typically a full count.
        """
        if isinstance(contributions, str):
            contributions = {contributions: 1.0}
        for name, weight in contributions.items():
            if name not in self._by_name:
                raise SchemaError(
                    f"attribute {self.attribute!r} has no marker {name!r}"
                )
            if weight < 0:
                raise ValueError("marker contributions must be non-negative")
            self._counts[name] += weight
            self._sentiment_sums[name] += sentiment * weight
            if vector is not None and self._dimension:
                self._vector_sums[name] = self._vector_sums[name] + vector * weight
        self.num_phrases += sum(contributions.values())
        self._arrays = None

    def add_unmatched(self, count: float = 1.0) -> None:
        """Record phrases of the attribute that matched no marker."""
        self.num_unmatched += count

    def merge(self, other: "MarkerSummary") -> None:
        """Fold another summary over the same markers into this one (in place)."""
        if other.marker_names != self.marker_names:
            raise SchemaError("cannot merge summaries with different markers")
        for name in self._counts:
            self._counts[name] += other._counts[name]
            self._sentiment_sums[name] += other._sentiment_sums[name]
            if self._dimension and other._vector_sums[name] is not None:
                self._vector_sums[name] = self._vector_sums[name] + other._vector_sums[name]
        self.num_phrases += other.num_phrases
        self.num_reviews += other.num_reviews
        self.num_unmatched += other.num_unmatched
        self._arrays = None

    # ------------------------------------------------------------- queries
    def count(self, marker_name: str) -> float:
        """Phrase count aggregated on ``marker_name``."""
        if marker_name not in self._counts:
            raise SchemaError(
                f"attribute {self.attribute!r} has no marker {marker_name!r}"
            )
        return self._counts[marker_name]

    def counts(self) -> dict[str, float]:
        """The histogram as a marker -> count mapping (copy)."""
        return dict(self._counts)

    def total(self) -> float:
        """Total phrase mass aggregated across all markers."""
        return sum(self._counts.values())

    def fraction(self, marker_name: str) -> float:
        """Share of the total phrase mass on ``marker_name`` (0 if empty)."""
        total = self.total()
        if total == 0.0:
            return 0.0
        return self.count(marker_name) / total

    def fractions(self) -> dict[str, float]:
        """All marker fractions."""
        return {name: self.fraction(name) for name in self._counts}

    def average_sentiment(self, marker_name: str) -> float:
        """Mean sentiment of the phrases aggregated on ``marker_name``."""
        count = self.count(marker_name)
        if count == 0.0:
            return 0.0
        return self._sentiment_sums[marker_name] / count

    def overall_sentiment(self) -> float:
        """Phrase-mass-weighted mean sentiment across all markers."""
        total = self.total()
        if total == 0.0:
            return 0.0
        return sum(self._sentiment_sums.values()) / total

    def centroid(self, marker_name: str) -> np.ndarray | None:
        """Mean phrase-embedding vector of the phrases on ``marker_name``."""
        if not self._dimension:
            return None
        count = self.count(marker_name)
        if count == 0.0:
            return np.zeros(self._dimension)
        return self._vector_sums[marker_name] / count

    def arrays(self) -> SummaryArrays:
        """Cached array view of the summary (see :class:`SummaryArrays`).

        ``total`` is accumulated with the same sequential left-to-right sum
        as :meth:`total`, and the derived arrays use the same per-element
        guards as the scalar accessors, so values are bit-identical.
        """
        if self._arrays is None:
            names = self.marker_names
            counts = np.array([self._counts[name] for name in names], dtype=np.float64)
            sentiment_sums = np.array(
                [self._sentiment_sums[name] for name in names], dtype=np.float64
            )
            total = sum(self._counts.values())
            if total == 0.0:
                fractions = np.zeros(len(names))
            else:
                fractions = counts / total
            average_sentiments = np.array(
                [
                    (self._sentiment_sums[name] / self._counts[name])
                    if self._counts[name] != 0.0
                    else 0.0
                    for name in names
                ],
                dtype=np.float64,
            )
            self._arrays = SummaryArrays(
                counts=counts,
                sentiment_sums=sentiment_sums,
                total=total,
                fractions=fractions,
                average_sentiments=average_sentiments,
                vector_sums=[self._vector_sums[name] for name in names],
            )
        return self._arrays

    def vector_matrix(self, dimension: int) -> np.ndarray:
        """(M, D) matrix of the per-marker embedding-vector sums.

        Markers without a vector sum (no embedding dimension, or one that
        does not match ``dimension``) contribute zero rows — the same "zero
        vector means no centroid" convention the membership similarity code
        uses.  The columnar store stacks these matrices into its E×M×D
        centroid tensor.
        """
        matrix = np.zeros((len(self.markers), dimension))
        for index, vector_sum in enumerate(self.arrays().vector_sums):
            if vector_sum is not None and vector_sum.shape == (dimension,):
                matrix[index] = vector_sum
        return matrix

    def dominant_marker(self) -> Marker:
        """The marker holding the largest share of the phrase mass."""
        name = max(self._counts, key=lambda key: (self._counts[key], key))
        return self._by_name[name]

    def to_record(self) -> dict[str, float]:
        """Record-type view (marker name -> count), as in the paper's examples."""
        return self.counts()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{name}: {count:.1f}" for name, count in self._counts.items())
        return f"MarkerSummary({self.attribute}: [{inner}])"
