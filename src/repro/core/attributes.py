"""Subjective schemas: objective attributes + subjective attributes (Section 2).

A subjective database schema has three parts: (1) the user-visible main
schema — one entity relation with objective attributes, plus one relation
per subjective attribute holding the marker summaries; (2) the raw review
data; and (3) the extraction relation.  This module models part (1); the
:class:`repro.core.database.SubjectiveDatabase` materialises all three parts
on top of the relational engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.domain import LinguisticDomain
from repro.core.markers import Marker, MarkerSummary, SummaryKind
from repro.engine.types import ColumnType
from repro.errors import SchemaError


@dataclass(frozen=True)
class ObjectiveAttribute:
    """An ordinary typed attribute (price, address, cuisine, ...)."""

    name: str
    type: ColumnType
    description: str = ""


@dataclass
class SubjectiveAttribute:
    """A subjective attribute: a marker-summary type over a linguistic domain.

    Attributes
    ----------
    name:
        Attribute name, e.g. ``"room_cleanliness"``.
    markers:
        The markers of the summary type, in scale order for linear domains.
    kind:
        Whether the markers form a linear scale or unordered categories.
    domain:
        The linguistic domain (set of observed variations) of the attribute.
    aspect_seeds / opinion_seeds:
        The designer-provided seed terms used to train the attribute
        classifier (Section 4.2); kept for provenance and re-training.
    """

    name: str
    markers: list[Marker]
    kind: SummaryKind = SummaryKind.LINEAR
    domain: LinguisticDomain | None = None
    aspect_seeds: list[str] = field(default_factory=list)
    opinion_seeds: list[str] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("subjective attribute name must not be empty")
        if not self.markers:
            raise SchemaError(f"subjective attribute {self.name!r} needs markers")
        names = [marker.name for marker in self.markers]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate markers in attribute {self.name!r}")
        if self.domain is None:
            self.domain = LinguisticDomain(self.name)

    @property
    def marker_names(self) -> list[str]:
        return [marker.name for marker in self.markers]

    @property
    def relation_name(self) -> str:
        """Name of the per-attribute relation holding the marker summaries."""
        return f"summary_{self.name}"

    def marker(self, name: str) -> Marker:
        for marker in self.markers:
            if marker.name == name:
                return marker
        raise SchemaError(f"attribute {self.name!r} has no marker {name!r}")

    def has_marker(self, name: str) -> bool:
        return any(marker.name == name for marker in self.markers)

    def new_summary(self, embedding_dimension: int | None = None) -> MarkerSummary:
        """Create an empty marker summary of this attribute's type."""
        return MarkerSummary(
            attribute=self.name,
            markers=self.markers,
            kind=self.kind,
            embedding_dimension=embedding_dimension,
        )


@dataclass
class SubjectiveSchema:
    """The user-visible schema of one subjective database.

    Attributes
    ----------
    name:
        Schema (application) name, e.g. ``"hotels"``.
    entity_key:
        Name of the key attribute shared by all relations (``hotelname``).
    objective_attributes:
        Objective columns of the entity relation.
    subjective_attributes:
        The subjective attributes, each of which induces its own relation
        keyed by ``entity_key`` and holding marker summaries.
    """

    name: str
    entity_key: str
    objective_attributes: list[ObjectiveAttribute] = field(default_factory=list)
    subjective_attributes: list[SubjectiveAttribute] = field(default_factory=list)

    def __post_init__(self) -> None:
        objective_names = [attribute.name for attribute in self.objective_attributes]
        subjective_names = [attribute.name for attribute in self.subjective_attributes]
        all_names = [self.entity_key, *objective_names, *subjective_names]
        if len(set(all_names)) != len(all_names):
            raise SchemaError(f"duplicate attribute names in schema {self.name!r}")

    @property
    def objective_names(self) -> list[str]:
        return [attribute.name for attribute in self.objective_attributes]

    @property
    def subjective_names(self) -> list[str]:
        return [attribute.name for attribute in self.subjective_attributes]

    def subjective(self, name: str) -> SubjectiveAttribute:
        for attribute in self.subjective_attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"schema {self.name!r} has no subjective attribute {name!r}")

    def objective(self, name: str) -> ObjectiveAttribute:
        for attribute in self.objective_attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"schema {self.name!r} has no objective attribute {name!r}")

    def has_subjective(self, name: str) -> bool:
        return any(attribute.name == name for attribute in self.subjective_attributes)

    def add_subjective(self, attribute: SubjectiveAttribute) -> None:
        """Add a subjective attribute, keeping names unique."""
        if attribute.name == self.entity_key or attribute.name in self.objective_names \
                or attribute.name in self.subjective_names:
            raise SchemaError(f"attribute name already used: {attribute.name!r}")
        self.subjective_attributes.append(attribute)

    def describe(self) -> str:
        """Human-readable schema listing in the style of the paper's Figure 2."""
        lines = [f"{self.name}({self.entity_key}, "
                 + ", ".join(self.objective_names) + ")"]
        for attribute in self.subjective_attributes:
            lines.append(
                f"  * {attribute.name}: [" + ", ".join(attribute.marker_names) + "]"
                + f"  ({attribute.kind.value})"
            )
        return "\n".join(lines)
