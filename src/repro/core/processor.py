"""The subjective query processor (Figure 4).

Pipeline for one query:

1. parse the subjective SQL (``repro.engine.sqlparser``);
2. evaluate the objective part of the WHERE clause to obtain the candidate
   entities (objective predicates are crisp: 0 or 1);
3. interpret every subjective predicate (``SubjectiveQueryInterpreter``);
4. for each candidate entity, compute the degree of truth of every
   interpreted predicate through the membership function over its marker
   summaries — or through the text-retrieval fallback when the predicate
   could not be interpreted;
5. combine degrees through fuzzy logic following the WHERE expression tree
   (AND → ⊗, OR → ⊕, NOT → 1−x) and rank the entities by the resulting
   score.

The processor can run with either the marker-based membership functions
(the OpineDB default) or the raw-extraction variant (the "no markers"
ablation of Table 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

from repro.core.database import SubjectiveDatabase
from repro.core.fuzzy import FuzzyLogic, ProductLogic
from repro.core.interpreter import (
    Interpretation,
    InterpretationMethod,
    SubjectiveQueryInterpreter,
)
from repro.core.membership import (
    HeuristicMembership,
    MembershipFunction,
    RawExtractionMembership,
)
from repro.engine.executor import QueryExecutor, SelectStatement
from repro.engine.sqlparser import parse_query
from repro.errors import ExecutionError


@dataclass(frozen=True)
class RankedEntity:
    """One entity of a query result with its overall degree of truth."""

    entity_id: Hashable
    score: float
    row: dict
    predicate_degrees: dict[str, float]


@dataclass
class QueryResult:
    """Ranked entities plus the interpretations used to produce them."""

    sql: str
    entities: list[RankedEntity]
    interpretations: dict[str, Interpretation]

    @property
    def entity_ids(self) -> list[Hashable]:
        return [entity.entity_id for entity in self.entities]

    def top(self, k: int) -> list[RankedEntity]:
        return self.entities[:k]

    def __len__(self) -> int:
        return len(self.entities)

    def __iter__(self):
        return iter(self.entities)


@dataclass
class SubjectiveQueryProcessor:
    """Executes subjective SQL against a :class:`SubjectiveDatabase`.

    Parameters
    ----------
    database:
        The subjective database to query.
    interpreter:
        Predicate interpreter; a default one is constructed lazily.
    membership:
        Membership function mapping (marker summary, phrase) to a degree of
        truth; defaults to the training-free heuristic.
    logic:
        Fuzzy-logic variant for combining degrees (product variant by
        default, as in the paper).
    top_k:
        Default number of entities returned when the query has no LIMIT.
    retrieval_pivot:
        The constant ``c`` of the text-retrieval fallback
        ``sigmoid(BM25(D, q) − c)``.
    use_markers:
        When ``False`` the processor bypasses marker summaries and uses
        ``raw_membership`` (must then be provided) — the Table 7 ablation.
    """

    database: SubjectiveDatabase
    interpreter: SubjectiveQueryInterpreter | None = None
    membership: MembershipFunction | None = None
    logic: FuzzyLogic = field(default_factory=ProductLogic)
    top_k: int = 10
    retrieval_pivot: float = 3.0
    use_markers: bool = True
    raw_membership: RawExtractionMembership | None = None

    def __post_init__(self) -> None:
        if self.interpreter is None:
            self.interpreter = SubjectiveQueryInterpreter(self.database)
        if self.membership is None:
            self.membership = HeuristicMembership(
                embedder=self.database.phrase_embedder
            )
        if not self.use_markers and self.raw_membership is None:
            raise ExecutionError(
                "use_markers=False requires a fitted RawExtractionMembership"
            )

    # ----------------------------------------------------------------- query
    def execute(self, sql: str, top_k: int | None = None) -> QueryResult:
        """Parse and execute a subjective-SQL string."""
        statement = parse_query(sql)
        return self.execute_statement(statement, top_k=top_k, sql=sql)

    def execute_statement(
        self,
        statement: SelectStatement,
        top_k: int | None = None,
        sql: str = "",
    ) -> QueryResult:
        """Execute an already-parsed statement."""
        executor = QueryExecutor(self.database.engine)
        target_table = statement.table.lower()
        if target_table not in ("entities",):
            # Queries may also target the entity table by its schema name.
            statement = SelectStatement(
                table="entities",
                alias=statement.alias,
                columns=statement.columns,
                join=statement.join,
                where=statement.where,
                order_by=statement.order_by,
                limit=statement.limit,
            )
        candidates = executor.candidate_rows(statement)
        predicates = statement.subjective_predicates()
        interpretations = {
            predicate: self.interpreter.interpret(predicate) for predicate in predicates
        }

        key_column = self.database.schema.entity_key
        ranked: list[RankedEntity] = []
        for row in candidates:
            entity_id = self._entity_id_of(row, key_column, statement.alias)
            degrees: dict[str, float] = {}

            def scorer(predicate_text: str, _row: dict, _entity=entity_id, _degrees=degrees) -> float:
                degree = self._predicate_degree(_entity, interpretations[predicate_text])
                _degrees[predicate_text] = degree
                return degree

            if statement.where is None:
                score = 1.0
            else:
                score = statement.where.fuzzy(row, scorer, self.logic)
            ranked.append(
                RankedEntity(
                    entity_id=entity_id,
                    score=score,
                    row=row,
                    predicate_degrees=degrees,
                )
            )
        ranked.sort(key=lambda entity: (-entity.score, str(entity.entity_id)))
        limit = statement.limit or top_k or self.top_k
        return QueryResult(
            sql=sql,
            entities=ranked[:limit],
            interpretations=interpretations,
        )

    # -------------------------------------------------------------- scoring
    def _entity_id_of(self, row: dict, key_column: str, alias: str | None) -> Hashable:
        if key_column in row:
            return row[key_column]
        if alias and f"{alias}.{key_column}" in row:
            return row[f"{alias}.{key_column}"]
        raise ExecutionError(f"result row has no entity key column {key_column!r}")

    def _predicate_degree(self, entity_id: Hashable, interpretation: Interpretation) -> float:
        """Degree of truth of one interpreted predicate for one entity."""
        if interpretation.method is InterpretationMethod.TEXT_RETRIEVAL:
            return self._retrieval_degree(entity_id, interpretation.predicate)
        degrees = []
        for pair in interpretation.pairs:
            degrees.append(
                self._pair_degree(entity_id, pair.attribute, pair.marker, interpretation)
            )
        if not degrees:
            return self._retrieval_degree(entity_id, interpretation.predicate)
        if interpretation.combinator == "and":
            return self.logic.conjunction(degrees)
        return self.logic.disjunction(degrees)

    def _pair_degree(
        self,
        entity_id: Hashable,
        attribute: str,
        marker: str,
        interpretation: Interpretation,
    ) -> float:
        """Degree of truth of one ``A ≐ m`` condition for one entity.

        For word2vec interpretations the original predicate text carries the
        user's wording ("really clean") and is the phrase handed to the
        membership function; for co-occurrence interpretations the predicate
        text is only a weak proxy of the attribute, so the marker itself is
        used as the phrase.
        """
        if interpretation.method is InterpretationMethod.WORD2VEC:
            phrase = interpretation.predicate
        else:
            phrase = marker
        if not self.use_markers:
            return self.raw_membership.degree_for_attribute(entity_id, attribute, phrase)
        summary = self.database.marker_summary(entity_id, attribute)
        return self.membership.degree(summary, phrase)

    def _retrieval_degree(self, entity_id: Hashable, predicate: str) -> float:
        """Text-retrieval fallback: sigmoid(BM25(entity document, q) − c)."""
        index = self.database.entity_index
        if index is None:
            return 0.0
        score = index.score(entity_id, predicate)
        return 1.0 / (1.0 + math.exp(-(score - self.retrieval_pivot)))

    # ------------------------------------------------------------- explain
    def explain(self, result: QueryResult, entity_id: Hashable, limit: int = 3) -> list[str]:
        """Human-readable evidence for why ``entity_id`` matched the query.

        Returns review-sentence snippets (provenance) for each interpreted
        predicate, via the marker summaries' provenance records.
        """
        lines: list[str] = []
        for predicate, interpretation in result.interpretations.items():
            if not interpretation.is_schema_interpretation:
                lines.append(f"{predicate!r}: matched by text retrieval over raw reviews")
                continue
            for pair in interpretation.pairs:
                evidence = self.database.explain(
                    entity_id, pair.attribute, pair.marker, limit=limit
                )
                for record in evidence:
                    lines.append(
                        f"{predicate!r} -> {pair.attribute}.{pair.marker!r}: "
                        f"\"{record.sentence}\""
                    )
        return lines
