"""The subjective query processor (Figure 4).

Pipeline for one query:

1. parse the subjective SQL (``repro.engine.sqlparser``);
2. evaluate the objective part of the WHERE clause to obtain the candidate
   entities (objective predicates are crisp: 0 or 1);
3. interpret every subjective predicate (``SubjectiveQueryInterpreter``);
4. for each candidate entity, compute the degree of truth of every
   interpreted predicate through the membership function over its marker
   summaries — or through the text-retrieval fallback when the predicate
   could not be interpreted;
5. combine degrees through fuzzy logic following the WHERE expression tree
   (AND → ⊗, OR → ⊕, NOT → 1−x) and rank the entities by the resulting
   score.

The processor can run with either the marker-based membership functions
(the OpineDB default) or the raw-extraction variant (the "no markers"
ablation of Table 7).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.core.columnar import ColumnarSummaryStore
from repro.core.database import SubjectiveDatabase
from repro.core.fuzzy import FuzzyLogic, ProductLogic
from repro.core.interpreter import (
    Interpretation,
    InterpretationMethod,
    SubjectiveQueryInterpreter,
)
from repro.core.membership import (
    HeuristicMembership,
    MembershipFunction,
    RawExtractionMembership,
)
from repro.engine.executor import QueryExecutor, SelectStatement
from repro.engine.sqlparser import parse_query
from repro.errors import ExecutionError

#: Batch scorer signatures (entity ids, attribute/predicate, phrase) -> degrees.
PairScorer = Callable[[Sequence[Hashable], str, str], list[float]]
RetrievalScorer = Callable[[Sequence[Hashable], str], list[float]]


def rank_key(entity: "RankedEntity") -> tuple[float, str]:
    """Deterministic ranking order: score descending, entity id as tie-break.

    This is *the* ordering of query results; the sharded serving engine's
    per-shard heaps and merge use the same key so merged rankings are
    exactly the global ordering.
    """
    return (-entity.score, str(entity.entity_id))


def _top_ranked(ranked: list["RankedEntity"], limit: int) -> list["RankedEntity"]:
    """The ``limit`` best entities in ranking order.

    ``heapq.nsmallest`` is documented to equal ``sorted(...)[:limit]``, so
    the selection matches the previous full sort + slice exactly (including
    the ``(-score, str(entity_id))`` tie-break) while doing O(n log k) work
    when ``limit`` is far below the candidate count.
    """
    if limit < len(ranked):
        return heapq.nsmallest(limit, ranked, key=rank_key)
    ranked.sort(key=rank_key)
    return ranked[:limit]


@dataclass(frozen=True)
class RankedEntity:
    """One entity of a query result with its overall degree of truth."""

    entity_id: Hashable
    score: float
    row: dict
    predicate_degrees: dict[str, float]


@dataclass
class QueryResult:
    """Ranked entities plus the interpretations used to produce them."""

    sql: str
    entities: list[RankedEntity]
    interpretations: dict[str, Interpretation]

    @property
    def entity_ids(self) -> list[Hashable]:
        return [entity.entity_id for entity in self.entities]

    def top(self, k: int) -> list[RankedEntity]:
        return self.entities[:k]

    def __len__(self) -> int:
        return len(self.entities)

    def __iter__(self):
        return iter(self.entities)


@dataclass
class SubjectiveQueryProcessor:
    """Executes subjective SQL against a :class:`SubjectiveDatabase`.

    Parameters
    ----------
    database:
        The subjective database to query.
    interpreter:
        Predicate interpreter; a default one is constructed lazily.
    membership:
        Membership function mapping (marker summary, phrase) to a degree of
        truth; defaults to the training-free heuristic.
    logic:
        Fuzzy-logic variant for combining degrees (product variant by
        default, as in the paper).
    top_k:
        Default number of entities returned when the query has no LIMIT.
    retrieval_pivot:
        The constant ``c`` of the text-retrieval fallback
        ``sigmoid(BM25(D, q) − c)``.
    use_markers:
        When ``False`` the processor bypasses marker summaries and uses
        ``raw_membership`` (must then be provided) — the Table 7 ablation.
    use_columnar:
        When ``True`` (the default) cold-path scoring routes through a
        :class:`ColumnarSummaryStore`: one vectorized kernel pass per
        predicate over dense per-attribute summary arrays, instead of a
        Python loop over entities.  ``False`` forces the scalar per-entity
        batch path (used as the comparison baseline by tests/benchmarks).
    columnar_store:
        The store backing the columnar path; built lazily over ``database``
        when not supplied.  Sharing one store between processors over the
        same database shares the built column arrays.
    """

    database: SubjectiveDatabase
    interpreter: SubjectiveQueryInterpreter | None = None
    membership: MembershipFunction | None = None
    logic: FuzzyLogic = field(default_factory=ProductLogic)
    top_k: int = 10
    retrieval_pivot: float = 3.0
    use_markers: bool = True
    raw_membership: RawExtractionMembership | None = None
    use_columnar: bool = True
    columnar_store: ColumnarSummaryStore | None = None

    def __post_init__(self) -> None:
        if self.interpreter is None:
            self.interpreter = SubjectiveQueryInterpreter(self.database)
        if self.membership is None:
            self.membership = HeuristicMembership(
                embedder=self.database.phrase_embedder
            )
        if self.use_columnar and self.columnar_store is None:
            self.columnar_store = self.database.columnar_store()
        if not self.use_markers and self.raw_membership is None:
            raise ExecutionError(
                "use_markers=False requires a fitted RawExtractionMembership"
            )

    # ----------------------------------------------------------------- query
    def execute(self, sql: str, top_k: int | None = None) -> QueryResult:
        """Parse and execute a subjective-SQL string."""
        statement = self.prepare_statement(sql)
        return self.execute_statement(statement, top_k=top_k, sql=sql)

    def prepare_statement(self, sql: str) -> SelectStatement:
        """Parse a subjective-SQL string into an entity-targeted statement.

        Parsing and retargeting are deterministic per SQL text, so the result
        can be cached and re-executed (the serving layer's plan cache does
        exactly that).
        """
        return self._retarget(parse_query(sql))

    @staticmethod
    def _retarget(statement: SelectStatement) -> SelectStatement:
        """Point the statement at the entity table (queries may use the schema name)."""
        if statement.table.lower() == "entities":
            return statement
        return SelectStatement(
            table="entities",
            alias=statement.alias,
            columns=statement.columns,
            join=statement.join,
            where=statement.where,
            order_by=statement.order_by,
            limit=statement.limit,
        )

    def candidate_rows(self, statement: SelectStatement) -> list[dict]:
        """Rows surviving the objective (crisp) part of the WHERE clause."""
        executor = QueryExecutor(self.database.engine)
        return executor.candidate_rows(statement)

    def interpret_predicates(self, statement: SelectStatement) -> dict[str, Interpretation]:
        """Interpret every subjective predicate of the statement."""
        return {
            predicate: self.interpreter.interpret(predicate)
            for predicate in statement.subjective_predicates()
        }

    def execute_statement(
        self,
        statement: SelectStatement,
        top_k: int | None = None,
        sql: str = "",
    ) -> QueryResult:
        """Execute an already-parsed statement."""
        statement = self._retarget(statement)
        candidates = self.candidate_rows(statement)
        interpretations = self.interpret_predicates(statement)
        return self.rank_candidates(
            statement, candidates, interpretations, sql=sql, top_k=top_k
        )

    def rank_candidates(
        self,
        statement: SelectStatement,
        candidates: list[dict],
        interpretations: dict[str, Interpretation],
        degree_table: dict[str, dict[Hashable, float]] | None = None,
        sql: str = "",
        top_k: int | None = None,
        row_entities: Sequence[Hashable] | None = None,
    ) -> QueryResult:
        """Rank candidate rows by fuzzy degree of truth.

        ``degree_table`` maps predicate text to per-entity degrees; when not
        supplied it is computed here through the batch primitives
        (:meth:`interpretation_degrees`).  The serving engine passes a table
        filled from its membership cache, so cached and freshly computed
        queries flow through the same ranking code.  ``row_entities`` may
        supply the precomputed entity id of each candidate row (the serving
        engine caches them alongside the rows).
        """
        if row_entities is None:
            row_entities = self.entity_ids_of(candidates, statement.alias)
        if degree_table is None:
            unique_ids = list(dict.fromkeys(row_entities))
            degree_table = {
                predicate: dict(
                    zip(unique_ids, self.interpretation_degrees(unique_ids, interpretation))
                )
                for predicate, interpretation in interpretations.items()
            }

        ranked: list[RankedEntity] = []
        for entity_id, row in zip(row_entities, candidates):
            degrees: dict[str, float] = {}

            def scorer(predicate_text: str, _row: dict, _entity=entity_id, _degrees=degrees) -> float:
                degree = degree_table[predicate_text][_entity]
                _degrees[predicate_text] = degree
                return degree

            if statement.where is None:
                score = 1.0
            else:
                score = statement.where.fuzzy(row, scorer, self.logic)
            ranked.append(
                RankedEntity(
                    entity_id=entity_id,
                    score=score,
                    row=row,
                    predicate_degrees=degrees,
                )
            )
        limit = statement.limit or top_k or self.top_k
        return QueryResult(
            sql=sql,
            entities=_top_ranked(ranked, limit),
            interpretations=interpretations,
        )

    # -------------------------------------------------------------- scoring
    def entity_ids_of(self, rows: Sequence[dict], alias: str | None) -> list[Hashable]:
        """Entity id of each candidate row (rows may repeat an entity after joins)."""
        key_column = self.database.schema.entity_key
        return [self._entity_id_of(row, key_column, alias) for row in rows]

    def _entity_id_of(self, row: dict, key_column: str, alias: str | None) -> Hashable:
        if key_column in row:
            return row[key_column]
        if alias and f"{alias}.{key_column}" in row:
            return row[f"{alias}.{key_column}"]
        raise ExecutionError(f"result row has no entity key column {key_column!r}")

    @staticmethod
    def phrase_for_pair(interpretation: Interpretation, marker: str) -> str:
        """The phrase a membership function scores for one ``A ≐ m`` pair.

        For word2vec interpretations the original predicate text carries the
        user's wording ("really clean") and is the phrase handed to the
        membership function; for co-occurrence interpretations the predicate
        text is only a weak proxy of the attribute, so the marker itself is
        used as the phrase.
        """
        if interpretation.method is InterpretationMethod.WORD2VEC:
            return interpretation.predicate
        return marker

    def pair_degrees(
        self,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
        store: object | None = None,
    ) -> list[float]:
        """Batch primitive: degrees of one ``A ≐ m`` condition for many entities.

        With markers enabled this routes through a columnar store — a
        handful of NumPy kernel calls over dense per-attribute summary
        arrays — falling back to a :meth:`MembershipFunction.degrees` pass
        over per-entity summaries when the store cannot serve the request
        (columnar disabled, membership without a columnar kernel, or an
        attribute with no stored summaries).  The marker-free ablation falls
        back to per-entity raw-extraction scans.

        ``store`` routes one computation through a specific store instead of
        the processor's own — any object with the store's ``pair_degrees``
        protocol works, including
        :class:`repro.serving.sharded.ShardedColumnarStore`, whose kernels
        fan out across entity shards.  The sharded serving engine installs
        its sharded store as ``columnar_store`` outright, so every degree
        the processor computes is shard-routed; both stores produce exactly
        the degrees of the unsharded path (the kernels are row-independent).
        """
        if not self.use_markers:
            return [
                self.raw_membership.degree_for_attribute(entity_id, attribute, phrase)
                for entity_id in entity_ids
            ]
        store = store if store is not None else self.columnar_store
        if self.use_columnar and store is not None:
            degrees = store.pair_degrees(self.membership, entity_ids, attribute, phrase)
            if degrees is not None:
                return degrees
        summaries = [
            self.database.marker_summary(entity_id, attribute)
            for entity_id in entity_ids
        ]
        return [float(degree) for degree in self.membership.degrees(summaries, phrase)]

    def retrieval_degrees(
        self, entity_ids: Sequence[Hashable], predicate: str
    ) -> list[float]:
        """Batch primitive: text-retrieval fallback degrees for many entities.

        BM25 scores for all candidates — ``sigmoid(BM25(D, q) − c)`` — come
        from one :meth:`repro.text.bm25.Bm25Index.scores` pass (query
        tokenisation and per-term idf computed once, term contributions
        accumulated as array ops); the sigmoid squash stays per-entity
        scalar so values are bit-identical to a per-entity computation.
        """
        index = self.database.entity_index
        if index is None:
            return [0.0 for _ in entity_ids]
        pivot = self.retrieval_pivot
        return [
            1.0 / (1.0 + math.exp(-(score - pivot)))
            for score in index.scores(entity_ids, predicate)
        ]

    def interpretation_degrees(
        self,
        entity_ids: Sequence[Hashable],
        interpretation: Interpretation,
        pair_scorer: PairScorer | None = None,
        retrieval_scorer: RetrievalScorer | None = None,
    ) -> list[float]:
        """Degrees of one interpreted predicate for many entities.

        ``pair_scorer`` / ``retrieval_scorer`` default to the uncached batch
        primitives; the serving engine passes cache-aware wrappers with the
        same signatures, so both paths compute identical values.
        """
        pair_scorer = pair_scorer or self.pair_degrees
        retrieval_scorer = retrieval_scorer or self.retrieval_degrees
        if interpretation.method is InterpretationMethod.TEXT_RETRIEVAL or not interpretation.pairs:
            return retrieval_scorer(entity_ids, interpretation.predicate)
        per_pair = [
            pair_scorer(
                entity_ids,
                pair.attribute,
                self.phrase_for_pair(interpretation, pair.marker),
            )
            for pair in interpretation.pairs
        ]
        combine = (
            self.logic.conjunction
            if interpretation.combinator == "and"
            else self.logic.disjunction
        )
        return [
            combine([degrees[index] for degrees in per_pair])
            for index in range(len(entity_ids))
        ]

    def predicate_degree(self, entity_id: Hashable, interpretation: Interpretation) -> float:
        """Degree of truth of one interpreted predicate for one entity.

        Single-entity convenience over :meth:`interpretation_degrees`.
        """
        return self.interpretation_degrees([entity_id], interpretation)[0]

    def _retrieval_degree(self, entity_id: Hashable, predicate: str) -> float:
        """Single-entity convenience over :meth:`retrieval_degrees`."""
        return self.retrieval_degrees([entity_id], predicate)[0]

    # ------------------------------------------------------------- explain
    def explain(self, result: QueryResult, entity_id: Hashable, limit: int = 3) -> list[str]:
        """Human-readable evidence for why ``entity_id`` matched the query.

        Returns review-sentence snippets (provenance) for each interpreted
        predicate, via the marker summaries' provenance records.
        """
        lines: list[str] = []
        for predicate, interpretation in result.interpretations.items():
            if not interpretation.is_schema_interpretation:
                lines.append(f"{predicate!r}: matched by text retrieval over raw reviews")
                continue
            for pair in interpretation.pairs:
                evidence = self.database.explain(
                    entity_id, pair.attribute, pair.marker, limit=limit
                )
                for record in evidence:
                    lines.append(
                        f"{predicate!r} -> {pair.attribute}.{pair.marker!r}: "
                        f"\"{record.sentence}\""
                    )
        return lines
