"""Columnar marker-summary storage and vectorized scoring kernels.

The membership functions of Section 3.3 read only precomputed marker
summaries, which makes each ``(summary, phrase)`` scoring cheap — but the
scalar path still visits entities one at a time from Python, so a cold
(uncached) predicate over E entities costs O(E·M) interpreted-loop
iterations.  This module applies the classic columnar-execution move from
the database literature: per subjective attribute, every entity's summary is
stacked into contiguous entity-major arrays, and one phrase is scored
against *all* entities with a handful of NumPy kernels.

Layout per attribute (:class:`AttributeColumns`):

* ``fractions`` / ``average_sentiments`` — E×M matrices;
* ``totals`` / ``unmatched`` / ``overall_sentiments`` — length-E vectors;
* ``centroids_unit`` — an E×M×D tensor of L2-prenormalized marker
  centroids, so phrase–centroid cosine similarity is one tensor–vector
  product;
* ``name_units`` — the shared M×D matrix of L2-prenormalized marker-name
  vectors, so phrase–marker-name similarity is one matrix–vector product.

:class:`ColumnarSummaryStore` builds these lazily per attribute and
invalidates them through :attr:`SubjectiveDatabase.data_version`, exactly
like the serving-layer caches: any ingest moves the version and the next
read rebuilds.  Kernels mirror the scalar membership arithmetic operation
for operation, so degrees agree with the per-entity path to floating-point
round-off (the test suite pins ``atol=1e-9`` and identical rankings).

Entities whose summaries do not conform to the attribute's schema markers
(or that have no stored summary at all) are simply absent from the columns;
callers fall back to per-entity scalar scoring for them.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from repro.core.markers import Marker
from repro.errors import SchemaError, SnapshotError, SnapshotIntegrityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.database import SubjectiveDatabase
    from repro.core.membership import MembershipFunction


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalize the last axis, mapping zero vectors to zero vectors.

    Cosine similarity is invariant to positive scaling, so prenormalized
    rows turn every later cosine into a plain dot product; zero rows keep
    the scalar convention ``cosine(u, 0) == 0``.
    """
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms


def slice_view(columns: "AttributeColumns", start: int, stop: int) -> "AttributeColumns":
    """A contiguous row range of ``columns`` as NumPy *views* (no copy).

    Basic slicing of the E axis shares the underlying buffers, so a slice
    view costs O(stop − start) only for the entity-id bookkeeping; the
    per-entity arrays and the shared marker data are the store's own.  This
    is the unit of placement for the sharded serving engine: every scoring
    kernel is row-independent, so running it over a slice view computes
    exactly the arithmetic the full pass would for those rows.
    """
    entity_ids = columns.entity_ids[start:stop]
    return AttributeColumns(
        attribute=columns.attribute,
        entity_ids=entity_ids,
        row_of={entity_id: index for index, entity_id in enumerate(entity_ids)},
        markers=columns.markers,
        marker_sentiments=columns.marker_sentiments,
        fractions=columns.fractions[start:stop],
        average_sentiments=columns.average_sentiments[start:stop],
        totals=columns.totals[start:stop],
        unmatched=columns.unmatched[start:stop],
        overall_sentiments=columns.overall_sentiments[start:stop],
        centroids_unit=columns.centroids_unit[start:stop],
        name_units=columns.name_units,
    )


def gather_rows(columns: "AttributeColumns", rows: list[int]) -> "AttributeColumns":
    """A row gather of ``columns`` restricted to ``rows`` (shared marker data).

    The scoring kernels are row-independent, so running them over a gather
    computes the same per-entity arithmetic as the full pass; used when the
    requested entities are a small slice of the store.
    """
    entity_ids = [columns.entity_ids[row] for row in rows]
    return AttributeColumns(
        attribute=columns.attribute,
        entity_ids=entity_ids,
        row_of={entity_id: index for index, entity_id in enumerate(entity_ids)},
        markers=columns.markers,
        marker_sentiments=columns.marker_sentiments,
        fractions=columns.fractions[rows],
        average_sentiments=columns.average_sentiments[rows],
        totals=columns.totals[rows],
        unmatched=columns.unmatched[rows],
        overall_sentiments=columns.overall_sentiments[rows],
        centroids_unit=columns.centroids_unit[rows],
        name_units=columns.name_units,
    )


def resolve_slice(
    columns: "AttributeColumns",
    start: int,
    stop: int,
    rows: "list[int] | None" = None,
) -> "AttributeColumns":
    """The kernel-ready view of one shipped ``(start, stop, rows)`` slice spec.

    This is the receiving half of the slice-shipping contract used by the
    process shard backend and the RPC shard service: the sender ships only
    indices — a contiguous ``[start, stop)`` row range of an attribute's
    columns, optionally narrowed to slice-relative ``rows`` for a sparse
    request — and the receiver resolves them against its own deterministic
    rebuild of the column arrays.  Both sides build identical arrays from
    the same database snapshot, so the resolved view (and every kernel
    result computed from it) is bit-identical to the sender's.
    """
    view = slice_view(columns, start, stop)
    if rows is not None:
        view = gather_rows(view, rows)
    return view


def plan_slice_requests(
    bounds: Sequence[int],
    resident: Sequence[int],
    sparse_factor: int = 4,
) -> "list[tuple[int, int, int, list[int] | None, object]]":
    """Group sorted resident rows into per-slice score requests.

    ``bounds`` are the K+1 monotone partition bounds of the store's E axis
    (slice ``i`` owns rows ``[bounds[i], bounds[i+1])``); ``resident`` are
    the store-wide row indices to score, sorted ascending.  Returns one
    request tuple ``(slice_id, start, stop, rows, scatter)`` per slice that
    owns at least one resident row:

    * ``rows`` is ``None`` for a full-slice kernel pass, or slice-relative
      row indices when the resident rows are a sparse subset of the slice
      (fewer than ``1/sparse_factor`` of its rows — the columnar store's
      sparse-gather heuristic, applied per slice);
    * ``scatter`` places the request's result vector back into a store-wide
      degree array: a ``slice`` object for full passes, an index array for
      gathers.

    Empty slices produce no request, so shipping a request per tuple never
    sends empty work.  Shared by the in-process sharded store and the RPC
    coordinator — both fan out exactly these requests, only the transport
    differs.
    """
    requests: list[tuple[int, int, int, list[int] | None, object]] = []
    position = 0
    for slice_id, (start, stop) in enumerate(zip(bounds, bounds[1:])):
        begin = position
        while position < len(resident) and resident[position] < stop:
            position += 1
        slice_rows = resident[begin:position]
        if not slice_rows:
            continue
        if len(slice_rows) * sparse_factor < stop - start:
            relative = [row - start for row in slice_rows]
            requests.append((slice_id, start, stop, relative, np.asarray(slice_rows)))
        else:
            requests.append((slice_id, start, stop, None, slice(start, stop)))
    return requests


@dataclass
class AttributeColumns:
    """Dense entity-major view of every marker summary of one attribute.

    Rows are aligned with ``entity_ids``; ``row_of`` maps an entity id back
    to its row.  All arrays are read-only snapshots of the summaries at one
    :attr:`SubjectiveDatabase.data_version`.
    """

    attribute: str
    entity_ids: list[Hashable]
    row_of: dict[Hashable, int]
    markers: list[Marker]
    marker_sentiments: np.ndarray  # (M,)
    fractions: np.ndarray  # (E, M)
    average_sentiments: np.ndarray  # (E, M)
    totals: np.ndarray  # (E,)
    unmatched: np.ndarray  # (E,)
    overall_sentiments: np.ndarray  # (E,)
    centroids_unit: np.ndarray  # (E, M, D)
    name_units: np.ndarray  # (M, D)

    @property
    def num_entities(self) -> int:
        """Number of entity rows (E) in the column arrays."""
        return len(self.entity_ids)

    @property
    def num_markers(self) -> int:
        """Number of markers (M) of the attribute's schema."""
        return len(self.markers)

    @property
    def dimension(self) -> int:
        """Embedding dimension of the centroid/name vectors (0 when absent)."""
        return self.name_units.shape[1]


# --------------------------------------------------------------------------
# Column snapshots (deterministic, checksummed bytes for shipping slices)
# --------------------------------------------------------------------------

#: Magic prefix + format version of the packed column-snapshot layout.
#: Version 2 added the flags byte after the checksum: zlib body
#: compression, optional f32 centroid quantization, and delta frames.
SNAPSHOT_MAGIC = b"OPSN"
SNAPSHOT_FORMAT_VERSION = 2

#: Container flag bits (one u8 between the checksum and the body).
SNAPSHOT_FLAG_ZLIB = 0x01  # body is zlib-compressed
SNAPSHOT_FLAG_F32_CENTROIDS = 0x02  # centroid tensor quantized to f32
SNAPSHOT_FLAG_DELTA = 0x04  # body is a SnapshotDelta, not a full snapshot
SNAPSHOT_FLAG_COLUMN_FILE = 0x08  # body is an mmap-layout column file (repro.storage)

_SNAP_U16 = struct.Struct("!H")
_SNAP_U32 = struct.Struct("!I")
_SNAP_U64 = struct.Struct("!Q")
_SNAP_U8 = struct.Struct("!B")

#: Canonical big-endian f64 wire dtype — the byte swap is lossless, so
#: every array bit survives the pack/unpack round trip.  The f32 dtype is
#: used only for quantized centroid tensors behind an explicit tolerance.
_SNAP_F64 = ">f8"
_SNAP_F32 = ">f4"
_SNAP_ROW = ">u4"


def _pack_f64(array: np.ndarray) -> bytes:
    """One array as big-endian f64 bytes in C order (deterministic)."""
    return np.ascontiguousarray(array, dtype=np.float64).astype(_SNAP_F64).tobytes()


def _pack_centroids(array: np.ndarray, tolerance: float | None) -> tuple[bytes, int]:
    """The centroid tensor as wire bytes; ``(bytes, container flags)``.

    Lossless f64 by default.  With an explicit ``tolerance``, the tensor is
    quantized to f32 *iff* every element's round-trip error stays within
    the tolerance — otherwise a typed :class:`SnapshotError` refuses the
    pack, so a caller can never silently ship degrees it did not sign up
    for.  (Unit-normalized centroids round-trip through f32 with error
    ~6e-8, so tolerances down to 1e-7 are routinely satisfiable.)
    """
    if tolerance is None:
        return _pack_f64(array), 0
    if tolerance < 0:
        raise SnapshotError(f"centroid tolerance must be >= 0, got {tolerance}")
    exact = np.ascontiguousarray(array, dtype=np.float64)
    quantized = exact.astype(np.float32)
    error = float(np.max(np.abs(exact - quantized.astype(np.float64)))) if exact.size else 0.0
    if error > tolerance:
        raise SnapshotError(
            f"f32 centroid quantization error {error:g} exceeds the "
            f"declared tolerance {tolerance:g}"
        )
    return quantized.astype(_SNAP_F32).tobytes(), SNAPSHOT_FLAG_F32_CENTROIDS


def _snapshot_meta(columns: "AttributeColumns", entity_ids: Sequence[Hashable]) -> bytes:
    """The deterministic meta-JSON bytes shared by full and delta bodies."""
    for entity_id in entity_ids:
        # JSON must round-trip ids *exactly* — tuples would silently
        # come back as lists and break node-side row lookup.
        if entity_id is not None and not isinstance(entity_id, (str, int, float)):
            raise SnapshotError(
                f"entity id {entity_id!r} of attribute {columns.attribute!r} "
                "is not snapshot-serializable (ids must be str, int, float "
                "or None)"
            )
    try:
        return json.dumps(
            {
                "attribute": columns.attribute,
                "entity_ids": list(entity_ids),
                "markers": [
                    [marker.name, marker.position, marker.sentiment]
                    for marker in columns.markers
                ],
                "dimension": columns.dimension,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise SnapshotError(
            f"entity ids of attribute {columns.attribute!r} are not "
            f"snapshot-serializable ({error})"
        ) from error


def _pack_container(body: bytes, flags: int, compress: bool) -> bytes:
    """Wrap one body in the versioned, checksummed snapshot container.

    Layout: ``magic (4) | format version (u16) | crc32 (u32) | flags (u8) |
    stored body``.  The CRC covers the flags byte *and* the stored body, so
    a flipped flag (e.g. compressed read as raw) is an integrity failure,
    never a misparse.  Compression is zlib level 1 — the point is cheap
    wire-size reduction on hydrate frames, not archival ratios.
    """
    if compress:
        flags |= SNAPSHOT_FLAG_ZLIB
        body = zlib.compress(body, 1)
    stored = _SNAP_U8.pack(flags) + body
    return (
        SNAPSHOT_MAGIC
        + _SNAP_U16.pack(SNAPSHOT_FORMAT_VERSION)
        + _SNAP_U32.pack(zlib.crc32(stored))
        + stored
    )


def _unpack_container(payload: bytes) -> tuple[int, bytes]:
    """Verify one container's header + checksum; ``(flags, body bytes)``.

    Raises :class:`SnapshotError` for a wrong magic, an unsupported format
    version or a truncated payload, and :class:`SnapshotIntegrityError`
    when the checksum over ``flags | stored body`` does not match.  The
    checksum is verified *before* decompression, so corrupted compressed
    bytes fail typed instead of feeding garbage to zlib.
    """
    header_size = len(SNAPSHOT_MAGIC) + _SNAP_U16.size + _SNAP_U32.size + _SNAP_U8.size
    if len(payload) < header_size:
        raise SnapshotError(
            f"snapshot too short ({len(payload)} bytes; header is {header_size})"
        )
    if payload[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotError("not a column snapshot (bad magic)")
    offset = len(SNAPSHOT_MAGIC)
    (version,) = _SNAP_U16.unpack_from(payload, offset)
    offset += _SNAP_U16.size
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format version {version} "
            f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
        )
    (checksum,) = _SNAP_U32.unpack_from(payload, offset)
    offset += _SNAP_U32.size
    stored = payload[offset:]
    if zlib.crc32(stored) != checksum:
        raise SnapshotIntegrityError(
            "column snapshot failed its checksum (corrupted in transit)"
        )
    flags = stored[0]
    body = stored[1:]
    if flags & SNAPSHOT_FLAG_ZLIB:
        try:
            body = zlib.decompress(body)
        except zlib.error as error:
            raise SnapshotError(f"snapshot body failed to decompress ({error})") from error
    return flags, body


@dataclass(frozen=True)
class ColumnSnapshot:
    """One attribute slice's column arrays as a shippable, versioned unit.

    The snapshot is the sending half of the cluster hydration contract
    (:mod:`repro.serving.cluster`): instead of relying on ``fork`` to put a
    database copy inside every worker, the coordinator packs the slice's
    arrays — fractions, sentiments, totals, unmatched counts, the centroid
    tensor, the shared marker-name matrix, and the entity ids — into
    deterministic bytes and ships them to a network-addressable shard node,
    which unpacks them into a kernel-ready :class:`AttributeColumns` view.

    ``data_version`` records the :attr:`SubjectiveDatabase.data_version`
    the arrays were built against, ``slice_id`` / ``start`` / ``stop``
    identify which contiguous row range of the attribute's E axis this is,
    and ``columns`` holds exactly those rows (``columns.num_entities ==
    stop - start``).

    Packing is deterministic — the same snapshot state always produces the
    same bytes — and self-checking: a CRC-32 over the body is verified by
    :meth:`unpack`, so a corrupted or truncated snapshot raises a typed
    :class:`repro.errors.SnapshotError` (checksum failures the narrower
    :class:`repro.errors.SnapshotIntegrityError`) instead of hydrating
    silently-wrong arrays.  Every float64 travels as big-endian bytes, a
    lossless byte swap, so unpacked arrays are bit-identical to the packed
    ones — which is what lets hydrated nodes keep the stack's exact-equality
    guarantee.
    """

    data_version: int
    slice_id: int
    start: int
    stop: int
    columns: AttributeColumns

    @classmethod
    def of_slice(
        cls,
        columns: "AttributeColumns",
        slice_id: int,
        start: int,
        stop: int,
        data_version: int,
    ) -> "ColumnSnapshot":
        """The snapshot of rows ``[start, stop)`` of ``columns``.

        The slice is taken with :func:`slice_view`, so building a snapshot
        copies nothing until :meth:`pack` serializes the arrays.
        """
        if not 0 <= start <= stop <= columns.num_entities:
            raise SnapshotError(
                f"slice [{start}, {stop}) out of range for attribute "
                f"{columns.attribute!r} ({columns.num_entities} entities)"
            )
        return cls(
            data_version=data_version,
            slice_id=slice_id,
            start=start,
            stop=stop,
            columns=slice_view(columns, start, stop),
        )

    def pack(self, compress: bool = False, centroid_tolerance: float | None = None) -> bytes:
        """Serialize to deterministic, checksummed bytes.

        Layout: ``magic (4) | format version (u16) | crc32 (u32) | flags
        (u8) | body``, where the body is ``data_version (u64) | slice_id |
        start | stop (u32 each) | meta JSON (u32 length + bytes) |
        arrays``.  The meta JSON (compact separators, sorted keys —
        deterministic) carries the attribute name, the entity ids, the
        marker ``(name, position, sentiment)`` triples and the embedding
        dimension; the arrays follow as raw big-endian f64 in a fixed
        order with shapes derived from (E, M, D).  Entity ids must be
        JSON-serializable (ints and strings round-trip exactly); anything
        else raises :class:`SnapshotError`.

        ``compress=True`` wraps the body in zlib framing — still lossless,
        every unpacked bit identical.  ``centroid_tolerance`` opts into f32
        quantization of the E×M×D centroid tensor (the dominant term of a
        hydrate frame): the pack is refused with :class:`SnapshotError`
        unless every element's f64→f32→f64 round-trip error is within the
        tolerance.  The default (``None``) keeps full bit-identity.
        """
        columns = self.columns
        meta = _snapshot_meta(columns, columns.entity_ids)
        centroid_bytes, flags = _pack_centroids(columns.centroids_unit, centroid_tolerance)
        body = b"".join(
            [
                _SNAP_U64.pack(self.data_version),
                _SNAP_U32.pack(self.slice_id),
                _SNAP_U32.pack(self.start),
                _SNAP_U32.pack(self.stop),
                _SNAP_U32.pack(len(meta)),
                meta,
                _pack_f64(columns.marker_sentiments),
                _pack_f64(columns.fractions),
                _pack_f64(columns.average_sentiments),
                _pack_f64(columns.totals),
                _pack_f64(columns.unmatched),
                _pack_f64(columns.overall_sentiments),
                centroid_bytes,
                _pack_f64(columns.name_units),
            ]
        )
        return _pack_container(body, flags, compress)

    @classmethod
    def unpack(cls, payload: bytes) -> "ColumnSnapshot":
        """Rebuild a snapshot from :meth:`pack` bytes, verifying integrity.

        Raises :class:`repro.errors.SnapshotError` for a wrong magic, an
        unsupported format version, a delta frame (those belong to
        :meth:`SnapshotDelta.unpack`), or a truncated/malformed payload,
        and :class:`repro.errors.SnapshotIntegrityError` when the checksum
        does not match — typed failures in every case, so a transport
        layer can refuse bad hydration data without ever serving from it.
        """
        flags, body = _unpack_container(payload)
        if flags & SNAPSHOT_FLAG_DELTA:
            raise SnapshotError(
                "payload is a delta snapshot frame; unpack it with SnapshotDelta.unpack"
            )
        if flags & SNAPSHOT_FLAG_COLUMN_FILE:
            raise SnapshotError(
                "payload is a persistent column file; read it with repro.storage"
            )
        try:
            return cls._unpack_body(body, flags)
        except (struct.error, IndexError, KeyError, TypeError, UnicodeDecodeError) as error:
            raise SnapshotError(f"malformed column snapshot body ({error})") from error

    @classmethod
    def _unpack_body(cls, body: bytes, flags: int) -> "ColumnSnapshot":
        offset = 0
        (data_version,) = _SNAP_U64.unpack_from(body, offset)
        offset += _SNAP_U64.size
        slice_id, start, stop, meta_length = struct.unpack_from("!IIII", body, offset)
        offset += 16
        if offset + meta_length > len(body):
            raise SnapshotError("truncated column snapshot (meta)")
        try:
            meta = json.loads(body[offset : offset + meta_length].decode("utf-8"))
        except ValueError as error:
            raise SnapshotError(f"malformed snapshot meta ({error})") from error
        offset += meta_length
        entity_ids = list(meta["entity_ids"])
        markers = [
            Marker(str(name), int(position), float(sentiment))
            for name, position, sentiment in meta["markers"]
        ]
        num_entities, num_markers = len(entity_ids), len(markers)
        dimension = int(meta["dimension"])
        if stop - start != num_entities:
            raise SnapshotError(
                f"snapshot row range [{start}, {stop}) does not match its "
                f"{num_entities} entity ids"
            )
        def take(shape: tuple[int, ...], dtype: str = _SNAP_F64) -> np.ndarray:
            nonlocal offset
            count = int(np.prod(shape)) if shape else 1
            size = np.dtype(dtype).itemsize * count
            if offset + size > len(body):
                raise SnapshotError("truncated column snapshot (arrays)")
            array = np.frombuffer(body, dtype=dtype, count=count, offset=offset)
            offset += size
            return array.astype(np.float64).reshape(shape)

        centroid_dtype = _SNAP_F32 if flags & SNAPSHOT_FLAG_F32_CENTROIDS else _SNAP_F64
        marker_sentiments = take((num_markers,))
        fractions = take((num_entities, num_markers))
        average_sentiments = take((num_entities, num_markers))
        totals = take((num_entities,))
        unmatched = take((num_entities,))
        overall_sentiments = take((num_entities,))
        centroids_unit = take((num_entities, num_markers, dimension), centroid_dtype)
        name_units = take((num_markers, dimension))
        if offset != len(body):
            raise SnapshotError(
                f"column snapshot has {len(body) - offset} trailing bytes"
            )
        columns = AttributeColumns(
            attribute=str(meta["attribute"]),
            entity_ids=entity_ids,
            row_of={entity_id: row for row, entity_id in enumerate(entity_ids)},
            markers=markers,
            marker_sentiments=marker_sentiments,
            fractions=fractions,
            average_sentiments=average_sentiments,
            totals=totals,
            unmatched=unmatched,
            overall_sentiments=overall_sentiments,
            centroids_unit=centroids_unit,
            name_units=name_units,
        )
        return cls(
            data_version=data_version,
            slice_id=slice_id,
            start=start,
            stop=stop,
            columns=columns,
        )


@dataclass(frozen=True)
class SnapshotDelta:
    """The changed rows between two versions of one slice's snapshot.

    A small ingest typically touches a handful of entities, yet the
    ``data_version`` contract invalidates every hydrated slice — before
    deltas, each node re-downloaded its whole slice.  A delta carries only
    the rows whose per-entity arrays changed between ``base_version`` and
    ``data_version``: the receiver applies them over the base snapshot it
    still holds (:meth:`apply`) and obtains a snapshot *bit-identical* to
    the full pack of the new version, because every unchanged row is
    byte-equal by construction and every changed row ships its exact f64
    bits.

    ``rows`` are slice-relative indices, strictly ascending; ``columns``
    is a gather of exactly those rows (shared marker data included for
    shape bookkeeping, but the delta is only *eligible* when the shared
    ``marker_sentiments`` / ``name_units`` arrays and the slice's entity
    ids are unchanged — :meth:`between` returns ``None`` otherwise, and
    the coordinator falls back to a full snapshot).
    """

    base_version: int
    data_version: int
    slice_id: int
    start: int
    stop: int
    rows: tuple[int, ...]
    columns: AttributeColumns

    #: Per-entity arrays a delta ships, in wire order.  ``centroids_unit``
    #: is packed last of the row arrays so the f32-quantization flag can
    #: apply to it alone, exactly as in the full snapshot layout.
    _ROW_ARRAYS = (
        "fractions",
        "average_sentiments",
        "totals",
        "unmatched",
        "overall_sentiments",
        "centroids_unit",
    )

    @property
    def num_rows(self) -> int:
        """Number of changed rows the delta carries."""
        return len(self.rows)

    @classmethod
    def between(
        cls,
        base: "ColumnSnapshot",
        new: "ColumnSnapshot",
        max_fraction: float = 0.5,
    ) -> "SnapshotDelta | None":
        """The delta turning ``base`` into ``new``, or ``None`` if ineligible.

        Eligibility is conservative — a delta is only built when applying
        it can reproduce the new snapshot bit-for-bit from the base:

        * same attribute, slice id and ``[start, stop)`` row range;
        * identical entity-id list (an ingest that adds entities moves the
          partition bounds — every slice re-ships in full);
        * identical marker schema and bit-equal shared arrays
          (``marker_sentiments``, ``name_units``) — those are not carried
          by the delta;
        * fewer than ``max_fraction`` of the rows changed (beyond that a
          full snapshot is no bigger and needs no base bookkeeping).

        Row change detection is exact (``!=`` on the raw f64 bits per
        row), so an untouched row can never ride along and a touched row
        can never be missed.
        """
        old, fresh = base.columns, new.columns
        if (
            base.slice_id != new.slice_id
            or base.start != new.start
            or base.stop != new.stop
            or old.attribute != fresh.attribute
            or list(old.entity_ids) != list(fresh.entity_ids)
            or old.markers != fresh.markers
            or old.dimension != fresh.dimension
            or not np.array_equal(old.marker_sentiments, fresh.marker_sentiments)
            or not np.array_equal(old.name_units, fresh.name_units)
        ):
            return None
        changed = (
            np.any(old.fractions != fresh.fractions, axis=1)
            | np.any(old.average_sentiments != fresh.average_sentiments, axis=1)
            | (old.totals != fresh.totals)
            | (old.unmatched != fresh.unmatched)
            | (old.overall_sentiments != fresh.overall_sentiments)
        )
        if old.dimension:
            changed |= np.any(old.centroids_unit != fresh.centroids_unit, axis=(1, 2))
        rows = [int(row) for row in np.flatnonzero(changed)]
        if len(rows) > max_fraction * max(1, fresh.num_entities):
            return None
        return cls(
            base_version=base.data_version,
            data_version=new.data_version,
            slice_id=new.slice_id,
            start=new.start,
            stop=new.stop,
            rows=tuple(rows),
            columns=gather_rows(fresh, rows),
        )

    def pack(self, compress: bool = False, centroid_tolerance: float | None = None) -> bytes:
        """Serialize to the shared snapshot container with the delta flag set.

        Body layout: ``base_version (u64) | data_version (u64) | slice_id |
        start | stop | row count (u32 each) | rows (u32 each, ascending,
        slice-relative) | meta JSON (u32 length + bytes; the *changed*
        rows' entity ids) | per-row arrays`` in :attr:`_ROW_ARRAYS` order.
        ``compress`` / ``centroid_tolerance`` behave exactly as in
        :meth:`ColumnSnapshot.pack`.
        """
        columns = self.columns
        meta = _snapshot_meta(columns, columns.entity_ids)
        centroid_bytes, flags = _pack_centroids(columns.centroids_unit, centroid_tolerance)
        body = b"".join(
            [
                _SNAP_U64.pack(self.base_version),
                _SNAP_U64.pack(self.data_version),
                _SNAP_U32.pack(self.slice_id),
                _SNAP_U32.pack(self.start),
                _SNAP_U32.pack(self.stop),
                _SNAP_U32.pack(len(self.rows)),
                np.asarray(self.rows, dtype=np.uint32).astype(_SNAP_ROW).tobytes(),
                _SNAP_U32.pack(len(meta)),
                meta,
                _pack_f64(columns.fractions),
                _pack_f64(columns.average_sentiments),
                _pack_f64(columns.totals),
                _pack_f64(columns.unmatched),
                _pack_f64(columns.overall_sentiments),
                centroid_bytes,
            ]
        )
        return _pack_container(body, flags | SNAPSHOT_FLAG_DELTA, compress)

    @classmethod
    def unpack(cls, payload: bytes) -> "SnapshotDelta":
        """Rebuild a delta from :meth:`pack` bytes, verifying integrity.

        Same typed-failure contract as :meth:`ColumnSnapshot.unpack`
        (:class:`SnapshotError` on malformed/mistyped frames — including a
        *full* snapshot frame handed here — and
        :class:`SnapshotIntegrityError` on checksum mismatch).
        """
        flags, body = _unpack_container(payload)
        if not flags & SNAPSHOT_FLAG_DELTA:
            raise SnapshotError(
                "payload is a full snapshot frame; unpack it with ColumnSnapshot.unpack"
            )
        try:
            return cls._unpack_body(body, flags)
        except (struct.error, IndexError, KeyError, TypeError, UnicodeDecodeError) as error:
            raise SnapshotError(f"malformed delta snapshot body ({error})") from error

    @classmethod
    def _unpack_body(cls, body: bytes, flags: int) -> "SnapshotDelta":
        offset = 0
        base_version, data_version = struct.unpack_from("!QQ", body, offset)
        offset += 16
        slice_id, start, stop, num_rows = struct.unpack_from("!IIII", body, offset)
        offset += 16
        row_bytes = 4 * num_rows
        if offset + row_bytes > len(body):
            raise SnapshotError("truncated delta snapshot (rows)")
        rows = tuple(
            int(row)
            for row in np.frombuffer(body, dtype=_SNAP_ROW, count=num_rows, offset=offset)
        )
        offset += row_bytes
        if any(not 0 <= row < stop - start for row in rows):
            raise SnapshotError(
                f"delta row indices out of slice range [0, {stop - start})"
            )
        if any(a >= b for a, b in zip(rows, rows[1:])):
            raise SnapshotError("delta row indices are not strictly ascending")
        (meta_length,) = _SNAP_U32.unpack_from(body, offset)
        offset += _SNAP_U32.size
        if offset + meta_length > len(body):
            raise SnapshotError("truncated delta snapshot (meta)")
        try:
            meta = json.loads(body[offset : offset + meta_length].decode("utf-8"))
        except ValueError as error:
            raise SnapshotError(f"malformed delta snapshot meta ({error})") from error
        offset += meta_length
        entity_ids = list(meta["entity_ids"])
        if len(entity_ids) != num_rows:
            raise SnapshotError(
                f"delta carries {num_rows} rows but {len(entity_ids)} entity ids"
            )
        markers = [
            Marker(str(name), int(position), float(sentiment))
            for name, position, sentiment in meta["markers"]
        ]
        num_markers = len(markers)
        dimension = int(meta["dimension"])

        def take(shape: tuple[int, ...], dtype: str = _SNAP_F64) -> np.ndarray:
            nonlocal offset
            count = int(np.prod(shape)) if shape else 1
            size = np.dtype(dtype).itemsize * count
            if offset + size > len(body):
                raise SnapshotError("truncated delta snapshot (arrays)")
            array = np.frombuffer(body, dtype=dtype, count=count, offset=offset)
            offset += size
            return array.astype(np.float64).reshape(shape)

        centroid_dtype = _SNAP_F32 if flags & SNAPSHOT_FLAG_F32_CENTROIDS else _SNAP_F64
        fractions = take((num_rows, num_markers))
        average_sentiments = take((num_rows, num_markers))
        totals = take((num_rows,))
        unmatched = take((num_rows,))
        overall_sentiments = take((num_rows,))
        centroids_unit = take((num_rows, num_markers, dimension), centroid_dtype)
        if offset != len(body):
            raise SnapshotError(
                f"delta snapshot has {len(body) - offset} trailing bytes"
            )
        columns = AttributeColumns(
            attribute=str(meta["attribute"]),
            entity_ids=entity_ids,
            row_of={entity_id: row for row, entity_id in enumerate(entity_ids)},
            markers=markers,
            # The shared arrays are not carried — the delta contract is
            # that the base's are still current; apply() reuses them.
            marker_sentiments=np.zeros(num_markers),
            fractions=fractions,
            average_sentiments=average_sentiments,
            totals=totals,
            unmatched=unmatched,
            overall_sentiments=overall_sentiments,
            centroids_unit=centroids_unit,
            name_units=np.zeros((num_markers, dimension)),
        )
        return cls(
            base_version=base_version,
            data_version=data_version,
            slice_id=slice_id,
            start=start,
            stop=stop,
            rows=rows,
            columns=columns,
        )

    def apply(self, base: "ColumnSnapshot") -> "ColumnSnapshot":
        """The new-version snapshot obtained by patching ``base``.

        Every mismatch between the delta's expectations and the offered
        base — version skew, a different slice, a different attribute or
        marker schema, or entity ids that moved — raises a typed
        :class:`SnapshotError`; the node-side transport turns that into a
        transported error and the coordinator re-ships a full snapshot.
        Unchanged rows are shared with the base arrays byte-for-byte, so a
        lossless delta applied to a lossless base reproduces exactly the
        bits a full snapshot of the new version would carry.
        """
        old = base.columns
        if base.data_version != self.base_version:
            raise SnapshotError(
                f"delta base version skew: delta was built against version "
                f"{self.base_version}, the offered base holds {base.data_version}"
            )
        if (
            base.slice_id != self.slice_id
            or base.start != self.start
            or base.stop != self.stop
            or old.attribute != self.columns.attribute
        ):
            raise SnapshotError(
                f"delta for slice {self.slice_id} of {self.columns.attribute!r} "
                f"[{self.start}, {self.stop}) does not match base slice "
                f"{base.slice_id} of {old.attribute!r} [{base.start}, {base.stop})"
            )
        if old.markers != self.columns.markers or old.dimension != self.columns.dimension:
            raise SnapshotError("delta marker schema does not match its base")
        rows = list(self.rows)
        if any(row >= old.num_entities for row in rows):
            raise SnapshotError("delta row indices out of range for its base")
        changed_ids = [old.entity_ids[row] for row in rows]
        if changed_ids != list(self.columns.entity_ids):
            raise SnapshotError("delta entity ids do not match the base rows")
        fractions = old.fractions.copy()
        average_sentiments = old.average_sentiments.copy()
        totals = old.totals.copy()
        unmatched = old.unmatched.copy()
        overall_sentiments = old.overall_sentiments.copy()
        centroids_unit = old.centroids_unit.copy()
        if rows:
            fractions[rows] = self.columns.fractions
            average_sentiments[rows] = self.columns.average_sentiments
            totals[rows] = self.columns.totals
            unmatched[rows] = self.columns.unmatched
            overall_sentiments[rows] = self.columns.overall_sentiments
            centroids_unit[rows] = self.columns.centroids_unit
        entity_ids = list(old.entity_ids)
        columns = AttributeColumns(
            attribute=old.attribute,
            entity_ids=entity_ids,
            row_of={entity_id: row for row, entity_id in enumerate(entity_ids)},
            markers=old.markers,
            marker_sentiments=old.marker_sentiments,
            fractions=fractions,
            average_sentiments=average_sentiments,
            totals=totals,
            unmatched=unmatched,
            overall_sentiments=overall_sentiments,
            centroids_unit=centroids_unit,
            name_units=old.name_units,
        )
        return ColumnSnapshot(
            data_version=self.data_version,
            slice_id=self.slice_id,
            start=self.start,
            stop=self.stop,
            columns=columns,
        )


# --------------------------------------------------------------------------
# Scoring kernels (attribute-wide; one phrase against all E entities)
# --------------------------------------------------------------------------

def phrase_marker_similarities(
    columns: AttributeColumns, phrase_vector: np.ndarray | None
) -> np.ndarray:
    """E×M similarities of one phrase to each marker (name vs centroid max).

    Mirrors the scalar ``_marker_similarities_ctx``: per marker, the larger
    of the phrase's cosine to the marker *name* and to the marker's phrase
    *centroid*.  The name term is one M×D matrix–vector product shared by
    all entities; the centroid term is one E×M×D tensor–vector product.
    """
    shape = (columns.num_entities, columns.num_markers)
    if phrase_vector is None or columns.dimension == 0:
        return np.zeros(shape)
    norm = float(np.linalg.norm(phrase_vector))
    if norm == 0.0:
        return np.zeros(shape)
    unit = phrase_vector / norm
    name_similarities = columns.name_units @ unit  # (M,)
    # One 2-D GEMV over the flattened (E·M)×D tensor instead of E batched
    # (M×D)·D products: the same per-row dot products (each output element
    # is the dot of one centroid row with ``unit``) without the batched-
    # matmul dispatch overhead per entity.
    centroids = columns.centroids_unit
    centroid_similarities = (
        centroids.reshape(-1, centroids.shape[-1]) @ unit
    ).reshape(shape)  # (E, M)
    return np.maximum(name_similarities[np.newaxis, :], centroid_similarities)


def similarity_mass(
    columns: AttributeColumns, similarities: np.ndarray
) -> np.ndarray:
    """Length-E similarity-mass vector (scalar ``_similarity_mass_ctx``).

    Phrase mass concentrated on the markers most similar to the phrase,
    normalized by the summary's peak marker fraction; 0.5 (the neutral
    prior) where the phrase matches no marker or the summary is empty.
    """
    positives = np.clip(similarities, 0.0, None) ** 2  # (E, M)
    positive_sums = positives.sum(axis=1)  # (E,)
    safe_sums = np.where(positive_sums > 0.0, positive_sums, 1.0)
    weights = positives / safe_sums[:, np.newaxis]
    expected = np.einsum("em,em->e", weights, columns.fractions)
    peaks = columns.fractions.max(axis=1)
    mass = np.minimum(1.0, expected / (peaks + 1e-9))
    neutral = (positive_sums <= 0.0) | (columns.totals == 0.0)
    return np.where(neutral, 0.5, mass)


def marker_polarities(columns: AttributeColumns) -> np.ndarray:
    """E×M marker polarities: observed average sentiment, else the marker's own."""
    return np.where(
        np.abs(columns.average_sentiments) > 1e-9,
        columns.average_sentiments,
        columns.marker_sentiments[np.newaxis, :],
    )


def aligned_mass(columns: AttributeColumns, phrase_polarity: float) -> np.ndarray:
    """Length-E sentiment-aligned mass vector (scalar ``_aligned_mass``)."""
    sign = 1.0 if phrase_polarity >= 0 else -1.0
    alignments = 0.5 * (1.0 + sign * np.clip(marker_polarities(columns), -1.0, 1.0))
    mass = np.einsum("em,em->e", columns.fractions, alignments)
    return np.where(columns.totals == 0.0, 0.0, mass)


def summary_feature_matrix(
    columns: AttributeColumns,
    phrase_vector: np.ndarray | None,
    phrase_sentiment: float,
) -> np.ndarray:
    """E×12 feature matrix: row i is ``summary_feature_vector`` of entity i.

    Feeds :class:`repro.core.membership.LearnedMembership` through a single
    logistic matrix–vector product instead of E independent scorings.  The
    caller supplies the phrase's embedding vector and sentiment so this
    module stays free of the membership layer's text models.
    """
    similarities = phrase_marker_similarities(columns, phrase_vector)
    mass = similarity_mass(columns, similarities)
    aligned = aligned_mass(columns, phrase_sentiment)
    rows = np.arange(columns.num_entities)
    best = similarities.argmax(axis=1)
    denominators = columns.unmatched + columns.totals
    unmatched_fractions = np.where(
        denominators > 0.0,
        columns.unmatched / np.where(denominators > 0.0, denominators, 1.0),
        0.0,
    )
    return np.column_stack(
        [
            np.log1p(columns.totals),
            aligned,
            mass,
            columns.fractions[rows, best],
            similarities[rows, best],
            columns.average_sentiments[rows, best],
            columns.overall_sentiments,
            np.full(columns.num_entities, phrase_sentiment),
            phrase_sentiment * columns.overall_sentiments,
            unmatched_fractions,
            np.einsum("em,em->e", columns.fractions, columns.average_sentiments),
            (columns.totals == 0.0).astype(np.float64),
        ]
    )


# --------------------------------------------------------------------------
# Score bounds (per-slice summaries powering threshold-style top-k pruning)
# --------------------------------------------------------------------------

#: Absolute safety margin folded into every score *upper* bound before a
#: prune decision.  Bound arithmetic orders floating-point operations
#: differently from the exact kernels, so a mathematically-tight bound can
#: land a few ulps below the exact value; the margin absorbs that without
#: giving up measurable pruning power (real score gaps between entities are
#: orders of magnitude larger).
PRUNE_MARGIN = 1e-9


@dataclass
class ScoreBounds:
    """Per-entity bound ingredients for one attribute's column arrays.

    Built once per ``data_version`` alongside :class:`AttributeColumns` and
    invalidated on the same contract, these summaries let a membership
    function compute a sound ``[lo, hi]`` envelope of its exact degree for
    *every* entity without touching the E×M×D centroid tensor at query
    time:

    * ``deviations`` — E×M matrix of ``‖centroid_unit − name_unit‖₂``
      (zero where an entity has no phrases for the marker): by
      Cauchy–Schwarz against a unit phrase vector, the phrase–centroid
      cosine is within ``deviations`` of the phrase–name cosine, which is
      shared by all entities and costs one M×D GEMV;
    * ``fraction_peaks`` / ``fraction_mins`` — per-row extrema of the
      marker-fraction matrix (the peak doubles as the ISSUE-level "max
      marker fraction" slice cap);
    * ``sentiment_mins`` / ``sentiment_maxs`` — per-row extrema of the
      average-sentiment matrix;
    * ``max_fraction`` / ``max_abs_sentiment`` — scalar caps over the whole
      slice, the cheapest possible "can anything here still matter?" test.

    ``slice`` / ``narrowed`` mirror :func:`slice_view` / :func:`gather_rows`
    so the sharded, RPC and cluster layers can bound exactly the rows a
    request ships.
    """

    columns: AttributeColumns
    deviations: np.ndarray  # (E, M)
    fraction_peaks: np.ndarray  # (E,)
    fraction_mins: np.ndarray  # (E,)
    sentiment_mins: np.ndarray  # (E,)
    sentiment_maxs: np.ndarray  # (E,)
    max_fraction: float
    max_abs_sentiment: float

    @property
    def num_entities(self) -> int:
        """Number of entity rows the bounds cover."""
        return self.columns.num_entities

    @classmethod
    def of_columns(cls, columns: AttributeColumns) -> "ScoreBounds":
        """Build bound summaries for ``columns`` (one pass over the arrays)."""
        num_entities, num_markers = columns.num_entities, columns.num_markers
        if columns.dimension and num_markers:
            deviations = np.linalg.norm(
                columns.centroids_unit - columns.name_units[np.newaxis, :, :],
                axis=-1,
            )
            # A zero centroid scores cosine 0, never name-similarity ± 1:
            # its true similarity is exactly the name similarity floor, so
            # deviation 0 is both sound and maximally tight there.
            empty_centroids = (
                np.linalg.norm(columns.centroids_unit, axis=-1) == 0.0
            )
            deviations = np.where(empty_centroids, 0.0, deviations)
        else:
            deviations = np.zeros((num_entities, num_markers))
        if num_markers and num_entities:
            fraction_peaks = columns.fractions.max(axis=1)
            fraction_mins = columns.fractions.min(axis=1)
            sentiment_mins = columns.average_sentiments.min(axis=1)
            sentiment_maxs = columns.average_sentiments.max(axis=1)
        else:
            fraction_peaks = np.zeros(num_entities)
            fraction_mins = np.zeros(num_entities)
            sentiment_mins = np.zeros(num_entities)
            sentiment_maxs = np.zeros(num_entities)
        return cls(
            columns=columns,
            deviations=deviations,
            fraction_peaks=fraction_peaks,
            fraction_mins=fraction_mins,
            sentiment_mins=sentiment_mins,
            sentiment_maxs=sentiment_maxs,
            max_fraction=float(fraction_peaks.max(initial=0.0)),
            max_abs_sentiment=max(
                float(np.abs(sentiment_mins).max(initial=0.0)),
                float(np.abs(sentiment_maxs).max(initial=0.0)),
            ),
        )

    def _restrict(self, columns: AttributeColumns, index) -> "ScoreBounds":
        fraction_peaks = self.fraction_peaks[index]
        sentiment_mins = self.sentiment_mins[index]
        sentiment_maxs = self.sentiment_maxs[index]
        return ScoreBounds(
            columns=columns,
            deviations=self.deviations[index],
            fraction_peaks=fraction_peaks,
            fraction_mins=self.fraction_mins[index],
            sentiment_mins=sentiment_mins,
            sentiment_maxs=sentiment_maxs,
            max_fraction=float(fraction_peaks.max(initial=0.0)),
            max_abs_sentiment=max(
                float(np.abs(sentiment_mins).max(initial=0.0)),
                float(np.abs(sentiment_maxs).max(initial=0.0)),
            ),
        )

    def slice(self, start: int, stop: int) -> "ScoreBounds":
        """Bounds of the contiguous row range ``[start, stop)`` (views)."""
        return self._restrict(
            slice_view(self.columns, start, stop), np.s_[start:stop]
        )

    def narrowed(self, rows: "list[int]") -> "ScoreBounds":
        """Bounds of a row gather restricted to ``rows``."""
        return self._restrict(
            gather_rows(self.columns, list(rows)),
            np.asarray(rows, dtype=np.intp),
        )


def similarity_mass_bounds(
    bounds: ScoreBounds, phrase_vector: "np.ndarray | None"
) -> "tuple[np.ndarray, np.ndarray]":
    """Sound per-entity ``[lo, hi]`` envelope of :func:`similarity_mass`.

    The exact mass needs the E×M×D centroid tensor; the envelope needs only
    the shared phrase–name similarities (one M×D GEMV) and the precomputed
    centroid deviations: every marker similarity ``s`` satisfies
    ``name_sim ≤ s ≤ name_sim + deviation`` (the max of two cosines is at
    least the name cosine; Cauchy–Schwarz caps the centroid cosine from
    above).  Squared-positive masses are then bracketed per marker, and the
    normalized expectation is bracketed by the ratio of the bracketed sums.
    Where centroids coincide with marker names (deviation 0) the envelope
    collapses to the exact value up to :data:`PRUNE_MARGIN`.
    """
    columns = bounds.columns
    num_entities = columns.num_entities
    neutral_everywhere = (
        np.full(num_entities, 0.5),
        np.full(num_entities, 0.5),
    )
    if (
        phrase_vector is None
        or columns.dimension == 0
        or columns.num_markers == 0
    ):
        return neutral_everywhere
    norm = float(np.linalg.norm(phrase_vector))
    if norm == 0.0:
        return neutral_everywhere
    unit = phrase_vector / norm
    name_similarities = columns.name_units @ unit  # (M,)
    positives_lo = np.clip(name_similarities, 0.0, None) ** 2  # (M,)
    positives_hi = (
        np.clip(name_similarities[np.newaxis, :] + bounds.deviations, 0.0, None)
        ** 2
    )  # (E, M)
    lo_sum = float(positives_lo.sum())
    hi_sums = positives_hi.sum(axis=1)  # (E,)
    numerator_hi = np.einsum("em,em->e", positives_hi, columns.fractions)
    numerator_lo = columns.fractions @ positives_lo  # (E,)
    # Upper bound on the normalized expectation: it is a weighted average of
    # fractions over the (unknown) positive-similarity support, so it can
    # never exceed the largest fraction with a possibly-positive mass; when
    # the phrase is certainly similarity-positive the hi/lo sum ratio is a
    # second, usually tighter cap.
    expected_hi = np.where(
        positives_hi > 0.0, columns.fractions, 0.0
    ).max(axis=1, initial=0.0)
    if lo_sum > 0.0:
        expected_hi = np.minimum(expected_hi, numerator_hi / lo_sum)
    safe_hi_sums = np.where(hi_sums > 0.0, hi_sums, 1.0)
    expected_lo = np.where(hi_sums > 0.0, numerator_lo / safe_hi_sums, 0.0)
    denominators = bounds.fraction_peaks + 1e-9
    hi = np.minimum(1.0, expected_hi / denominators + PRUNE_MARGIN)
    lo = np.maximum(0.0, np.minimum(1.0, expected_lo / denominators) - PRUNE_MARGIN)
    if lo_sum <= 0.0:
        # The phrase is not certainly similarity-positive: any row may fall
        # back to the 0.5 neutral prior, so the envelope must include it.
        hi = np.maximum(hi, 0.5)
        lo = np.minimum(lo, 0.5)
    certainly_neutral = (hi_sums <= 0.0) | (columns.totals == 0.0)
    hi = np.where(certainly_neutral, 0.5, hi)
    lo = np.where(certainly_neutral, 0.5, lo)
    return lo, hi


def bounded_pair_degrees(
    membership: "MembershipFunction",
    columns: AttributeColumns,
    bounds: ScoreBounds,
    phrase: str,
    threshold: float,
) -> "tuple[np.ndarray, np.ndarray, int, int] | None":
    """Threshold-pruned degrees of one phrase over all rows of ``columns``.

    The membership's :meth:`degree_bounds` envelope is evaluated first (no
    centroid tensor touched); rows whose upper bound falls below
    ``threshold`` are *pruned* — their exact degree provably cannot reach
    the current k-th score on any AND-path, so the returned value is the
    upper bound itself and the exact kernel never sees them.  Surviving
    rows are scored exactly (through a row gather when they are sparse), so
    every returned exact value is bit-identical to the unpruned kernel.

    Returns ``(values, exact_mask, scored, pruned)`` — ``scored`` counts
    rows the exact kernel evaluated, ``pruned`` the bound-only rows — or
    ``None`` when the membership exposes no usable bound envelope (callers
    fall back to full scoring).  When every bound clears the threshold the
    call degrades gracefully to one exact kernel pass; when none does (the
    slice-cap case) the kernel is skipped entirely.
    """
    degree_bounds = getattr(membership, "degree_bounds", None)
    kernel = getattr(membership, "degrees_columnar", None)
    if degree_bounds is None or kernel is None:
        return None
    envelope = degree_bounds(bounds, phrase)
    if envelope is None:
        return None
    _, upper = envelope
    survivors = np.flatnonzero(upper >= threshold)
    values = np.array(upper, dtype=np.float64, copy=True)
    exact_mask = np.zeros(columns.num_entities, dtype=bool)
    if survivors.size:
        if survivors.size * 4 < columns.num_entities:
            gathered = gather_rows(columns, survivors.tolist())
            values[survivors] = kernel(gathered, phrase)
        else:
            values[survivors] = kernel(columns, phrase)[survivors]
        exact_mask[survivors] = True
    scored = int(survivors.size)
    pruned = int(columns.num_entities - survivors.size)
    return values, exact_mask, scored, pruned


# --------------------------------------------------------------------------
# Shared scoring plumbing (used by the store and the sharded store)
# --------------------------------------------------------------------------

def columnar_kernel(membership: "MembershipFunction", database: "SubjectiveDatabase"):
    """The membership's columnar kernel, or ``None`` when it cannot be used.

    A kernel is usable only when the membership function exposes one *and*
    scores with the same embedder the column arrays were built from; any
    other combination must take the scalar path to keep results identical.
    """
    kernel = getattr(membership, "degrees_columnar", None)
    if kernel is None:
        return None
    if getattr(membership, "embedder", None) is not database.phrase_embedder:
        return None
    return kernel


def gather_degrees(
    batch: np.ndarray | None,
    rows: "list[int | None]",
    entity_ids: Sequence[Hashable],
    fallback,
) -> list[float]:
    """Per-entity degree list from a batch vector plus a scalar fallback.

    When every requested entity is resident (the common case) the gather is
    one fancy-index + ``tolist`` — no per-entity Python loop; otherwise
    absent entities are scored through ``fallback`` one by one.
    """
    if batch is not None and None not in rows:
        return batch[np.fromiter(rows, dtype=np.intp, count=len(rows))].tolist()
    degrees: list[float] = []
    for entity_id, row in zip(entity_ids, rows):
        if row is not None:
            degrees.append(float(batch[row]))
        else:
            degrees.append(fallback(entity_id))
    return degrees


def scalar_fallback_scorer(
    membership: "MembershipFunction",
    database: "SubjectiveDatabase",
    attribute: str,
    phrase: str,
    columns: AttributeColumns,
):
    """Per-entity scorer for entities absent from the columns.

    A context-capable membership shares one phrase context — primed from the
    store's marker-name matrix — across all absent entities; otherwise each
    entity pays a full scalar :meth:`MembershipFunction.degree`.
    """
    make_context = getattr(membership, "context_for", None)
    context_degree = getattr(membership, "context_degree", None)
    context: list = []  # lazily built so cache-warm calls never pay for it

    def score(entity_id: Hashable) -> float:
        """Scalar degree of one absent-from-columns entity."""
        summary = database.marker_summary(entity_id, attribute)
        if make_context is not None and context_degree is not None:
            if not context:
                primed = make_context(phrase)
                primed.prime_name_similarities(columns)
                context.append(primed)
            return float(context_degree(summary, context[0]))
        return float(membership.degree(summary, phrase))

    return score


# --------------------------------------------------------------------------
# The store
# --------------------------------------------------------------------------

class ColumnarSummaryStore:
    """Lazily built per-attribute column arrays over a subjective database.

    Columns are built on first use per attribute and dropped whenever
    :attr:`SubjectiveDatabase.data_version` moves (the same invalidation
    protocol as the serving-layer caches), so they can never serve degrees
    computed from stale summaries.
    """

    def __init__(self, database: "SubjectiveDatabase") -> None:
        self.database = database
        self._columns: dict[str, AttributeColumns | None] = {}
        self._bounds: dict[str, ScoreBounds | None] = {}
        self._envelopes: dict[
            tuple[str, str], "tuple[np.ndarray, np.ndarray] | None"
        ] = {}
        self._envelope_membership: object | None = None
        self._version = database.data_version
        self.builds = 0
        self.invalidations = 0

    # ------------------------------------------------------------ lifecycle
    def invalidate(self) -> None:
        """Drop every built column set and resnapshot the data version."""
        self._columns.clear()
        self._bounds.clear()
        self._envelopes.clear()
        self._envelope_membership = None
        self._version = self.database.data_version
        self.invalidations += 1

    def _check_version(self) -> None:
        if self._version != self.database.data_version:
            self.invalidate()

    @property
    def data_version(self) -> int:
        """The database version the current columns were built against."""
        return self._version

    def columns(self, attribute: str) -> AttributeColumns | None:
        """Column arrays of one attribute (``None`` when it has no summaries)."""
        self._check_version()
        if attribute not in self._columns:
            built = self._build(attribute)
            self._columns[attribute] = built
            if built is not None:
                self.builds += 1
        return self._columns[attribute]

    def score_bounds(
        self,
        attribute: str,
        start: "int | None" = None,
        stop: "int | None" = None,
    ) -> "ScoreBounds | None":
        """Bound summaries of one attribute (``None`` without columns).

        Built lazily from the attribute's columns and cached under the same
        ``data_version`` contract: any ingest drops columns and bounds
        together, so a stale bound can never justify a prune.  Pass
        ``start`` / ``stop`` to get the bounds of one contiguous slice —
        the per-slice view the sharded, RPC and cluster layers request.
        """
        self._check_version()
        if attribute not in self._bounds:
            columns = self.columns(attribute)
            self._bounds[attribute] = (
                ScoreBounds.of_columns(columns) if columns is not None else None
            )
        bounds = self._bounds[attribute]
        if bounds is not None and start is not None:
            end = bounds.num_entities if stop is None else stop
            return bounds.slice(start, end)
        return bounds

    def degree_envelope(
        self,
        membership: "MembershipFunction",
        attribute: str,
        phrase: str,
    ) -> "tuple[np.ndarray, np.ndarray] | None":
        """Cached whole-store ``[lo, hi]`` degree envelope of one condition.

        The envelope is elementwise per row, so one evaluation over the
        whole store serves every later subset request as a plain array
        gather — the pruned scan's chunks stop paying the phrase-level
        bound arithmetic per chunk.  (The store-wide similarity caps make
        the cached envelope at most *wider* than a per-slice one, which is
        sound: pruning only ever consults ``hi`` as an upper bound.)
        Cached under the same ``data_version`` contract as the columns and
        bounds; re-keyed when a different membership function shows up.
        """
        self._check_version()
        if self._envelope_membership is not membership:
            self._envelopes.clear()
            self._envelope_membership = membership
        key = (attribute, phrase)
        if key not in self._envelopes:
            degree_bounds = getattr(membership, "degree_bounds", None)
            bounds = self.score_bounds(attribute)
            self._envelopes[key] = (
                degree_bounds(bounds, phrase)
                if degree_bounds is not None and bounds is not None
                else None
            )
        return self._envelopes[key]

    # -------------------------------------------------------------- scoring
    def pair_degrees(
        self,
        membership: "MembershipFunction",
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
    ) -> list[float] | None:
        """Degrees of one ``A ≐ m`` condition for many entities, columnar.

        Returns ``None`` when the store cannot reproduce the scalar path
        exactly — the membership function has no columnar kernel, it scores
        with a different embedder than the one the column arrays were built
        from, or the attribute has no columns — and callers then run the
        scalar batch path.  Entities absent from the columns — no stored
        summary, or a summary that does not conform to the schema markers —
        fall back to per-entity scalar scoring, so results cover every
        requested id.

        When the requested resident ids are a small slice of the columns
        (fewer than a quarter of the rows), the kernel runs over a row
        gather of just those entities instead of all E: every kernel is
        row-independent, so the gathered pass computes the same per-entity
        arithmetic while a mostly-warm serving cache missing a handful of
        entities stops paying for the whole store.
        """
        kernel = columnar_kernel(membership, self.database)
        if kernel is None:
            return None
        columns = self.columns(attribute)
        if columns is None:
            return None
        rows = [columns.row_of.get(entity_id) for entity_id in entity_ids]
        resident = sorted({row for row in rows if row is not None})
        batch: np.ndarray | None = None
        if resident:
            if len(resident) * 4 < columns.num_entities:
                sliced = gather_rows(columns, resident)
                partial = kernel(sliced, phrase)
                batch = np.empty(columns.num_entities)
                batch[resident] = partial
            else:
                batch = kernel(columns, phrase)
        return gather_degrees(
            batch,
            rows,
            entity_ids,
            scalar_fallback_scorer(membership, self.database, attribute, phrase, columns),
        )

    def pair_degrees_bounded(
        self,
        membership: "MembershipFunction",
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
        threshold: float,
    ) -> "tuple[np.ndarray, np.ndarray, int, int] | None":
        """Threshold-pruned degrees of one ``A ≐ m`` condition.

        The pruning counterpart of :meth:`pair_degrees`: entities whose
        bound envelope proves they cannot reach ``threshold`` are returned
        as upper bounds (``exact_mask`` False) without running the exact
        kernel; every other entity's value is bit-identical to the unpruned
        path.  Returns ``(values, exact_mask, scored, pruned)`` aligned
        with ``entity_ids``, or ``None`` whenever the exactness contract
        cannot be kept cheaply — no columnar kernel, no bound envelope, no
        columns, or any requested entity absent from the columns (the
        scalar fallback has no bound story, so callers take the full path).
        """
        kernel = columnar_kernel(membership, self.database)
        if kernel is None or getattr(membership, "degree_bounds", None) is None:
            return None
        columns = self.columns(attribute)
        if columns is None:
            return None
        rows = [columns.row_of.get(entity_id) for entity_id in entity_ids]
        if any(row is None for row in rows):
            return None
        envelope = self.degree_envelope(membership, attribute, phrase)
        if envelope is None:
            return None
        _, upper = envelope
        index = np.fromiter(rows, dtype=np.intp, count=len(rows))
        values = np.array(upper[index], dtype=np.float64, copy=True)
        requested_exact = values >= threshold
        survivors = np.flatnonzero(requested_exact)
        if survivors.size:
            resident = sorted({rows[position] for position in survivors.tolist()})
            if len(resident) * 4 < columns.num_entities:
                gathered = gather_rows(columns, resident)
                batch = np.empty(columns.num_entities)
                batch[resident] = kernel(gathered, phrase)
            else:
                batch = kernel(columns, phrase)
            values[survivors] = batch[index[survivors]]
        # Counters cover the *requested* entities, not the kernel's internal
        # view (the dense branch may score extra resident rows): that keeps
        # ``entities_scored`` directly comparable with the unpruned path,
        # which counts cache misses per requested entity.
        scored = int(survivors.size)
        return (
            values,
            requested_exact,
            scored,
            int(index.size - scored),
        )

    def pair_degree_envelope(
        self,
        membership: "MembershipFunction",
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
    ) -> "tuple[np.ndarray, np.ndarray] | None":
        """``[lo, hi]`` degree envelope of one condition for many entities.

        A pure array gather out of the cached whole-store envelope — no
        exact kernel, no caches touched — so callers can screen whole
        candidate chunks against a threshold before spending any per-entity
        work on them.  ``None`` under the same conditions as
        :meth:`pair_degrees_bounded` (no kernel, no bound support, no
        columns, or a non-resident entity).
        """
        if columnar_kernel(membership, self.database) is None:
            return None
        columns = self.columns(attribute)
        if columns is None:
            return None
        rows = [columns.row_of.get(entity_id) for entity_id in entity_ids]
        if any(row is None for row in rows):
            return None
        envelope = self.degree_envelope(membership, attribute, phrase)
        if envelope is None:
            return None
        lower, upper = envelope
        index = np.fromiter(rows, dtype=np.intp, count=len(rows))
        return lower[index], upper[index]

    # ------------------------------------------------------------- building
    def _build(self, attribute: str) -> AttributeColumns | None:
        summaries = self.database.summaries_for_attribute(attribute)
        if not summaries:
            return None
        try:
            reference = list(self.database.schema.subjective(attribute).markers)
        except SchemaError:
            reference = list(next(iter(summaries.values())).markers)

        entity_ids = [
            entity_id
            for entity_id, summary in summaries.items()
            if summary.markers == reference
        ]
        if not entity_ids:
            return None
        num_entities = len(entity_ids)
        num_markers = len(reference)

        fractions = np.empty((num_entities, num_markers))
        average_sentiments = np.empty((num_entities, num_markers))
        totals = np.empty(num_entities)
        unmatched = np.empty(num_entities)
        overall_sentiments = np.empty(num_entities)

        embedder = self.database.phrase_embedder
        dimension = embedder.dimension if embedder is not None else 0
        centroids = np.zeros((num_entities, num_markers, dimension))

        for row, entity_id in enumerate(entity_ids):
            summary = summaries[entity_id]
            arrays = summary.arrays()
            fractions[row] = arrays.fractions
            average_sentiments[row] = arrays.average_sentiments
            totals[row] = arrays.total
            unmatched[row] = summary.num_unmatched
            overall_sentiments[row] = summary.overall_sentiment()
            if dimension:
                centroids[row] = summary.vector_matrix(dimension)

        if dimension:
            name_vectors = np.vstack(
                [embedder.represent(marker.name) for marker in reference]
            )
        else:
            name_vectors = np.zeros((num_markers, 0))

        return AttributeColumns(
            attribute=attribute,
            entity_ids=entity_ids,
            row_of={entity_id: row for row, entity_id in enumerate(entity_ids)},
            markers=reference,
            marker_sentiments=np.array([marker.sentiment for marker in reference]),
            fractions=fractions,
            average_sentiments=average_sentiments,
            totals=totals,
            unmatched=unmatched,
            overall_sentiments=overall_sentiments,
            centroids_unit=_unit_rows(centroids) if dimension else centroids,
            name_units=_unit_rows(name_vectors) if dimension else name_vectors,
        )

    # ------------------------------------------------------------ statistics
    def stats_snapshot(self) -> dict[str, object]:
        """Build/invalidation counters plus the currently resident columns."""
        return {
            "data_version": self._version,
            "builds": self.builds,
            "invalidations": self.invalidations,
            "attributes": {
                name: (columns.num_entities if columns is not None else 0)
                for name, columns in self._columns.items()
            },
        }
