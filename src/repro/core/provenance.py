"""Provenance of marker summaries: which extracted phrases produced them.

Section 4.2.2 notes that any query result can be supported with evidence
from the reviews because OpineDB tracks the provenance of extracted phrases.
The store maps ``(entity, attribute, marker)`` to the extraction ids that
were aggregated into that cell of the marker summary, so results can be
explained by pointing back to concrete review sentences.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable


@dataclass
class ProvenanceStore:
    """Maps marker-summary cells back to the extraction ids behind them."""

    _by_cell: dict[tuple[Hashable, str, str], list[int]] = field(
        default_factory=lambda: defaultdict(list)
    )
    _by_entity_attribute: dict[tuple[Hashable, str], list[int]] = field(
        default_factory=lambda: defaultdict(list)
    )

    def record(
        self,
        entity_id: Hashable,
        attribute: str,
        marker: str,
        extraction_id: int,
    ) -> None:
        """Register that ``extraction_id`` contributed to (entity, attribute, marker)."""
        self._by_cell[(entity_id, attribute, marker)].append(extraction_id)
        self._by_entity_attribute[(entity_id, attribute)].append(extraction_id)

    def extractions_for_marker(
        self, entity_id: Hashable, attribute: str, marker: str
    ) -> list[int]:
        """Extraction ids aggregated into one marker cell (possibly empty)."""
        return list(self._by_cell.get((entity_id, attribute, marker), ()))

    def extractions_for_attribute(
        self, entity_id: Hashable, attribute: str
    ) -> list[int]:
        """All extraction ids aggregated for (entity, attribute)."""
        return list(self._by_entity_attribute.get((entity_id, attribute), ()))

    def clear(self) -> None:
        """Drop all provenance records (used when summaries are rebuilt)."""
        self._by_cell.clear()
        self._by_entity_attribute.clear()
