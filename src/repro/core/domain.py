"""Linguistic domains: the sets of phrases describing one subjective aspect.

A linguistic domain (Section 2) is a set of short phrases ("linguistic
variations") that describe a particular aspect of an object, e.g. for room
cleanliness: {"very clean", "spotless", "average", "dirty", "stained
carpet", ...}.  OpineDB bootstraps linguistic domains from the extraction
pipeline rather than enumerating them in advance; this class therefore keeps
per-phrase occurrence counts so the marker-discovery step can weight frequent
variations more heavily.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.text.tokenize import tokenize


def normalise_phrase(phrase: str) -> str:
    """Canonical form of a phrase: lowercased, token-joined."""
    return " ".join(tokenize(phrase))


@dataclass
class LinguisticDomain:
    """The set of linguistic variations observed for one subjective attribute.

    Parameters
    ----------
    attribute:
        Name of the subjective attribute the domain describes
        (e.g. ``"room_cleanliness"``).
    """

    attribute: str
    _counts: Counter = field(default_factory=Counter)

    def add(self, phrase: str, count: int = 1) -> str:
        """Register ``count`` occurrences of ``phrase``; returns its canonical form."""
        if count < 1:
            raise ValueError("count must be positive")
        canonical = normalise_phrase(phrase)
        if canonical:
            self._counts[canonical] += count
        return canonical

    def add_many(self, phrases: Iterable[str]) -> None:
        """Register one occurrence of each phrase."""
        for phrase in phrases:
            self.add(phrase)

    def __contains__(self, phrase: str) -> bool:
        return normalise_phrase(phrase) in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def count(self, phrase: str) -> int:
        """Number of times ``phrase`` was observed."""
        return self._counts.get(normalise_phrase(phrase), 0)

    @property
    def phrases(self) -> list[str]:
        """All variations, most frequent first (ties broken lexically)."""
        return [
            phrase
            for phrase, _count in sorted(
                self._counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]

    def most_common(self, n: int | None = None) -> list[tuple[str, int]]:
        """The ``n`` most frequent (phrase, count) pairs."""
        return Counter(self._counts).most_common(n)

    def total_occurrences(self) -> int:
        """Total number of phrase occurrences registered."""
        return sum(self._counts.values())

    def merge(self, other: "LinguisticDomain") -> "LinguisticDomain":
        """Return a new domain combining the counts of ``self`` and ``other``."""
        if self.attribute != other.attribute:
            raise ValueError(
                "cannot merge linguistic domains of different attributes: "
                f"{self.attribute!r} vs {other.attribute!r}"
            )
        merged = LinguisticDomain(self.attribute)
        merged._counts = Counter(self._counts)
        merged._counts.update(other._counts)
        return merged
