"""The subjective database container.

A :class:`SubjectiveDatabase` materialises the three schema layers of
Section 2 on top of the relational engine:

1. the **main schema** — an entity table with the objective attributes plus
   one relation per subjective attribute holding that attribute's marker
   summary for every entity;
2. the **raw review data** — a reviews table, so queries can qualify the
   reviews considered (e.g. only prolific reviewers) and the system can fall
   back to raw text;
3. the **extraction relation** — every (aspect term, opinion term) pair the
   extractor produced, with its attribute/marker assignment, sentiment, and
   provenance.

It also owns the text models shared by query processing: the phrase
embedder (word2vec + IDF), the sentiment analyzer, a review-level BM25 index
(for the co-occurrence interpreter) and an entity-level BM25 index over the
concatenation of each entity's reviews (for the text-retrieval fallback and
the IR baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping

import numpy as np

from repro.core.attributes import SubjectiveAttribute, SubjectiveSchema
from repro.core.markers import MarkerSummary
from repro.core.provenance import ProvenanceStore
from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import ColumnType
from repro.errors import SchemaError
from repro.text.bm25 import Bm25Index
from repro.text.embeddings import PhraseEmbedder, PpmiSvdEmbeddings
from repro.text.idf import DocumentFrequencies
from repro.text.sentiment import SentimentAnalyzer
from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class EntityRecord:
    """One entity (hotel, restaurant, ...) with its objective attribute values."""

    entity_id: Hashable
    objective: Mapping[str, object]

    def value(self, attribute: str) -> object:
        return self.objective.get(attribute)


@dataclass(frozen=True)
class ReviewRecord:
    """One user review of an entity."""

    review_id: int
    entity_id: Hashable
    text: str
    reviewer_id: str = ""
    rating: float | None = None
    year: int | None = None
    helpful_votes: int = 0


@dataclass(frozen=True)
class ExtractionRecord:
    """One extracted opinion: an (aspect term, opinion term) pair with metadata."""

    extraction_id: int
    entity_id: Hashable
    review_id: int
    sentence: str
    aspect_term: str
    opinion_term: str
    attribute: str
    marker: str | None
    sentiment: float

    @property
    def phrase(self) -> str:
        """The concatenated opinion phrase ("opinion aspect"), e.g. "very clean room"."""
        return f"{self.opinion_term} {self.aspect_term}".strip()


ReviewFilter = Callable[[ReviewRecord], bool]


class SubjectiveDatabase:
    """Entities + reviews + extractions + marker summaries + text models."""

    def __init__(
        self,
        schema: SubjectiveSchema,
        embedding_dimension: int = 48,
        sentiment: SentimentAnalyzer | None = None,
    ) -> None:
        self.schema = schema
        self.embedding_dimension = embedding_dimension
        self.sentiment = sentiment or SentimentAnalyzer()
        self.engine = Database(schema.name)
        self._create_engine_tables()

        self._entities: dict[Hashable, EntityRecord] = {}
        self._reviews: dict[int, ReviewRecord] = {}
        self._reviews_by_entity: dict[Hashable, list[int]] = {}
        self._extractions: dict[int, ExtractionRecord] = {}
        self._extractions_by_review: dict[int, list[int]] = {}
        self._extractions_by_entity_attribute: dict[tuple[Hashable, str], list[int]] = {}
        self._summaries: dict[tuple[Hashable, str], MarkerSummary] = {}
        self._variation_marker: dict[tuple[str, str], str] = {}
        self.provenance = ProvenanceStore()

        self.phrase_embedder: PhraseEmbedder | None = None
        self.review_index: Bm25Index | None = None
        self.entity_index: Bm25Index | None = None
        self._next_extraction_id = 0
        self._data_version = 0

        # Installed by repro.storage.open_database: a lazy materialiser for
        # persisted marker summaries and a factory producing the mmap-backed
        # columnar store.  Both stay None for purely in-RAM databases.
        self._summary_loader = None
        self._store_factory: Callable[["SubjectiveDatabase"], object] | None = None

    # --------------------------------------------------------- change tracking
    @property
    def data_version(self) -> int:
        """Monotonic counter bumped by every ingest or model (re)build.

        Serving-layer caches (query plans, membership degrees) snapshot this
        value and drop their contents when it moves, so cached results can
        never outlive the data that produced them.
        """
        return self._data_version

    def _bump_version(self) -> None:
        self._data_version += 1

    # ----------------------------------------------------------- engine DDL
    def _create_engine_tables(self) -> None:
        key = self.schema.entity_key
        entity_columns = [Column(key, ColumnType.TEXT, nullable=False)]
        for attribute in self.schema.objective_attributes:
            entity_columns.append(Column(attribute.name, attribute.type))
        self.engine.create_table(
            TableSchema(name="entities", columns=entity_columns, key=key)
        )
        self.engine.create_table(
            TableSchema(
                name="reviews",
                key="review_id",
                columns=[
                    Column("review_id", ColumnType.INTEGER, nullable=False),
                    Column(key, ColumnType.TEXT, nullable=False),
                    Column("text", ColumnType.TEXT),
                    Column("reviewer_id", ColumnType.TEXT),
                    Column("rating", ColumnType.FLOAT),
                    Column("year", ColumnType.INTEGER),
                    Column("helpful_votes", ColumnType.INTEGER),
                ],
            )
        )
        self.engine.create_table(
            TableSchema(
                name="extractions",
                key="extraction_id",
                columns=[
                    Column("extraction_id", ColumnType.INTEGER, nullable=False),
                    Column(key, ColumnType.TEXT, nullable=False),
                    Column("review_id", ColumnType.INTEGER),
                    Column("aspect_term", ColumnType.TEXT),
                    Column("opinion_term", ColumnType.TEXT),
                    Column("attribute", ColumnType.TEXT),
                    Column("marker", ColumnType.TEXT),
                    Column("sentiment", ColumnType.FLOAT),
                ],
            )
        )
        for attribute in self.schema.subjective_attributes:
            self._create_summary_table(attribute)

    def _create_summary_table(self, attribute: SubjectiveAttribute) -> None:
        key = self.schema.entity_key
        self.engine.create_table(
            TableSchema(
                name=attribute.relation_name,
                key=key,
                columns=[
                    Column(key, ColumnType.TEXT, nullable=False),
                    Column(attribute.name, ColumnType.SUMMARY),
                ],
            )
        )

    # ------------------------------------------------------------- entities
    def add_entity(self, entity_id: Hashable, objective: Mapping[str, object] | None = None) -> EntityRecord:
        """Register an entity with its objective attribute values."""
        if entity_id in self._entities:
            raise SchemaError(f"entity already exists: {entity_id!r}")
        objective = dict(objective or {})
        record = EntityRecord(entity_id=entity_id, objective=objective)
        self._entities[entity_id] = record
        self._reviews_by_entity[entity_id] = []
        row = {self.schema.entity_key: str(entity_id)}
        for attribute in self.schema.objective_attributes:
            row[attribute.name] = objective.get(attribute.name)
        self.engine.table("entities").insert(row)
        self._bump_version()
        return record

    def entities(self) -> list[EntityRecord]:
        """All registered entities, in insertion order."""
        return list(self._entities.values())

    def entity_ids(self) -> list[Hashable]:
        return list(self._entities)

    def entity(self, entity_id: Hashable) -> EntityRecord:
        try:
            return self._entities[entity_id]
        except KeyError:
            raise SchemaError(f"unknown entity: {entity_id!r}") from None

    def __len__(self) -> int:
        return len(self._entities)

    # -------------------------------------------------------------- reviews
    def add_review(self, review: ReviewRecord) -> None:
        """Register one review (its entity must exist)."""
        if review.entity_id not in self._entities:
            raise SchemaError(f"unknown entity for review: {review.entity_id!r}")
        if review.review_id in self._reviews:
            raise SchemaError(f"duplicate review id: {review.review_id!r}")
        self._reviews[review.review_id] = review
        self._reviews_by_entity[review.entity_id].append(review.review_id)
        self.engine.table("reviews").insert(
            {
                "review_id": review.review_id,
                self.schema.entity_key: str(review.entity_id),
                "text": review.text,
                "reviewer_id": review.reviewer_id,
                "rating": review.rating,
                "year": review.year,
                "helpful_votes": review.helpful_votes,
            }
        )
        self._bump_version()

    def add_reviews(self, reviews: Iterable[ReviewRecord]) -> int:
        count = 0
        for review in reviews:
            self.add_review(review)
            count += 1
        return count

    def reviews(self, entity_id: Hashable | None = None) -> list[ReviewRecord]:
        """All reviews, or the reviews of one entity."""
        if entity_id is None:
            return list(self._reviews.values())
        return [self._reviews[i] for i in self._reviews_by_entity.get(entity_id, ())]

    def review(self, review_id: int) -> ReviewRecord:
        try:
            return self._reviews[review_id]
        except KeyError:
            raise SchemaError(f"unknown review id: {review_id!r}") from None

    def num_reviews(self) -> int:
        return len(self._reviews)

    def entity_document(self, entity_id: Hashable) -> str:
        """All review text of an entity concatenated into one document.

        This is the representation used by the text-retrieval fallback and by
        the GZ12 IR baseline (following [17], each entity is a single
        document made of all its reviews).
        """
        return "\n".join(review.text for review in self.reviews(entity_id))

    # ---------------------------------------------------------- extractions
    def add_extraction(
        self,
        entity_id: Hashable,
        review_id: int,
        sentence: str,
        aspect_term: str,
        opinion_term: str,
        attribute: str,
        marker: str | None = None,
        sentiment: float | None = None,
    ) -> ExtractionRecord:
        """Register one extracted opinion and index it for lookups."""
        if entity_id not in self._entities:
            raise SchemaError(f"unknown entity for extraction: {entity_id!r}")
        if not self.schema.has_subjective(attribute):
            raise SchemaError(f"unknown subjective attribute: {attribute!r}")
        if sentiment is None:
            sentiment = self.sentiment.polarity(f"{opinion_term} {aspect_term}")
        record = ExtractionRecord(
            extraction_id=self._next_extraction_id,
            entity_id=entity_id,
            review_id=review_id,
            sentence=sentence,
            aspect_term=aspect_term,
            opinion_term=opinion_term,
            attribute=attribute,
            marker=marker,
            sentiment=sentiment,
        )
        self._next_extraction_id += 1
        self._extractions[record.extraction_id] = record
        self._extractions_by_review.setdefault(review_id, []).append(record.extraction_id)
        self._extractions_by_entity_attribute.setdefault(
            (entity_id, attribute), []
        ).append(record.extraction_id)
        self.engine.table("extractions").insert(
            {
                "extraction_id": record.extraction_id,
                self.schema.entity_key: str(entity_id),
                "review_id": review_id,
                "aspect_term": aspect_term,
                "opinion_term": opinion_term,
                "attribute": attribute,
                "marker": marker,
                "sentiment": sentiment,
            }
        )
        # The linguistic domain of the attribute grows with every extraction.
        self.schema.subjective(attribute).domain.add(record.phrase)
        self._bump_version()
        return record

    def extractions(
        self,
        entity_id: Hashable | None = None,
        attribute: str | None = None,
        review_id: int | None = None,
    ) -> list[ExtractionRecord]:
        """Extraction records filtered by entity, attribute and/or review."""
        if review_id is not None:
            ids = self._extractions_by_review.get(review_id, [])
            records = [self._extractions[i] for i in ids]
            if attribute is not None:
                records = [r for r in records if r.attribute == attribute]
            if entity_id is not None:
                records = [r for r in records if r.entity_id == entity_id]
            return records
        if entity_id is not None and attribute is not None:
            ids = self._extractions_by_entity_attribute.get((entity_id, attribute), [])
            return [self._extractions[i] for i in ids]
        records = list(self._extractions.values())
        if entity_id is not None:
            records = [r for r in records if r.entity_id == entity_id]
        if attribute is not None:
            records = [r for r in records if r.attribute == attribute]
        return records

    def extraction(self, extraction_id: int) -> ExtractionRecord:
        try:
            return self._extractions[extraction_id]
        except KeyError:
            raise SchemaError(f"unknown extraction id: {extraction_id!r}") from None

    def num_extractions(self) -> int:
        return len(self._extractions)

    # ----------------------------------------------------------- text models
    def fit_text_models(self, embedding_dimension: int | None = None) -> None:
        """Train the embeddings/IDF on the stored reviews and build BM25 indexes.

        Must be called after reviews are loaded and before query processing.
        """
        dimension = embedding_dimension or self.embedding_dimension
        review_texts = [review.text for review in self._reviews.values()]
        if not review_texts:
            raise SchemaError("cannot fit text models: no reviews loaded")
        embeddings = PpmiSvdEmbeddings(dimension=dimension, min_count=2).fit(review_texts)
        frequencies = DocumentFrequencies()
        frequencies.add_corpus([tokenize(text) for text in review_texts])
        self.phrase_embedder = PhraseEmbedder(embeddings, frequencies)
        self.rebuild_text_indexes()

    def rebuild_text_indexes(self) -> None:
        """(Re)build the review-level and entity-level BM25 indexes."""
        self.review_index = Bm25Index()
        for review in self._reviews.values():
            self.review_index.add_document(review.review_id, review.text)
        self.entity_index = Bm25Index()
        for entity_id in self._entities:
            self.entity_index.add_document(entity_id, self.entity_document(entity_id))
        self._bump_version()

    def phrase_vector(self, phrase: str) -> np.ndarray | None:
        """Embedding of a phrase, or ``None`` when text models are not fitted."""
        if self.phrase_embedder is None:
            return None
        return self.phrase_embedder.represent(phrase)

    # ------------------------------------------------------ marker summaries
    def set_variation_marker(self, attribute: str, variation: str, marker: str) -> None:
        """Record which marker a linguistic variation was assigned to."""
        self._variation_marker[(attribute, variation)] = marker
        self._bump_version()

    def variation_marker(self, attribute: str, variation: str) -> str | None:
        """Marker assigned to a linguistic variation (None if never aggregated)."""
        return self._variation_marker.get((attribute, variation))

    def all_variations(self) -> list[tuple[str, str]]:
        """All (attribute, variation) pairs across the linguistic domains."""
        pairs: list[tuple[str, str]] = []
        for attribute in self.schema.subjective_attributes:
            for phrase in attribute.domain.phrases:
                pairs.append((attribute.name, phrase))
        return pairs

    def store_summary(self, entity_id: Hashable, summary: MarkerSummary) -> None:
        """Store (or replace) the marker summary of (entity, attribute)."""
        if entity_id not in self._entities:
            raise SchemaError(f"unknown entity: {entity_id!r}")
        attribute = self.schema.subjective(summary.attribute)
        key = (entity_id, summary.attribute)
        is_new = key not in self._summaries
        self._summaries[key] = summary
        table = self.engine.table(attribute.relation_name)
        row = {
            self.schema.entity_key: str(entity_id),
            summary.attribute: summary.to_record(),
        }
        if is_new and table.get(str(entity_id)) is None:
            table.insert(row)
        else:
            table.update(str(entity_id), {summary.attribute: summary.to_record()})
        self._bump_version()

    def marker_summary(self, entity_id: Hashable, attribute: str) -> MarkerSummary | None:
        """The stored marker summary of (entity, attribute), or ``None``."""
        summary = self._summaries.get((entity_id, attribute))
        if summary is None and self._summary_loader is not None:
            self._summary_loader.load(entity_id, attribute)
            summary = self._summaries.get((entity_id, attribute))
        return summary

    def summaries_for_attribute(self, attribute: str) -> dict[Hashable, MarkerSummary]:
        """All stored summaries of one attribute, keyed by entity."""
        if self._summary_loader is not None:
            self._summary_loader.load_attribute(attribute)
        return {
            entity_id: summary
            for (entity_id, name), summary in self._summaries.items()
            if name == attribute
        }

    def clear_summaries(self) -> None:
        """Drop all marker summaries and their provenance (before a rebuild)."""
        self._summaries.clear()
        self._summary_loader = None  # a rebuild supersedes the persisted state
        self.provenance.clear()
        self._bump_version()

    # ------------------------------------------------------------ persistence
    def columnar_store(self) -> "object":
        """A columnar store over this database, honouring the storage tier.

        Databases opened from a storage directory return a
        :class:`~repro.storage.PersistentColumnarStore` serving zero-copy
        ``numpy.memmap`` views while the directory is current; in-RAM
        databases get an ordinary
        :class:`~repro.core.columnar.ColumnarSummaryStore`.  Every serving
        layer builds its base store through this method.
        """
        if self._store_factory is not None:
            return self._store_factory(self)
        from repro.core.columnar import ColumnarSummaryStore

        return ColumnarSummaryStore(self)

    def save(self, directory: str) -> None:
        """Persist the full database state under ``directory`` (storage tier)."""
        from repro.storage import save_database

        save_database(self, directory)

    @classmethod
    def open(cls, directory: str) -> "SubjectiveDatabase":
        """Boot a database from a storage directory written by :meth:`save`."""
        from repro.storage import open_database

        return open_database(directory)

    # ------------------------------------------------------------ provenance
    def explain(self, entity_id: Hashable, attribute: str, marker: str,
                limit: int = 5) -> list[ExtractionRecord]:
        """Evidence: the extraction records behind one marker-summary cell."""
        ids = self.provenance.extractions_for_marker(entity_id, attribute, marker)
        return [self._extractions[i] for i in ids[:limit]]

    # --------------------------------------------------------- review filters
    def filter_reviews(self, review_filter: ReviewFilter | None) -> list[ReviewRecord]:
        """Reviews passing ``review_filter`` (all reviews when it is ``None``).

        Query-time qualification of reviews (e.g. "only reviewers with at
        least 10 reviews", "reviews after 2010") re-aggregates summaries over
        this subset; see
        :meth:`repro.extraction.aggregation.SummaryAggregator.aggregate`.
        """
        reviews = list(self._reviews.values())
        if review_filter is None:
            return reviews
        return [review for review in reviews if review_filter(review)]

    def reviewer_review_counts(self) -> dict[str, int]:
        """Number of reviews written by each reviewer (for qualification filters)."""
        counts: dict[str, int] = {}
        for review in self._reviews.values():
            counts[review.reviewer_id] = counts.get(review.reviewer_id, 0) + 1
        return counts
