"""The subjective query interpreter (Section 3.2, Figure 5).

Given a natural-language query predicate ("has really clean rooms", "is a
romantic getaway"), the interpreter produces an *interpretation*: an
expression over ``A.m`` pairs (subjective attribute A, marker m), or a
decision to fall back to text retrieval.  Three methods are tried in order:

1. **word2vec method** — find the linguistic variation across all subjective
   attributes that is most similar to the predicate (IDF-weighted embedding
   cosine, Eqs. 1–2); if the best similarity clears the threshold θ1, the
   interpretation is that variation's attribute and marker.
2. **co-occurrence method** — retrieve the top-k *positive* reviews relevant
   to the predicate (ranking by ``BM25 · senti``, Eq. 3), collect the
   extractions appearing in them, score attributes by ``freq_k(A) · idf(A)``
   and return a disjunction (or conjunction, when the attributes co-occur in
   the same reviews) of the top-n attributes with their most frequent
   markers.  Used when the w2v similarity is below θ1; falls through when
   its own confidence is below θ2.
3. **text retrieval** — no schema interpretation; the processor scores
   entities by BM25 over their concatenated reviews.
"""

from __future__ import annotations

import enum
import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.core.database import SubjectiveDatabase
from repro.errors import InterpretationError
from repro.text.similarity import NearestPhraseIndex


class InterpretationMethod(enum.Enum):
    """Which of the three interpretation strategies produced the result."""

    WORD2VEC = "word2vec"
    COOCCURRENCE = "cooccurrence"
    TEXT_RETRIEVAL = "text_retrieval"


@dataclass(frozen=True)
class AttributeMarker:
    """One ``A.m`` pair: a subjective attribute and one of its markers."""

    attribute: str
    marker: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.attribute}.{self.marker!r}"


@dataclass(frozen=True)
class Interpretation:
    """The interpreter's output for one query predicate.

    ``pairs`` is empty exactly when ``method`` is TEXT_RETRIEVAL.
    ``combinator`` states how multiple pairs combine ("or" by default; "and"
    when the co-occurrence method finds the attributes mentioned together).
    ``confidence`` is the score that cleared (or failed) the thresholds and
    ``matched_variation`` records the linguistic variation that matched for
    the word2vec method (useful for explaining results).
    """

    predicate: str
    method: InterpretationMethod
    pairs: tuple[AttributeMarker, ...] = ()
    combinator: str = "or"
    confidence: float = 0.0
    matched_variation: str | None = None

    @property
    def is_schema_interpretation(self) -> bool:
        return self.method is not InterpretationMethod.TEXT_RETRIEVAL

    @property
    def top_attribute(self) -> str | None:
        """Attribute of the first (highest-scoring) pair, if any."""
        return self.pairs[0].attribute if self.pairs else None


@dataclass
class SubjectiveQueryInterpreter:
    """Three-stage predicate interpretation with fallback thresholds.

    Parameters
    ----------
    database:
        The subjective database whose schema, linguistic domains, reviews
        and extractions ground the interpretation.
    w2v_threshold:
        θ1 of Figure 5 — minimum phrase similarity for the word2vec method.
    cooccurrence_threshold:
        θ2 of Figure 5 — minimum (normalised) attribute score for the
        co-occurrence method.
    top_k_reviews:
        How many positive reviews the co-occurrence method inspects.
    top_n_attributes:
        How many attributes a co-occurrence interpretation may contain.
    use_fast_index:
        Whether to use the Appendix-B single-substitution index in front of
        the full similarity search.
    """

    database: SubjectiveDatabase
    w2v_threshold: float = 0.5
    cooccurrence_threshold: float = 0.1
    top_k_reviews: int = 30
    top_n_attributes: int = 2
    use_fast_index: bool = False

    _variation_index: NearestPhraseIndex | None = field(default=None, init=False, repr=False)
    _variation_owner: dict[str, list[tuple[str, str]]] = field(
        default_factory=dict, init=False, repr=False
    )
    _cache: dict[str, Interpretation] = field(default_factory=dict, init=False, repr=False)
    _attribute_reviews: dict[str, set[int]] | None = field(
        default=None, init=False, repr=False
    )

    # ---------------------------------------------------------------- setup
    def _ensure_variation_lookup(self) -> None:
        if self._variation_owner:
            return
        owner: dict[str, list[tuple[str, str]]] = defaultdict(list)
        for attribute, variation in self.database.all_variations():
            marker = self.database.variation_marker(attribute, variation)
            if marker is None:
                continue
            owner[variation].append((attribute, marker))
        self._variation_owner = dict(owner)
        if self.use_fast_index and self._variation_owner:
            if self.database.phrase_embedder is None:
                raise InterpretationError("text models must be fitted before interpretation")
            self._variation_index = NearestPhraseIndex(
                self.database.phrase_embedder, list(self._variation_owner)
            )

    def _attribute_review_sets(self) -> dict[str, set[int]]:
        """For each attribute, the set of reviews with at least one extraction of it."""
        if self._attribute_reviews is None:
            sets: dict[str, set[int]] = defaultdict(set)
            for record in self.database.extractions():
                sets[record.attribute].add(record.review_id)
            self._attribute_reviews = dict(sets)
        return self._attribute_reviews

    def invalidate(self) -> None:
        """Drop cached lookups (call after summaries/domains change)."""
        self._variation_owner = {}
        self._variation_index = None
        self._cache.clear()
        self._attribute_reviews = None

    # ---------------------------------------------------------------- public
    def interpret(self, predicate: str) -> Interpretation:
        """Interpret one query predicate, trying w2v, then co-occurrence, then IR."""
        cached = self._cache.get(predicate)
        if cached is not None:
            return cached
        self._ensure_variation_lookup()
        interpretation = self._word2vec_method(predicate)
        if interpretation is None or interpretation.confidence < self.w2v_threshold:
            cooccurrence = self._cooccurrence_method(predicate)
            if cooccurrence is not None and cooccurrence.confidence >= self.cooccurrence_threshold:
                interpretation = cooccurrence
            elif interpretation is None or interpretation.confidence < self.w2v_threshold:
                interpretation = Interpretation(
                    predicate=predicate,
                    method=InterpretationMethod.TEXT_RETRIEVAL,
                    confidence=interpretation.confidence if interpretation else 0.0,
                )
        self._cache[predicate] = interpretation
        return interpretation

    def interpret_word2vec(self, predicate: str) -> Interpretation | None:
        """The word2vec method alone (used by the Table 8 experiment)."""
        self._ensure_variation_lookup()
        return self._word2vec_method(predicate)

    def interpret_cooccurrence(self, predicate: str) -> Interpretation | None:
        """The co-occurrence method alone (used by the Table 8 experiment)."""
        self._ensure_variation_lookup()
        return self._cooccurrence_method(predicate)

    # ----------------------------------------------------------- w2v method
    def _word2vec_method(self, predicate: str) -> Interpretation | None:
        if not self._variation_owner:
            return None
        embedder = self.database.phrase_embedder
        if embedder is None:
            raise InterpretationError("text models must be fitted before interpretation")

        if self._variation_index is not None:
            match = self._variation_index.query(predicate)
            if match is None:
                return None
            best_variation, best_similarity = match.phrase, match.score
        else:
            best_variation, best_similarity = None, -1.0
            for variation in self._variation_owner:
                similarity = embedder.similarity(predicate, variation)
                if similarity > best_similarity:
                    best_variation, best_similarity = variation, similarity
            if best_variation is None:
                return None
        owners = self._variation_owner.get(best_variation, [])
        if not owners:
            return None
        pairs = tuple(
            AttributeMarker(attribute, marker) for attribute, marker in owners[:1]
        )
        return Interpretation(
            predicate=predicate,
            method=InterpretationMethod.WORD2VEC,
            pairs=pairs,
            combinator="or",
            confidence=float(best_similarity),
            matched_variation=best_variation,
        )

    # -------------------------------------------------- co-occurrence method
    def _cooccurrence_method(self, predicate: str) -> Interpretation | None:
        database = self.database
        if database.review_index is None:
            return None
        hits = database.review_index.search(predicate, top_k=self.top_k_reviews * 4)
        if not hits:
            return None
        # Eq. 3: rank by BM25 * sentiment, keeping only positive reviews.
        scored = []
        for hit in hits:
            review = database.review(hit.doc_id)
            positiveness = database.sentiment.positiveness(review.text)
            if positiveness <= 0.5:
                continue
            scored.append((hit.doc_id, hit.score * positiveness))
        scored.sort(key=lambda item: -item[1])
        top_reviews = [doc_id for doc_id, _score in scored[: self.top_k_reviews]]
        if not top_reviews:
            return None

        # Count attribute/marker frequencies among the extractions of the
        # retrieved reviews, and track per-review attribute sets to decide
        # between a disjunction and a conjunction.
        attribute_counts: Counter = Counter()
        marker_counts: dict[str, Counter] = defaultdict(Counter)
        review_attribute_sets: list[set[str]] = []
        for review_id in top_reviews:
            attributes_here: set[str] = set()
            for record in database.extractions(review_id=review_id):
                attribute_counts[record.attribute] += 1
                if record.marker is not None:
                    marker_counts[record.attribute][record.marker] += 1
                attributes_here.add(record.attribute)
            review_attribute_sets.append(attributes_here)
        if not attribute_counts:
            return None

        # idf(A): how discriminative attribute A is across all reviews.
        total_reviews = max(1, database.num_reviews())
        attribute_review_sets = self._attribute_review_sets()
        scores: dict[str, float] = {}
        for attribute, frequency in attribute_counts.items():
            df = len(attribute_review_sets.get(attribute, ()))
            idf = math.log((1 + total_reviews) / (1 + df)) + 1.0
            scores[attribute] = frequency * idf

        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        top = ranked[: self.top_n_attributes]
        max_possible = max(1.0, self.top_k_reviews * (math.log(1 + total_reviews) + 1.0))
        confidence = top[0][1] / max_possible

        pairs = []
        for attribute, _score in top:
            markers = marker_counts.get(attribute)
            if markers:
                marker = markers.most_common(1)[0][0]
            else:
                marker = database.schema.subjective(attribute).markers[0].name
            pairs.append(AttributeMarker(attribute, marker))

        combinator = "or"
        if len(pairs) > 1:
            top_attributes = {pair.attribute for pair in pairs}
            joint = sum(
                1 for attributes in review_attribute_sets
                if top_attributes <= attributes
            )
            if review_attribute_sets and joint / len(review_attribute_sets) >= 0.5:
                combinator = "and"

        return Interpretation(
            predicate=predicate,
            method=InterpretationMethod.COOCCURRENCE,
            pairs=tuple(pairs),
            combinator=combinator,
            confidence=float(confidence),
        )
