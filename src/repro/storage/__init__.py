"""Persistent mmap storage tier: durable columns + a WAL-mode SQLite catalog.

The storage tier makes a :class:`~repro.core.database.SubjectiveDatabase`
durable.  ``save_database`` lays every attribute's
:class:`~repro.core.columnar.ColumnarSummaryStore` arrays out on disk in
the snapshot-v2 container layout (magic / format version / CRC preserved)
next to a WAL-mode SQLite catalog tracking entities, attributes,
per-attribute versions and snapshot file paths; ``open_database`` boots a
database back from that directory, reading the column arrays through
``numpy.memmap`` zero-copy views and materialising marker summaries
lazily.  :class:`StoreReader` is the database-free half — cluster shard
nodes use it to hydrate slices from local disk instead of the
coordinator's snapshot wire path — and :class:`PersistentColumnarStore`
serves the mmap-backed columns through the ordinary store protocol,
falling back to an in-RAM rebuild whenever the live ``data_version``
moves past the catalog's.
"""

from repro.storage.catalog import CATALOG_FILENAME, CATALOG_FORMAT_VERSION, StorageCatalog
from repro.storage.columns import (
    COLUMN_FILE_DTYPE,
    MappedColumnFile,
    RawSummaryColumns,
    derive_attribute_columns,
    pack_column_file,
    write_bytes_atomically,
)
from repro.storage.persist import (
    PersistentColumnarStore,
    StoreReader,
    open_database,
    save_database,
)
from repro.storage.synthetic import generate_synthetic_store

__all__ = [
    "CATALOG_FILENAME",
    "CATALOG_FORMAT_VERSION",
    "COLUMN_FILE_DTYPE",
    "MappedColumnFile",
    "PersistentColumnarStore",
    "RawSummaryColumns",
    "StorageCatalog",
    "StoreReader",
    "derive_attribute_columns",
    "generate_synthetic_store",
    "open_database",
    "pack_column_file",
    "save_database",
    "write_bytes_atomically",
]
