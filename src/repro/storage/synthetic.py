"""Direct-to-disk synthetic storage directories for scale benchmarks.

The ≥100k-entity arm of ``benchmarks/bench_persistent_boot.py`` needs a
storage directory far larger than the extraction pipeline (or even the
in-RAM synthetic builder in :mod:`repro.testing`) can produce in bench
time.  This generator writes the column file and catalog *directly* —
vectorized NumPy draws straight into the on-disk layout, no
``SubjectiveDatabase``, no ``MarkerSummary`` objects — yet the result is a
fully consistent directory: ``open_database`` boots it, the mmap store
serves it, and the raw sections reconstruct summaries that re-derive the
stored serving arrays bit-identically (the derived sections are computed
with :func:`~repro.storage.columns.derive_attribute_columns`, the same
vectorized arithmetic the durability tests pin against the scalar path).
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from repro.core.columnar import _unit_rows
from repro.storage.catalog import StorageCatalog, encode_entity_id
from repro.storage.columns import (
    RawSummaryColumns,
    columns_filename,
    derive_attribute_columns,
    pack_column_file,
    sections_crc,
    write_bytes_atomically,
)
from repro.text.sentiment import SentimentAnalyzer

#: Attribute name of the single subjective attribute a synthetic store has.
SYNTHETIC_ATTRIBUTE = "quality"


def generate_synthetic_store(
    directory: str,
    num_entities: int = 100_000,
    num_markers: int = 8,
    dimension: int = 8,
    seed: int = 0,
) -> None:
    """Write a consistent synthetic storage directory of ``num_entities``.

    One subjective attribute (``quality``) with ``num_markers`` markers on
    a linear scale; every entity gets a dense summary row drawn from a
    seeded RNG.  No reviews, extractions or embedder are written — boot
    time is dominated by exactly the paths the benchmark measures (CRC
    pass, catalog reads, entity restore) rather than BM25 indexing of
    synthetic text.
    """
    os.makedirs(os.path.join(directory, "columns"), exist_ok=True)
    rng = np.random.default_rng(seed)
    entity_ids = [f"e{index:07d}" for index in range(num_entities)]
    span = max(1, num_markers - 1)
    marker_triples = [
        [f"word{index:03d}", index, 1.0 - 2.0 * index / span]
        for index in range(num_markers)
    ]

    counts = rng.integers(1, 9, size=(num_entities, num_markers)).astype(np.float64)
    sentiment_sums = rng.uniform(-1.0, 1.0, size=(num_entities, num_markers)) * counts
    vector_sums = rng.normal(size=(num_entities, num_markers, dimension))
    raw = RawSummaryColumns(
        attribute=SYNTHETIC_ATTRIBUTE,
        entity_ids=entity_ids,
        markers=[],  # unused by derive_attribute_columns
        counts=counts,
        sentiment_sums=sentiment_sums,
        vector_sums=vector_sums,
        num_phrases=counts.sum(axis=1),
        num_reviews=np.zeros(num_entities),
        unmatched=np.zeros(num_entities),
        vector_dims=np.full(num_entities, float(dimension)),
        kind_codes=np.zeros(num_entities),
    )
    derived = derive_attribute_columns(raw)
    sections = {
        "marker_sentiments": np.array([triple[2] for triple in marker_triples]),
        "fractions": derived["fractions"],
        "average_sentiments": derived["average_sentiments"],
        "totals": derived["totals"],
        "unmatched": derived["unmatched"],
        "overall_sentiments": derived["overall_sentiments"],
        "centroids_unit": derived["centroids_unit"],
        "name_units": _unit_rows(rng.normal(size=(num_markers, dimension))),
        "counts": raw.counts,
        "sentiment_sums": raw.sentiment_sums,
        "vector_sums": raw.vector_sums,
        "num_phrases": raw.num_phrases,
        "num_reviews": raw.num_reviews,
        "vector_dims": raw.vector_dims,
        "kind_codes": raw.kind_codes,
    }
    meta = {
        "attribute": SYNTHETIC_ATTRIBUTE,
        "version": 1,
        "entity_ids": entity_ids,
        "markers": marker_triples,
        "dimension": dimension,
    }
    payload = pack_column_file(meta, sections)
    filename = columns_filename(0, SYNTHETIC_ATTRIBUTE, 1)
    write_bytes_atomically(os.path.join(directory, "columns", filename), payload)

    schema_document = {
        "name": "synthetic_store",
        "entity_key": "eid",
        "objective": [],
        "subjective": [
            {
                "name": SYNTHETIC_ATTRIBUTE,
                "markers": marker_triples,
                "kind": "linear",
                "domain": {triple[0]: 1 for triple in marker_triples},
                "aspect_seeds": [],
                "opinion_seeds": [],
                "description": "synthetic scale-bench attribute",
            }
        ],
    }
    catalog_meta = {
        "data_version": "1",
        "next_extraction_id": "0",
        "embedding_dimension": str(dimension),
        "schema": json.dumps(schema_document, sort_keys=True, separators=(",", ":")),
        "sentiment_lexicon": json.dumps(
            SentimentAnalyzer()._lexicon, sort_keys=True, separators=(",", ":")
        ),
        "embedder": "null",
    }
    with StorageCatalog(directory, create=True) as catalog:
        catalog.replace_state(
            meta=catalog_meta,
            entities=((encode_entity_id(eid), "{}") for eid in entity_ids),
            reviews=(),
            extractions=(),
            variations=(
                (SYNTHETIC_ATTRIBUTE, triple[0], triple[0]) for triple in marker_triples
            ),
            provenance=(),
            attributes=[
                (
                    SYNTHETIC_ATTRIBUTE,
                    0,
                    1,
                    filename,
                    zlib.crc32(payload),
                    sections_crc(sections),
                    num_entities,
                )
            ],
            summaries=(
                (SYNTHETIC_ATTRIBUTE, encode_entity_id(eid), row, None)
                for row, eid in enumerate(entity_ids)
            ),
            models=(),
        )
