"""The durable storage catalog: a WAL-mode SQLite file beside the column files.

The catalog is the storage tier's source of truth.  It records everything a
:class:`~repro.core.database.SubjectiveDatabase` cannot rebuild from the
column files alone — entities, reviews, extractions, the schema (with its
linguistic-domain counts), variation→marker assignments, provenance, the
text-model state — plus, per subjective attribute, the *version-stamped*
column file holding that attribute's arrays and the checksums that bind
catalog and file together.

Two version counters cooperate:

* ``data_version`` (``meta`` table) — the database's global monotonic
  counter at save time.  Cluster nodes compare it against the
  coordinator's hello to decide whether their local files are current.
* ``attributes.version`` — a per-attribute counter bumped only when that
  attribute's column bytes actually change between saves.  The same value
  is embedded in the column file's meta JSON, so a catalog pointing at a
  file from a different save generation is detected as version skew
  (:class:`~repro.errors.CatalogError`) instead of serving mixed states.

Writes happen in single transactions (``save`` replaces the whole logical
state atomically); the WAL journal keeps concurrent readers — a serving
process booting from the directory mid-save — on a consistent snapshot.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Iterable, Mapping, Sequence

from repro.errors import CatalogError

#: File name of the catalog inside a storage directory.
CATALOG_FILENAME = "catalog.sqlite"

#: Format version of the catalog schema; readers refuse other versions.
CATALOG_FORMAT_VERSION = 1

_SCHEMA_STATEMENTS = (
    "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS entities ("
    " seq INTEGER PRIMARY KEY, entity_id TEXT NOT NULL, objective TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS reviews ("
    " seq INTEGER PRIMARY KEY, review_id INTEGER NOT NULL, entity_id TEXT NOT NULL,"
    " text TEXT NOT NULL, reviewer_id TEXT NOT NULL, rating REAL, year INTEGER,"
    " helpful_votes INTEGER NOT NULL)",
    "CREATE TABLE IF NOT EXISTS extractions ("
    " seq INTEGER PRIMARY KEY, extraction_id INTEGER NOT NULL, entity_id TEXT NOT NULL,"
    " review_id INTEGER NOT NULL, sentence TEXT NOT NULL, aspect_term TEXT NOT NULL,"
    " opinion_term TEXT NOT NULL, attribute TEXT NOT NULL, marker TEXT,"
    " sentiment REAL NOT NULL)",
    "CREATE TABLE IF NOT EXISTS variations ("
    " attribute TEXT NOT NULL, variation TEXT NOT NULL, marker TEXT NOT NULL,"
    " PRIMARY KEY (attribute, variation))",
    "CREATE TABLE IF NOT EXISTS provenance ("
    " seq INTEGER PRIMARY KEY, entity_id TEXT NOT NULL, attribute TEXT NOT NULL,"
    " marker TEXT NOT NULL, extraction_id INTEGER NOT NULL)",
    "CREATE TABLE IF NOT EXISTS attributes ("
    " name TEXT PRIMARY KEY, position INTEGER NOT NULL, version INTEGER NOT NULL,"
    " file TEXT NOT NULL, crc INTEGER NOT NULL, content_crc INTEGER NOT NULL,"
    " num_entities INTEGER NOT NULL)",
    "CREATE TABLE IF NOT EXISTS summaries ("
    " seq INTEGER PRIMARY KEY, attribute TEXT NOT NULL, entity_id TEXT NOT NULL,"
    " row INTEGER, payload TEXT)",
    "CREATE INDEX IF NOT EXISTS idx_summaries_attribute ON summaries (attribute, seq)",
    "CREATE TABLE IF NOT EXISTS models ("
    " name TEXT PRIMARY KEY, version INTEGER NOT NULL, file TEXT NOT NULL,"
    " crc INTEGER NOT NULL)",
)

#: Logical tables replaced wholesale by :meth:`StorageCatalog.replace_state`.
_STATE_TABLES = (
    "entities",
    "reviews",
    "extractions",
    "variations",
    "provenance",
    "attributes",
    "summaries",
    "models",
)


def encode_entity_id(entity_id: object) -> str:
    """JSON-encode one entity id for use as a catalog key.

    Only ids that round-trip through JSON exactly are accepted — the same
    ``str | int | float | bool | None`` contract the column-snapshot wire
    format enforces, so anything the catalog stores can also ship in a
    hydrate frame.
    """
    if entity_id is not None and not isinstance(entity_id, (str, int, float)):
        raise CatalogError(
            f"entity id {entity_id!r} is not storage-serializable "
            "(ids must be str, int, float or None)"
        )
    return json.dumps(entity_id, sort_keys=True, separators=(",", ":"))


def decode_entity_id(encoded: str) -> object:
    """Invert :func:`encode_entity_id`."""
    return json.loads(encoded)


class StorageCatalog:
    """One open catalog connection with typed failure modes.

    ``create=True`` initialises a fresh catalog (creating the directory's
    SQLite file and schema); otherwise a missing or malformed catalog
    raises :class:`~repro.errors.CatalogError`.  The object is a context
    manager; :meth:`close` checkpoints the WAL so a directory copied after
    a clean close needs only the main database file.
    """

    def __init__(self, directory: str, create: bool = False) -> None:
        self.directory = directory
        self.path = os.path.join(directory, CATALOG_FILENAME)
        if not create and not os.path.exists(self.path):
            raise CatalogError(f"no storage catalog at {self.path}")
        if create:
            os.makedirs(directory, exist_ok=True)
        try:
            self._connection = sqlite3.connect(self.path)
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.execute("PRAGMA busy_timeout=10000")
            for statement in _SCHEMA_STATEMENTS:
                self._connection.execute(statement)
            self._connection.commit()
        except sqlite3.Error as error:
            raise CatalogError(f"cannot open storage catalog {self.path} ({error})") from error
        if create:
            current = self.get_meta("format_version")
            if current is None:
                self.set_meta("format_version", str(CATALOG_FORMAT_VERSION))
                self._connection.commit()
        version = self.get_meta("format_version")
        if version != str(CATALOG_FORMAT_VERSION):
            self._connection.close()
            raise CatalogError(
                f"unsupported catalog format version {version!r} "
                f"(this build reads version {CATALOG_FORMAT_VERSION})"
            )

    # ---------------------------------------------------------------- basics
    def __enter__(self) -> "StorageCatalog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Checkpoint the WAL and close the connection (idempotent)."""
        connection = self._connection
        if connection is None:
            return
        try:
            connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            connection.commit()
        except sqlite3.Error:
            pass
        connection.close()
        self._connection = None

    def _execute(self, sql: str, parameters: Sequence[object] = ()) -> sqlite3.Cursor:
        if self._connection is None:
            raise CatalogError("storage catalog is closed")
        try:
            return self._connection.execute(sql, parameters)
        except sqlite3.Error as error:
            raise CatalogError(f"catalog query failed ({error})") from error

    # ------------------------------------------------------------------ meta
    def get_meta(self, key: str) -> str | None:
        """One ``meta`` value, or ``None`` when the key is absent."""
        row = self._execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else row[0]

    def require_meta(self, key: str) -> str:
        """One ``meta`` value; raises :class:`CatalogError` when absent."""
        value = self.get_meta(key)
        if value is None:
            raise CatalogError(f"storage catalog is missing required meta key {key!r}")
        return value

    def set_meta(self, key: str, value: str) -> None:
        """Upsert one ``meta`` value (caller commits)."""
        self._execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    @property
    def data_version(self) -> int:
        """The database's global ``data_version`` recorded at save time."""
        try:
            return int(self.require_meta("data_version"))
        except ValueError as error:
            raise CatalogError(f"malformed data_version in catalog ({error})") from error

    # ------------------------------------------------------------------ reads
    def attribute_rows(self) -> list[sqlite3.Row]:
        """All ``attributes`` rows ordered by schema position."""
        cursor = self._execute(
            "SELECT name, position, version, file, crc, content_crc, num_entities "
            "FROM attributes ORDER BY position"
        )
        cursor.row_factory = sqlite3.Row
        return cursor.fetchall()

    def model_rows(self) -> list[sqlite3.Row]:
        """All ``models`` rows (name, version, file, crc)."""
        cursor = self._execute("SELECT name, version, file, crc FROM models ORDER BY name")
        cursor.row_factory = sqlite3.Row
        return cursor.fetchall()

    def rows(self, sql: str, parameters: Sequence[object] = ()) -> list[tuple]:
        """Arbitrary read query (used by the loaders and the test battery)."""
        return self._execute(sql, parameters).fetchall()

    # ----------------------------------------------------------------- writes
    def replace_state(
        self,
        meta: Mapping[str, str],
        entities: Iterable[tuple],
        reviews: Iterable[tuple],
        extractions: Iterable[tuple],
        variations: Iterable[tuple],
        provenance: Iterable[tuple],
        attributes: Iterable[tuple],
        summaries: Iterable[tuple],
        models: Iterable[tuple],
    ) -> None:
        """Replace the catalog's logical state in one committed transaction.

        Readers (WAL mode) either see the previous complete save or this
        one — never a mixture.  ``meta`` keys are upserted, every state
        table is rewritten.  Tuple shapes follow the table definitions,
        without the ``seq`` columns (assigned here, preserving iteration
        order).
        """
        if self._connection is None:
            raise CatalogError("storage catalog is closed")
        try:
            with self._connection:  # one transaction, committed on success
                for table in _STATE_TABLES:
                    self._connection.execute(f"DELETE FROM {table}")
                for key, value in meta.items():
                    self._connection.execute(
                        "INSERT INTO meta (key, value) VALUES (?, ?) "
                        "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
                        (key, value),
                    )
                self._connection.executemany(
                    "INSERT INTO entities (seq, entity_id, objective) VALUES (?, ?, ?)",
                    ((seq, *row) for seq, row in enumerate(entities)),
                )
                self._connection.executemany(
                    "INSERT INTO reviews (seq, review_id, entity_id, text, reviewer_id,"
                    " rating, year, helpful_votes) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    ((seq, *row) for seq, row in enumerate(reviews)),
                )
                self._connection.executemany(
                    "INSERT INTO extractions (seq, extraction_id, entity_id, review_id,"
                    " sentence, aspect_term, opinion_term, attribute, marker, sentiment)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    ((seq, *row) for seq, row in enumerate(extractions)),
                )
                self._connection.executemany(
                    "INSERT INTO variations (attribute, variation, marker) VALUES (?, ?, ?)",
                    variations,
                )
                self._connection.executemany(
                    "INSERT INTO provenance (seq, entity_id, attribute, marker,"
                    " extraction_id) VALUES (?, ?, ?, ?, ?)",
                    ((seq, *row) for seq, row in enumerate(provenance)),
                )
                self._connection.executemany(
                    "INSERT INTO attributes (name, position, version, file, crc,"
                    " content_crc, num_entities) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    attributes,
                )
                self._connection.executemany(
                    "INSERT INTO summaries (seq, attribute, entity_id, row, payload)"
                    " VALUES (?, ?, ?, ?, ?)",
                    ((seq, *row) for seq, row in enumerate(summaries)),
                )
                self._connection.executemany(
                    "INSERT INTO models (name, version, file, crc) VALUES (?, ?, ?, ?)",
                    models,
                )
        except sqlite3.Error as error:
            raise CatalogError(f"catalog save failed ({error})") from error
