"""Persistent column files: snapshot-v2 containers laid out for ``numpy.memmap``.

A column file holds one subjective attribute's complete columnar state —
the derived serving arrays (exactly what
:meth:`~repro.core.columnar.ColumnarSummaryStore._build` produces) plus the
raw per-summary accumulators needed to reconstruct every
:class:`~repro.core.markers.MarkerSummary` — as named float64 sections at
64-byte-aligned file offsets.

The container is the same ``magic | format version | crc32 | flags | body``
layout the hydrate wire uses (:mod:`repro.core.columnar`), with the
``SNAPSHOT_FLAG_COLUMN_FILE`` bit set and no compression, so one CRC pass
validates the whole file and the body can then be mapped read-only and
sliced zero-copy.  Unlike wire snapshots — which byte-swap every float to
big-endian — column files store **native-endian** float64 (the dtype string
is recorded in the meta JSON and checked on open), because a memory map is
only zero-copy when the bytes are already in CPU order.

Section offsets are not stored: both writer and reader derive them from the
fixed rule *first section at ``align64(header + 4 + len(meta))``, each next
section at ``align64(previous end)``* — one fewer thing that can skew.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.core.columnar import (
    SNAPSHOT_FLAG_COLUMN_FILE,
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    AttributeColumns,
    _pack_container,
    _unit_rows,
)
from repro.core.markers import Marker, MarkerSummary, SummaryKind
from repro.errors import StorageError

#: Native-endian float64 dtype string recorded in (and checked against)
#: every column file's meta JSON.  Mapping a file written on a platform
#: with the other endianness raises a typed :class:`StorageError` instead
#: of serving byte-swapped garbage.
COLUMN_FILE_DTYPE = np.dtype(np.float64).str

#: Sections are laid out at multiples of this alignment so mapped views
#: start on cache-line boundaries.
SECTION_ALIGNMENT = 64

#: Fixed header size of the snapshot-v2 container:
#: magic (4) + format version (u16) + crc32 (u32) + flags (u8).
_CONTAINER_HEADER = len(SNAPSHOT_MAGIC) + 2 + 4 + 1

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")

#: ``SummaryKind`` ↔ float code used by the ``kind_codes`` raw section.
_KIND_CODES = {SummaryKind.LINEAR: 0.0, SummaryKind.CATEGORICAL: 1.0}
_KIND_OF_CODE = {0.0: SummaryKind.LINEAR, 1.0: SummaryKind.CATEGORICAL}


def _align(offset: int) -> int:
    """The next multiple of :data:`SECTION_ALIGNMENT` at or after ``offset``."""
    remainder = offset % SECTION_ALIGNMENT
    return offset if remainder == 0 else offset + (SECTION_ALIGNMENT - remainder)


def _native_bytes(array: np.ndarray) -> bytes:
    """One array as native-endian float64 bytes in C order."""
    return np.ascontiguousarray(array, dtype=np.float64).tobytes()


def sections_crc(sections: Mapping[str, np.ndarray]) -> int:
    """CRC-32 over the concatenated section bytes, in section order.

    This is the *content* checksum the catalog stores per attribute: it is
    independent of the meta JSON (which embeds the per-attribute version),
    so an unchanged attribute keeps the same content CRC across saves and
    its file is not rewritten.
    """
    crc = 0
    for array in sections.values():
        crc = zlib.crc32(_native_bytes(array), crc)
    return crc


def pack_column_file(meta: Mapping[str, object], sections: Mapping[str, np.ndarray]) -> bytes:
    """Serialize named float64 arrays into one mappable column-file payload.

    ``meta`` is extended with the dtype tag and the section table
    (name + shape, in iteration order) and stored as deterministic JSON;
    the arrays follow zero-padded to :data:`SECTION_ALIGNMENT`-aligned
    absolute offsets.  The result is a complete snapshot-v2 container
    (CRC over flags + body) ready for :func:`write_bytes_atomically`.
    """
    full_meta = dict(meta)
    full_meta["dtype"] = COLUMN_FILE_DTYPE
    full_meta["sections"] = [
        [name, [int(size) for size in np.shape(array)]] for name, array in sections.items()
    ]
    try:
        meta_bytes = json.dumps(full_meta, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise StorageError(f"column-file meta is not JSON-serializable ({error})") from error
    parts = [_U32.pack(len(meta_bytes)), meta_bytes]
    position = _CONTAINER_HEADER + 4 + len(meta_bytes)
    for array in sections.values():
        start = _align(position)
        if start > position:
            parts.append(b"\x00" * (start - position))
        payload = _native_bytes(array)
        parts.append(payload)
        position = start + len(payload)
    return _pack_container(b"".join(parts), SNAPSHOT_FLAG_COLUMN_FILE, compress=False)


def write_bytes_atomically(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via temp file + fsync + atomic rename.

    A crash mid-write leaves either the previous file or nothing — never a
    torn mixture — and the directory entry is fsynced so the rename itself
    is durable.
    """
    directory = os.path.dirname(path) or "."
    temporary = f"{path}.tmp.{os.getpid()}"
    try:
        with open(temporary, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    except OSError as error:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise StorageError(f"cannot write storage file {path} ({error})") from error
    try:
        directory_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; the rename is still atomic
    try:
        os.fsync(directory_fd)
    except OSError:
        pass
    finally:
        os.close(directory_fd)


@dataclass(frozen=True)
class RawSummaryColumns:
    """Dense per-entity accumulator state of one attribute's marker summaries.

    Rows align with the companion :class:`AttributeColumns` — these are the
    *inputs* (``MarkerSummary`` internals) where the derived arrays are the
    *outputs*, and together they let a cold process reconstruct summaries
    bit-identically without replaying the extraction pipeline.
    ``vector_dims`` is 0 for summaries tracking no embedding vectors,
    otherwise the summary's embedding dimension; ``kind_codes`` is 0 for
    linear and 1 for categorical summaries.
    """

    attribute: str
    entity_ids: list[Hashable]
    markers: list[Marker]
    counts: np.ndarray  # (E, M)
    sentiment_sums: np.ndarray  # (E, M)
    vector_sums: np.ndarray  # (E, M, D)
    num_phrases: np.ndarray  # (E,)
    num_reviews: np.ndarray  # (E,)
    unmatched: np.ndarray  # (E,)
    vector_dims: np.ndarray  # (E,)
    kind_codes: np.ndarray  # (E,)

    def rebuild_summary(self, row: int) -> MarkerSummary:
        """Reconstruct the :class:`MarkerSummary` stored at ``row``, bit for bit."""
        dimension = int(self.vector_dims[row])
        code = float(self.kind_codes[row])
        try:
            kind = _KIND_OF_CODE[code]
        except KeyError:
            raise StorageError(
                f"unknown summary-kind code {code!r} in attribute {self.attribute!r}"
            ) from None
        summary = MarkerSummary(
            attribute=self.attribute,
            markers=self.markers,
            kind=kind,
            embedding_dimension=dimension or None,
        )
        for index, marker in enumerate(self.markers):
            summary._counts[marker.name] = float(self.counts[row, index])
            summary._sentiment_sums[marker.name] = float(self.sentiment_sums[row, index])
            if dimension:
                summary._vector_sums[marker.name] = np.array(
                    self.vector_sums[row, index, :dimension], dtype=np.float64
                )
        summary.num_phrases = float(self.num_phrases[row])
        summary.num_reviews = int(self.num_reviews[row])
        summary.num_unmatched = float(self.unmatched[row])
        return summary


def raw_summary_columns(
    columns: AttributeColumns, summaries: Mapping[Hashable, MarkerSummary]
) -> RawSummaryColumns:
    """The raw accumulator sections for ``columns``' rows, from live summaries."""
    num_entities = columns.num_entities
    num_markers = columns.num_markers
    dimension = columns.dimension
    counts = np.zeros((num_entities, num_markers))
    sentiment_sums = np.zeros((num_entities, num_markers))
    vector_sums = np.zeros((num_entities, num_markers, dimension))
    num_phrases = np.zeros(num_entities)
    num_reviews = np.zeros(num_entities)
    unmatched = np.zeros(num_entities)
    vector_dims = np.zeros(num_entities)
    kind_codes = np.zeros(num_entities)
    for row, entity_id in enumerate(columns.entity_ids):
        summary = summaries[entity_id]
        arrays = summary.arrays()
        counts[row] = arrays.counts
        sentiment_sums[row] = arrays.sentiment_sums
        if summary._dimension:
            vector_sums[row] = summary.vector_matrix(dimension)
        num_phrases[row] = summary.num_phrases
        num_reviews[row] = summary.num_reviews
        unmatched[row] = summary.num_unmatched
        vector_dims[row] = summary._dimension or 0
        kind_codes[row] = _KIND_CODES[summary.kind]
    return RawSummaryColumns(
        attribute=columns.attribute,
        entity_ids=list(columns.entity_ids),
        markers=list(columns.markers),
        counts=counts,
        sentiment_sums=sentiment_sums,
        vector_sums=vector_sums,
        num_phrases=num_phrases,
        num_reviews=num_reviews,
        unmatched=unmatched,
        vector_dims=vector_dims,
        kind_codes=kind_codes,
    )


def attribute_sections(
    columns: AttributeColumns, raw: RawSummaryColumns
) -> dict[str, np.ndarray]:
    """The full, ordered section map of one attribute's column file."""
    return {
        # Derived serving arrays (exactly the in-RAM store's build output).
        "marker_sentiments": columns.marker_sentiments,
        "fractions": columns.fractions,
        "average_sentiments": columns.average_sentiments,
        "totals": columns.totals,
        "unmatched": columns.unmatched,
        "overall_sentiments": columns.overall_sentiments,
        "centroids_unit": columns.centroids_unit,
        "name_units": columns.name_units,
        # Raw accumulators (MarkerSummary reconstruction inputs).
        "counts": raw.counts,
        "sentiment_sums": raw.sentiment_sums,
        "vector_sums": raw.vector_sums,
        "num_phrases": raw.num_phrases,
        "num_reviews": raw.num_reviews,
        "vector_dims": raw.vector_dims,
        "kind_codes": raw.kind_codes,
    }


def derive_attribute_columns(raw: RawSummaryColumns) -> dict[str, np.ndarray]:
    """Recompute the derived arrays from raw accumulators, vectorized.

    Reproduces the exact per-summary arithmetic of
    :meth:`MarkerSummary.arrays` — totals accumulate left-to-right across
    markers (``cumsum``'s sequential pairing, matching the scalar
    ``sum``), fractions and sentiments divide with the same zero guards —
    so the results are bit-identical to the stored derived sections.  The
    durability tests pin that equivalence; it is also the repair path for
    a derived section under suspicion.
    """
    counts = np.asarray(raw.counts, dtype=np.float64)
    sentiment_sums = np.asarray(raw.sentiment_sums, dtype=np.float64)
    totals = np.cumsum(counts, axis=1)[:, -1]
    safe_totals = np.where(totals == 0.0, 1.0, totals)
    fractions = counts / safe_totals[:, None]
    fractions[totals == 0.0] = 0.0
    safe_counts = np.where(counts == 0.0, 1.0, counts)
    average_sentiments = sentiment_sums / safe_counts
    average_sentiments[counts == 0.0] = 0.0
    overall = np.cumsum(sentiment_sums, axis=1)[:, -1] / safe_totals
    overall[totals == 0.0] = 0.0
    dimension = raw.vector_sums.shape[2]
    centroids_unit = _unit_rows(raw.vector_sums) if dimension else np.asarray(raw.vector_sums)
    return {
        "totals": totals,
        "fractions": fractions,
        "average_sentiments": average_sentiments,
        "overall_sentiments": overall,
        "centroids_unit": centroids_unit,
        "unmatched": np.asarray(raw.unmatched, dtype=np.float64),
    }


class MappedColumnFile:
    """One column file opened as a read-only ``numpy.memmap``.

    Opening verifies the container header and the CRC over the whole
    stored body (one sequential pass), then exposes each section as a
    zero-copy view into the map — pages fault in lazily as the serving
    layers touch them.  The map is read-only; ingest never mutates a
    column file in place (saves write fresh version-stamped files), so a
    view handed out before an ingest stays valid afterwards.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            self._map = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as error:
            raise StorageError(f"cannot map column file {path} ({error})") from error
        data = self._map
        if len(data) < _CONTAINER_HEADER + 4:
            raise StorageError(f"column file {path} is truncated ({len(data)} bytes)")
        if bytes(data[: len(SNAPSHOT_MAGIC)]) != SNAPSHOT_MAGIC:
            raise StorageError(f"column file {path} is not a snapshot container (bad magic)")
        offset = len(SNAPSHOT_MAGIC)
        (container_version,) = _U16.unpack(bytes(data[offset : offset + 2]))
        offset += 2
        if container_version != SNAPSHOT_FORMAT_VERSION:
            raise StorageError(
                f"column file {path} has container format {container_version} "
                f"(this build reads {SNAPSHOT_FORMAT_VERSION})"
            )
        (checksum,) = _U32.unpack(bytes(data[offset : offset + 4]))
        offset += 4
        if zlib.crc32(data[offset:]) != checksum:
            raise StorageError(
                f"column file {path} failed its checksum (torn write or corruption)"
            )
        flags = int(data[offset])
        if not flags & SNAPSHOT_FLAG_COLUMN_FILE or flags != SNAPSHOT_FLAG_COLUMN_FILE:
            raise StorageError(
                f"column file {path} carries container flags {flags:#x}; expected a "
                f"plain column file ({SNAPSHOT_FLAG_COLUMN_FILE:#x})"
            )
        body_start = _CONTAINER_HEADER
        (meta_length,) = _U32.unpack(bytes(data[body_start : body_start + 4]))
        meta_end = body_start + 4 + meta_length
        if meta_end > len(data):
            raise StorageError(f"column file {path} meta JSON overruns the file")
        try:
            self.meta: dict = json.loads(bytes(data[body_start + 4 : meta_end]))
        except ValueError as error:
            raise StorageError(f"column file {path} has malformed meta JSON ({error})") from error
        stored_dtype = self.meta.get("dtype")
        if stored_dtype != COLUMN_FILE_DTYPE:
            raise StorageError(
                f"column file {path} stores dtype {stored_dtype!r} but this platform "
                f"maps {COLUMN_FILE_DTYPE!r}; re-save the store on this platform"
            )
        self._sections: dict[str, tuple[int, tuple[int, ...]]] = {}
        position = meta_end
        for entry in self.meta.get("sections", []):
            name, shape = entry[0], tuple(int(size) for size in entry[1])
            start = _align(position)
            nbytes = int(np.prod(shape, dtype=np.int64)) * 8
            if start + nbytes > len(data):
                raise StorageError(f"column file {path} section {name!r} overruns the file")
            self._sections[name] = (start, shape)
            position = start + nbytes

    # ------------------------------------------------------------- accessors
    @property
    def attribute(self) -> str:
        """The subjective attribute this file stores."""
        return str(self.meta["attribute"])

    @property
    def version(self) -> int:
        """The per-attribute version embedded at write time."""
        return int(self.meta["version"])

    @property
    def entity_ids(self) -> list[Hashable]:
        """Row-ordered entity ids (decoded from the meta JSON)."""
        return list(self.meta["entity_ids"])

    @property
    def markers(self) -> list[Marker]:
        """The attribute's markers, rebuilt from (name, position, sentiment)."""
        return [
            Marker(name=name, position=int(position), sentiment=float(sentiment))
            for name, position, sentiment in self.meta["markers"]
        ]

    @property
    def dimension(self) -> int:
        """Embedding dimension of the centroid/name sections (0 when absent)."""
        return int(self.meta["dimension"])

    @property
    def num_entities(self) -> int:
        """Number of entity rows in every (E, ...) section."""
        return len(self.meta["entity_ids"])

    def section(self, name: str) -> np.ndarray:
        """One section as a read-only zero-copy float64 view."""
        try:
            start, shape = self._sections[name]
        except KeyError:
            raise StorageError(
                f"column file {self.path} has no section {name!r}"
            ) from None
        nbytes = int(np.prod(shape, dtype=np.int64)) * 8
        return self._map[start : start + nbytes].view(COLUMN_FILE_DTYPE).reshape(shape)

    def columns(self) -> AttributeColumns:
        """The derived sections assembled into a serving-ready view."""
        entity_ids = self.entity_ids
        return AttributeColumns(
            attribute=self.attribute,
            entity_ids=entity_ids,
            row_of={entity_id: row for row, entity_id in enumerate(entity_ids)},
            markers=self.markers,
            marker_sentiments=self.section("marker_sentiments"),
            fractions=self.section("fractions"),
            average_sentiments=self.section("average_sentiments"),
            totals=self.section("totals"),
            unmatched=self.section("unmatched"),
            overall_sentiments=self.section("overall_sentiments"),
            centroids_unit=self.section("centroids_unit"),
            name_units=self.section("name_units"),
        )

    def raw(self) -> RawSummaryColumns:
        """The raw accumulator sections as summary-reconstruction inputs."""
        return RawSummaryColumns(
            attribute=self.attribute,
            entity_ids=self.entity_ids,
            markers=self.markers,
            counts=self.section("counts"),
            sentiment_sums=self.section("sentiment_sums"),
            vector_sums=self.section("vector_sums"),
            num_phrases=self.section("num_phrases"),
            num_reviews=self.section("num_reviews"),
            unmatched=self.section("unmatched"),
            vector_dims=self.section("vector_dims"),
            kind_codes=self.section("kind_codes"),
        )


def load_column_file(path: str) -> MappedColumnFile:
    """Open and validate one column file (convenience wrapper)."""
    return MappedColumnFile(path)


def columns_filename(position: int, attribute: str, version: int) -> str:
    """Canonical version-stamped file name of one attribute's column file.

    Version-stamped names are what make saves copy-on-bump: a changed
    attribute gets a *new* file, so read-only maps of the previous
    generation stay valid in already-running readers.
    """
    slug = "".join(ch if ch.isalnum() else "_" for ch in attribute)
    return f"{position:02d}_{slug}.v{version}.snap"
