"""Save/open a :class:`SubjectiveDatabase` against the persistent storage tier.

``save_database`` lays the complete logical state of a database out on
disk: one version-stamped column file per subjective attribute (derived
serving arrays + raw summary accumulators, see
:mod:`repro.storage.columns`), an optional embeddings model file, and a
WAL-mode SQLite catalog (:mod:`repro.storage.catalog`) holding everything
else — entities, reviews, extractions, schema, provenance, text-model
metadata and the per-attribute file manifest.  Saves are *copy-on-bump*:
an attribute whose packed bytes are unchanged keeps its file and version
untouched (so repeated ``save → open → save`` cycles are byte-stable),
while a changed attribute is written to a **new** version-stamped file via
temp-file + fsync + atomic rename, leaving read-only maps of the previous
generation valid in already-running readers.  Files are fsynced before the
catalog commits, so the catalog never points at bytes that might not be
durable.

``open_database`` inverts the save: it verifies every column file's CRC
(typed :class:`~repro.errors.StorageError` on a torn write, so callers can
fall back to a rebuild), reconstructs the schema, text models and relational
state, and installs two lazy hooks — a :class:`SummaryLoader` that
materialises :class:`~repro.core.markers.MarkerSummary` objects from the
mapped raw sections only when scalar code asks for them, and a store
factory producing :class:`PersistentColumnarStore`, which serves the
column arrays as ``numpy.memmap`` zero-copy views for as long as the live
``data_version`` still matches the catalog's.

:class:`StoreReader` is the database-free half of the open path: it reads
the catalog manifest eagerly, closes the SQLite connection (so the object
is fork-safe — child processes inherit only read-only maps), and maps
column files lazily.  Cluster shard nodes use it to hydrate slices from
local disk instead of the coordinator's snapshot wire path.
"""

from __future__ import annotations

import json
import os
import zlib
from collections import Counter
from typing import Callable, Hashable, Mapping

import numpy as np

from repro.core.attributes import (
    ObjectiveAttribute,
    SubjectiveAttribute,
    SubjectiveSchema,
)
from repro.core.columnar import AttributeColumns, ColumnarSummaryStore
from repro.core.database import (
    EntityRecord,
    ExtractionRecord,
    ReviewRecord,
    SubjectiveDatabase,
)
from repro.core.domain import LinguisticDomain
from repro.core.markers import Marker, MarkerSummary, SummaryKind
from repro.engine.types import ColumnType
from repro.errors import CatalogError, SchemaError, StorageError
from repro.obs.metrics import MetricsRegistry, cell_property
from repro.storage.catalog import (
    CATALOG_FILENAME,
    StorageCatalog,
    decode_entity_id,
    encode_entity_id,
)
from repro.storage.columns import (
    MappedColumnFile,
    RawSummaryColumns,
    attribute_sections,
    columns_filename,
    pack_column_file,
    raw_summary_columns,
    sections_crc,
    write_bytes_atomically,
)
from repro.text.embeddings import PhraseEmbedder, WordEmbeddings
from repro.text.idf import DocumentFrequencies
from repro.text.sentiment import SentimentAnalyzer
from repro.text.vocab import Vocabulary

#: Subdirectory of a storage directory holding attribute column files.
COLUMNS_SUBDIR = "columns"

#: Subdirectory of a storage directory holding text-model files.
MODELS_SUBDIR = "models"

#: Catalog ``models`` row name of the word-embedding matrix file.
EMBEDDINGS_MODEL = "embeddings"

_JSON_COMPACT = {"sort_keys": True, "separators": (",", ":")}


def _dumps(value: object) -> str:
    """Deterministic JSON (sorted keys, no whitespace) with a typed failure."""
    try:
        return json.dumps(value, **_JSON_COMPACT)
    except (TypeError, ValueError) as error:
        raise StorageError(f"state is not JSON-serializable ({error})") from error


def _marker_triples(markers: list[Marker]) -> list[list[object]]:
    """Markers as ``[name, position, sentiment]`` triples (JSON-stable)."""
    return [[marker.name, marker.position, marker.sentiment] for marker in markers]


def _markers_from_triples(triples: list[list[object]]) -> list[Marker]:
    """Invert :func:`_marker_triples`."""
    return [
        Marker(name=str(name), position=int(position), sentiment=float(sentiment))
        for name, position, sentiment in triples
    ]


# --------------------------------------------------------------------- schema
def _schema_document(schema: SubjectiveSchema) -> dict:
    """The schema (with its linguistic-domain counts) as a JSON document."""
    return {
        "name": schema.name,
        "entity_key": schema.entity_key,
        "objective": [
            [attribute.name, attribute.type.value, attribute.description]
            for attribute in schema.objective_attributes
        ],
        "subjective": [
            {
                "name": attribute.name,
                "markers": _marker_triples(attribute.markers),
                "kind": attribute.kind.value,
                "domain": dict(attribute.domain._counts),
                "aspect_seeds": list(attribute.aspect_seeds),
                "opinion_seeds": list(attribute.opinion_seeds),
                "description": attribute.description,
            }
            for attribute in schema.subjective_attributes
        ],
    }


def _schema_from_document(document: dict) -> SubjectiveSchema:
    """Invert :func:`_schema_document`, restoring domain counts wholesale."""
    subjective = []
    for entry in document["subjective"]:
        domain = LinguisticDomain(entry["name"])
        domain._counts = Counter(
            {str(phrase): int(count) for phrase, count in entry["domain"].items()}
        )
        subjective.append(
            SubjectiveAttribute(
                name=entry["name"],
                markers=_markers_from_triples(entry["markers"]),
                kind=SummaryKind(entry["kind"]),
                domain=domain,
                aspect_seeds=list(entry["aspect_seeds"]),
                opinion_seeds=list(entry["opinion_seeds"]),
                description=entry["description"],
            )
        )
    return SubjectiveSchema(
        name=document["name"],
        entity_key=document["entity_key"],
        objective_attributes=[
            ObjectiveAttribute(str(name), ColumnType(kind), str(description))
            for name, kind, description in document["objective"]
        ],
        subjective_attributes=subjective,
    )


# ------------------------------------------------------------------ summaries
def _summary_payload(summary: MarkerSummary) -> str:
    """One irregular summary as a self-contained JSON blob.

    Used for summaries that cannot ride in the attribute's raw column
    sections — the entity is absent from the columns (marker mismatch with
    the schema reference) or the summary tracks vectors of a different
    dimension than the column file stores.
    """
    vector_sums: list[list[float] | None] = []
    for marker in summary.markers:
        vector = summary._vector_sums[marker.name]
        vector_sums.append(
            None if vector is None else [float(value) for value in np.ravel(vector)]
        )
    return _dumps(
        {
            "attribute": summary.attribute,
            "kind": summary.kind.value,
            "markers": _marker_triples(summary.markers),
            "dimension": summary._dimension,
            "counts": [float(summary._counts[m.name]) for m in summary.markers],
            "sentiment_sums": [
                float(summary._sentiment_sums[m.name]) for m in summary.markers
            ],
            "vector_sums": vector_sums,
            "num_phrases": summary.num_phrases,
            "num_reviews": summary.num_reviews,
            "num_unmatched": summary.num_unmatched,
        }
    )


def _summary_from_payload(payload: str) -> MarkerSummary:
    """Invert :func:`_summary_payload`, bit for bit."""
    try:
        data = json.loads(payload)
    except ValueError as error:
        raise StorageError(f"malformed summary payload in catalog ({error})") from error
    markers = _markers_from_triples(data["markers"])
    dimension = data["dimension"]
    summary = MarkerSummary(
        attribute=data["attribute"],
        markers=markers,
        kind=SummaryKind(data["kind"]),
        embedding_dimension=None if dimension is None else int(dimension),
    )
    for index, marker in enumerate(markers):
        summary._counts[marker.name] = float(data["counts"][index])
        summary._sentiment_sums[marker.name] = float(data["sentiment_sums"][index])
        vector = data["vector_sums"][index]
        if vector is not None:
            summary._vector_sums[marker.name] = np.array(vector, dtype=np.float64)
    summary.num_phrases = float(data["num_phrases"])
    summary.num_reviews = int(data["num_reviews"])
    summary.num_unmatched = float(data["num_unmatched"])
    return summary


# ----------------------------------------------------------- versioned files
def _on_disk_bytes_match(path: str, payload: bytes) -> bool:
    """Whether ``path`` holds exactly ``payload`` (torn writes do not reuse).

    The reuse fast path of :func:`_persist_versioned_file` must not trust
    catalog metadata alone: a byte flipped on disk after the last save
    leaves the recorded CRC intact, and reusing such a file would carry the
    corruption silently into the next generation.  Comparing the actual
    bytes makes a re-save the recovery path for torn writes.
    """
    try:
        with open(path, "rb") as handle:
            return handle.read() == payload
    except OSError:
        return False


def _persist_versioned_file(
    directory: str,
    subdirectory: str,
    name_of: Callable[[int], str],
    meta: Mapping[str, object],
    sections: Mapping[str, np.ndarray],
    previous: Mapping[str, object] | None,
) -> tuple[str, int, int]:
    """Write (or reuse) one version-stamped column file; ``(file, version, crc)``.

    The candidate payload is packed under the previous version first: when
    its CRC matches the catalog's recorded CRC and the file is still on
    disk, nothing is written and the version does not move — this is what
    makes repeated saves byte-stable.  Any difference bumps the version and
    writes a fresh file (never overwriting the previous generation, so
    running readers keep consistent maps).
    """
    candidate = int(previous["version"]) if previous is not None else 1
    stamped = dict(meta)
    stamped["version"] = candidate
    payload = pack_column_file(stamped, sections)
    if previous is not None:
        unchanged = (
            zlib.crc32(payload) == int(previous["crc"])
            and str(previous["file"]) == name_of(candidate)
            and _on_disk_bytes_match(
                os.path.join(directory, subdirectory, str(previous["file"])), payload
            )
        )
        if unchanged:
            return str(previous["file"]), candidate, int(previous["crc"])
        version = candidate + 1
        stamped["version"] = version
        payload = pack_column_file(stamped, sections)
    else:
        version = candidate
    filename = name_of(version)
    write_bytes_atomically(os.path.join(directory, subdirectory, filename), payload)
    return filename, version, zlib.crc32(payload)


def _embeddings_filename(version: int) -> str:
    """Canonical version-stamped file name of the embeddings model file."""
    return f"model_embeddings.v{version}.snap"


# ----------------------------------------------------------------------- save
def save_database(database: SubjectiveDatabase, directory: str) -> None:
    """Persist the complete logical state of ``database`` under ``directory``.

    Column and model files are written (or reused) first and fsynced; the
    catalog then replaces its logical state in a single committed
    transaction, so a reader booting mid-save observes either the previous
    complete save or this one.  Raises
    :class:`~repro.errors.StorageError` (or its ``CatalogError`` subclass)
    on non-serializable state or I/O failure.
    """
    os.makedirs(os.path.join(directory, COLUMNS_SUBDIR), exist_ok=True)
    os.makedirs(os.path.join(directory, MODELS_SUBDIR), exist_ok=True)
    loader = getattr(database, "_summary_loader", None)
    if loader is not None:
        loader.load_all()

    previous_attributes: dict[str, dict] = {}
    previous_models: dict[str, dict] = {}
    if os.path.exists(os.path.join(directory, CATALOG_FILENAME)):
        try:
            with StorageCatalog(directory) as existing:
                previous_attributes = {
                    row["name"]: dict(row) for row in existing.attribute_rows()
                }
                previous_models = {row["name"]: dict(row) for row in existing.model_rows()}
        except CatalogError:
            previous_attributes = {}
            previous_models = {}

    store = database.columnar_store()
    attribute_rows: list[tuple] = []
    placements: dict[str, tuple[Mapping[Hashable, int], int]] = {}
    for position, attribute in enumerate(database.schema.subjective_attributes):
        columns = store.columns(attribute.name)
        if columns is None:
            continue
        for entity_id in columns.entity_ids:
            encode_entity_id(entity_id)  # typed failure before any file write
        summaries = database.summaries_for_attribute(attribute.name)
        raw = raw_summary_columns(columns, summaries)
        sections = attribute_sections(columns, raw)
        meta = {
            "attribute": attribute.name,
            "entity_ids": list(columns.entity_ids),
            "markers": _marker_triples(columns.markers),
            "dimension": columns.dimension,
        }
        filename, version, crc = _persist_versioned_file(
            directory,
            COLUMNS_SUBDIR,
            lambda v, position=position, name=attribute.name: columns_filename(
                position, name, v
            ),
            meta,
            sections,
            previous_attributes.get(attribute.name),
        )
        attribute_rows.append(
            (
                attribute.name,
                position,
                version,
                filename,
                crc,
                sections_crc(sections),
                columns.num_entities,
            )
        )
        placements[attribute.name] = (columns.row_of, columns.dimension)

    summary_rows: list[tuple] = []
    for (entity_id, attribute), summary in database._summaries.items():
        encoded = encode_entity_id(entity_id)
        placement = placements.get(attribute)
        if placement is not None:
            row_of, dimension = placement
            row = row_of.get(entity_id)
            if row is not None and (summary._dimension or 0) in (0, dimension):
                summary_rows.append((attribute, encoded, int(row), None))
                continue
        summary_rows.append((attribute, encoded, None, _summary_payload(summary)))

    model_rows: list[tuple] = []
    embedder_document: dict | None = None
    embedder = database.phrase_embedder
    if embedder is not None:
        vocabulary = embedder.embeddings.vocabulary
        filename, version, crc = _persist_versioned_file(
            directory,
            MODELS_SUBDIR,
            _embeddings_filename,
            {"model": EMBEDDINGS_MODEL},
            {"matrix": embedder.embeddings._matrix},
            previous_models.get(EMBEDDINGS_MODEL),
        )
        model_rows.append((EMBEDDINGS_MODEL, version, filename, crc))
        embedder_document = {
            "min_count": vocabulary.min_count,
            "tokens": list(vocabulary._id_to_token),
            "counts": dict(vocabulary._counts),
            "doc_freq": dict(embedder._df._doc_freq),
            "num_documents": embedder._df._num_documents,
            "drop_stopwords": embedder._drop_stopwords,
        }

    meta = {
        "data_version": str(database.data_version),
        "next_extraction_id": str(database._next_extraction_id),
        "embedding_dimension": str(database.embedding_dimension),
        "schema": _dumps(_schema_document(database.schema)),
        "sentiment_lexicon": _dumps(database.sentiment._lexicon),
        "embedder": _dumps(embedder_document),
    }
    entities = (
        (encode_entity_id(record.entity_id), _dumps(dict(record.objective)))
        for record in database._entities.values()
    )
    reviews = (
        (
            review.review_id,
            encode_entity_id(review.entity_id),
            review.text,
            review.reviewer_id,
            review.rating,
            review.year,
            review.helpful_votes,
        )
        for review in database._reviews.values()
    )
    extractions = (
        (
            record.extraction_id,
            encode_entity_id(record.entity_id),
            record.review_id,
            record.sentence,
            record.aspect_term,
            record.opinion_term,
            record.attribute,
            record.marker,
            record.sentiment,
        )
        for record in database._extractions.values()
    )
    variations = (
        (attribute, variation, marker)
        for (attribute, variation), marker in database._variation_marker.items()
    )
    provenance = (
        (encode_entity_id(entity_id), attribute, marker, extraction_id)
        for (entity_id, attribute, marker), ids in database.provenance._by_cell.items()
        for extraction_id in ids
    )
    with StorageCatalog(directory, create=True) as catalog:
        catalog.replace_state(
            meta=meta,
            entities=entities,
            reviews=reviews,
            extractions=extractions,
            variations=variations,
            provenance=provenance,
            attributes=attribute_rows,
            summaries=summary_rows,
            models=model_rows,
        )


# --------------------------------------------------------------------- reader
class StoreReader:
    """Database-free, fork-safe access to one storage directory's column files.

    The catalog manifest (``data_version``, attribute and model rows) is
    read eagerly and the SQLite connection closed immediately, so the
    object holds only read-only ``numpy.memmap`` handles afterwards — safe
    to inherit across ``fork`` into cluster shard nodes.  Column files are
    mapped lazily per attribute and cached; :meth:`verify` maps everything
    eagerly (one CRC pass per file) for open-time integrity checking.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        with StorageCatalog(directory) as catalog:
            self.data_version = catalog.data_version
            self._attribute_rows = {
                row["name"]: dict(row) for row in catalog.attribute_rows()
            }
            self._model_rows = {row["name"]: dict(row) for row in catalog.model_rows()}
        self._mapped: dict[str, MappedColumnFile | None] = {}
        self._model_files: dict[str, MappedColumnFile | None] = {}

    def attribute_names(self) -> list[str]:
        """Attributes with a column file, in schema-position order."""
        return list(self._attribute_rows)

    def _mapped_file(self, attribute: str) -> MappedColumnFile | None:
        if attribute in self._mapped:
            return self._mapped[attribute]
        row = self._attribute_rows.get(attribute)
        if row is None:
            self._mapped[attribute] = None
            return None
        path = os.path.join(self.directory, COLUMNS_SUBDIR, str(row["file"]))
        mapped = MappedColumnFile(path)
        if mapped.attribute != attribute or mapped.version != int(row["version"]):
            raise CatalogError(
                f"version skew: catalog lists {attribute!r} at version "
                f"{row['version']} in {row['file']!r}, but the file stores "
                f"{mapped.attribute!r} version {mapped.version}"
            )
        if mapped.num_entities != int(row["num_entities"]):
            raise CatalogError(
                f"version skew: catalog lists {row['num_entities']} entities for "
                f"{attribute!r} but the column file stores {mapped.num_entities}"
            )
        self._mapped[attribute] = mapped
        return mapped

    def columns(self, attribute: str) -> AttributeColumns | None:
        """Derived serving arrays of one attribute as zero-copy mapped views."""
        mapped = self._mapped_file(attribute)
        return None if mapped is None else mapped.columns()

    def raw(self, attribute: str) -> RawSummaryColumns | None:
        """Raw summary accumulators of one attribute as mapped views."""
        mapped = self._mapped_file(attribute)
        return None if mapped is None else mapped.raw()

    def model_file(self, name: str) -> MappedColumnFile | None:
        """One model file (e.g. the embeddings matrix), mapped and verified."""
        if name in self._model_files:
            return self._model_files[name]
        row = self._model_rows.get(name)
        if row is None:
            self._model_files[name] = None
            return None
        path = os.path.join(self.directory, MODELS_SUBDIR, str(row["file"]))
        mapped = MappedColumnFile(path)
        if mapped.meta.get("model") != name or int(mapped.meta["version"]) != int(
            row["version"]
        ):
            raise CatalogError(
                f"version skew: catalog lists model {name!r} at version "
                f"{row['version']} but {row['file']!r} stores "
                f"{mapped.meta.get('model')!r} version {mapped.meta.get('version')!r}"
            )
        self._model_files[name] = mapped
        return mapped

    def verify(self) -> "StoreReader":
        """Map and CRC-check every catalogued file; returns ``self``.

        Raises :class:`~repro.errors.StorageError` on a torn or corrupt
        file and :class:`~repro.errors.CatalogError` on catalog/file
        version skew, so callers can fall back to a clean rebuild.
        """
        for attribute in self._attribute_rows:
            self._mapped_file(attribute)
        for name in self._model_rows:
            self.model_file(name)
        return self


# --------------------------------------------------------------------- loader
class SummaryLoader:
    """Materialise :class:`MarkerSummary` objects lazily from the catalog.

    The mmap-backed serving path never touches scalar summaries; this
    loader exists for the code that does (explanations, re-aggregation,
    re-saves).  Each call opens a fresh catalog connection — the loader
    itself holds no file descriptors, so it is fork-safe like the reader.
    Engine summary rows are inserted on load without bumping the
    database's ``data_version`` (loading is not an ingest).
    """

    def __init__(self, database: SubjectiveDatabase, reader: StoreReader) -> None:
        self.database = database
        self.reader = reader
        self.loaded_attributes: set[str] = set()
        self.all_loaded = False
        self.loads = 0

    def _rows(self, sql: str, parameters: tuple = ()) -> list[tuple]:
        with StorageCatalog(self.reader.directory) as catalog:
            return catalog.rows(sql, parameters)

    def _install(
        self, attribute: str, encoded_id: str, row: object, payload: object
    ) -> None:
        entity_id = decode_entity_id(encoded_id)
        key = (entity_id, attribute)
        if key in self.database._summaries:
            return
        if payload is not None:
            summary = _summary_from_payload(str(payload))
        else:
            raw = self.reader.raw(attribute)
            if raw is None:
                raise StorageError(
                    f"catalog row for {attribute!r} points at column row {row!r} "
                    "but the attribute has no column file"
                )
            summary = raw.rebuild_summary(int(row))
        self.database._summaries[key] = summary
        try:
            relation = self.database.schema.subjective(attribute).relation_name
        except SchemaError:
            relation = None
        if relation is not None:
            table = self.database.engine.table(relation)
            if table.get(str(entity_id)) is None:
                table.insert(
                    {
                        self.database.schema.entity_key: str(entity_id),
                        attribute: summary.to_record(),
                    }
                )
        self.loads += 1

    def load(self, entity_id: Hashable, attribute: str) -> None:
        """Load one (entity, attribute) summary if the catalog has it."""
        if self.all_loaded or attribute in self.loaded_attributes:
            return
        try:
            encoded = encode_entity_id(entity_id)
        except CatalogError:
            return  # such an id can never have been persisted
        rows = self._rows(
            "SELECT entity_id, row, payload FROM summaries"
            " WHERE attribute = ? AND entity_id = ? ORDER BY seq",
            (attribute, encoded),
        )
        for encoded_id, row, payload in rows:
            self._install(attribute, encoded_id, row, payload)

    def load_attribute(self, attribute: str) -> None:
        """Load every summary of one attribute, in original insertion order."""
        if self.all_loaded or attribute in self.loaded_attributes:
            return
        rows = self._rows(
            "SELECT entity_id, row, payload FROM summaries"
            " WHERE attribute = ? ORDER BY seq",
            (attribute,),
        )
        for encoded_id, row, payload in rows:
            self._install(attribute, encoded_id, row, payload)
        self.loaded_attributes.add(attribute)

    def load_all(self) -> None:
        """Load every persisted summary, preserving global insertion order."""
        if self.all_loaded:
            return
        rows = self._rows(
            "SELECT attribute, entity_id, row, payload FROM summaries ORDER BY seq"
        )
        for attribute, encoded_id, row, payload in rows:
            self._install(attribute, encoded_id, row, payload)
            self.loaded_attributes.add(attribute)
        self.all_loaded = True


# ---------------------------------------------------------------------- store
class PersistentColumnarStore(ColumnarSummaryStore):
    """A columnar store serving mmap-backed column files while they are fresh.

    While the database's live ``data_version`` equals the catalog's, column
    requests are answered directly from the reader's zero-copy mapped
    views — no summaries are materialised, no arrays are copied.  The
    moment an ingest moves the version past the catalog, the store falls
    back to the ordinary in-RAM build (which pulls summaries through the
    lazy loader), exactly like a cache miss; a later
    :func:`save_database` re-freshens the directory.
    """

    def __init__(self, database: SubjectiveDatabase, reader: StoreReader) -> None:
        super().__init__(database)
        self.reader = reader
        self.metrics = MetricsRegistry()
        self._mmap_serves_cell = self.metrics.counter(
            "mmap_serves", help="Column builds served straight from the memory maps"
        )

    #: Number of column builds served straight from the memory maps.
    mmap_serves = cell_property("_mmap_serves_cell")

    def _build(self, attribute: str) -> AttributeColumns | None:
        if self._version == self.reader.data_version:
            try:
                columns = self.reader.columns(attribute)
            except StorageError:
                columns = None  # corrupt/skewed file: fall back to a rebuild
            if columns is not None:
                self.mmap_serves += 1
                return columns
        return super()._build(attribute)

    def stats_snapshot(self) -> dict[str, object]:
        """Superclass counters plus the number of mmap-served builds."""
        snapshot = super().stats_snapshot()
        snapshot["mmap_serves"] = self.mmap_serves
        return snapshot


# ----------------------------------------------------------------------- open
def _restore_embedder(document: dict, reader: StoreReader) -> PhraseEmbedder:
    """Rebuild the phrase embedder from catalog metadata + the model file."""
    model = reader.model_file(EMBEDDINGS_MODEL)
    if model is None:
        raise CatalogError(
            "catalog records embedder metadata but no embeddings model file"
        )
    vocabulary = Vocabulary(min_count=int(document["min_count"]))
    vocabulary._id_to_token = [str(token) for token in document["tokens"]]
    vocabulary._token_to_id = {
        token: index for index, token in enumerate(vocabulary._id_to_token)
    }
    vocabulary._counts = Counter(
        {str(token): int(count) for token, count in document["counts"].items()}
    )
    embeddings = WordEmbeddings.from_normalized(vocabulary, model.section("matrix"))
    frequencies = DocumentFrequencies()
    frequencies._doc_freq = Counter(
        {str(token): int(count) for token, count in document["doc_freq"].items()}
    )
    frequencies._num_documents = int(document["num_documents"])
    return PhraseEmbedder(
        embeddings, frequencies, drop_stopwords=bool(document["drop_stopwords"])
    )


def _load_relational_state(database: SubjectiveDatabase, catalog: StorageCatalog) -> None:
    """Bulk-restore entities, reviews and extractions (no version bumps)."""
    key = database.schema.entity_key
    entity_rows = []
    for encoded, objective_json in catalog.rows(
        "SELECT entity_id, objective FROM entities ORDER BY seq"
    ):
        entity_id = decode_entity_id(encoded)
        objective = json.loads(objective_json)
        database._entities[entity_id] = EntityRecord(
            entity_id=entity_id, objective=objective
        )
        database._reviews_by_entity[entity_id] = []
        row = {key: str(entity_id)}
        for attribute in database.schema.objective_attributes:
            row[attribute.name] = objective.get(attribute.name)
        entity_rows.append(row)
    database.engine.table("entities").insert_many(entity_rows)

    review_rows = []
    for review_id, encoded, text, reviewer_id, rating, year, votes in catalog.rows(
        "SELECT review_id, entity_id, text, reviewer_id, rating, year, helpful_votes"
        " FROM reviews ORDER BY seq"
    ):
        entity_id = decode_entity_id(encoded)
        record = ReviewRecord(
            review_id=int(review_id),
            entity_id=entity_id,
            text=text,
            reviewer_id=reviewer_id,
            rating=rating,
            year=None if year is None else int(year),
            helpful_votes=int(votes),
        )
        database._reviews[record.review_id] = record
        database._reviews_by_entity[entity_id].append(record.review_id)
        review_rows.append(
            {
                "review_id": record.review_id,
                key: str(entity_id),
                "text": record.text,
                "reviewer_id": record.reviewer_id,
                "rating": record.rating,
                "year": record.year,
                "helpful_votes": record.helpful_votes,
            }
        )
    database.engine.table("reviews").insert_many(review_rows)

    extraction_rows = []
    for values in catalog.rows(
        "SELECT extraction_id, entity_id, review_id, sentence, aspect_term,"
        " opinion_term, attribute, marker, sentiment FROM extractions ORDER BY seq"
    ):
        xid, encoded, review_id, sentence, aspect, opinion, attribute, marker, sentiment = values
        entity_id = decode_entity_id(encoded)
        record = ExtractionRecord(
            extraction_id=int(xid),
            entity_id=entity_id,
            review_id=int(review_id),
            sentence=sentence,
            aspect_term=aspect,
            opinion_term=opinion,
            attribute=attribute,
            marker=marker,
            sentiment=float(sentiment),
        )
        database._extractions[record.extraction_id] = record
        database._extractions_by_review.setdefault(record.review_id, []).append(
            record.extraction_id
        )
        database._extractions_by_entity_attribute.setdefault(
            (entity_id, attribute), []
        ).append(record.extraction_id)
        extraction_rows.append(
            {
                "extraction_id": record.extraction_id,
                key: str(entity_id),
                "review_id": record.review_id,
                "aspect_term": record.aspect_term,
                "opinion_term": record.opinion_term,
                "attribute": record.attribute,
                "marker": record.marker,
                "sentiment": record.sentiment,
            }
        )
    database.engine.table("extractions").insert_many(extraction_rows)
    # The linguistic domains are NOT re-grown here: their counts were
    # restored wholesale with the schema, and replaying ``domain.add`` per
    # extraction would double-count every phrase.


def open_database(directory: str) -> SubjectiveDatabase:
    """Boot a :class:`SubjectiveDatabase` from a storage directory.

    Every catalogued file is mapped and CRC-verified up front (torn writes
    raise a typed :class:`~repro.errors.StorageError`; a catalog pointing
    at files from a different save generation raises
    :class:`~repro.errors.CatalogError`), then the relational and text
    state is restored and the lazy summary loader + mmap-backed store
    factory are installed.  The returned database's ``data_version``
    equals the catalog's, which is what lets cluster nodes booting from
    the same directory skip wire hydration.
    """
    reader = StoreReader(directory).verify()
    with StorageCatalog(directory) as catalog:
        schema = _schema_from_document(json.loads(catalog.require_meta("schema")))
        sentiment = SentimentAnalyzer()
        sentiment._lexicon = {
            str(word): float(value)
            for word, value in json.loads(catalog.require_meta("sentiment_lexicon")).items()
        }
        database = SubjectiveDatabase(
            schema,
            embedding_dimension=int(catalog.require_meta("embedding_dimension")),
            sentiment=sentiment,
        )
        _load_relational_state(database, catalog)
        for attribute, variation, marker in catalog.rows(
            "SELECT attribute, variation, marker FROM variations"
        ):
            database._variation_marker[(attribute, variation)] = marker
        for encoded, attribute, marker, extraction_id in catalog.rows(
            "SELECT entity_id, attribute, marker, extraction_id FROM provenance"
            " ORDER BY seq"
        ):
            database.provenance.record(
                decode_entity_id(encoded), attribute, marker, int(extraction_id)
            )
        database._next_extraction_id = int(catalog.require_meta("next_extraction_id"))
        embedder_document = json.loads(catalog.require_meta("embedder"))
        data_version = catalog.data_version
    if embedder_document is not None:
        database.phrase_embedder = _restore_embedder(embedder_document, reader)
    database.rebuild_text_indexes()
    database._summary_loader = SummaryLoader(database, reader)
    database._store_factory = lambda db, reader=reader: PersistentColumnarStore(db, reader)
    database._data_version = data_version
    return database
