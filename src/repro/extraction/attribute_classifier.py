"""Attribute classifier: map extracted (aspect, opinion) pairs to attributes.

Section 4.2 formulates assigning extracted pairs to subjective attributes as
text classification over the concatenated phrase.  The classifier is trained
on the seed-expanded tuples from :mod:`repro.extraction.seeds` and supports
two heads: multinomial naive Bayes (default — fast, strong on short phrases)
and logistic regression over bag-of-words + embedding features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.text.embeddings import PhraseEmbedder
from repro.text.tokenize import tokenize
from repro.text.vocab import Vocabulary


@dataclass
class AttributeClassifier:
    """Phrase -> subjective attribute classifier.

    Parameters
    ----------
    head:
        ``"naive_bayes"`` (default) or ``"logistic"``.
    embedder:
        Optional phrase embedder; when supplied and the head is logistic,
        phrase-embedding features are appended to the bag-of-words features.
    """

    head: str = "naive_bayes"
    embedder: PhraseEmbedder | None = None

    _nb: MultinomialNaiveBayes | None = field(default=None, init=False, repr=False)
    _lr: LogisticRegression | None = field(default=None, init=False, repr=False)
    _vocabulary: Vocabulary | None = field(default=None, init=False, repr=False)
    _classes: list[str] = field(default_factory=list, init=False, repr=False)

    def fit(self, examples: Sequence[tuple[str, str]]) -> "AttributeClassifier":
        """Train on ``(phrase, attribute)`` tuples."""
        if not examples:
            raise ValueError("no training examples provided")
        phrases = [phrase for phrase, _attribute in examples]
        labels = [attribute for _phrase, attribute in examples]
        self._classes = sorted(set(labels))
        if self.head == "naive_bayes":
            self._nb = MultinomialNaiveBayes().fit(phrases, labels)
        elif self.head == "logistic":
            self._vocabulary = Vocabulary(min_count=1)
            self._vocabulary.add_corpus([tokenize(phrase) for phrase in phrases])
            self._vocabulary.build()
            features = np.vstack([self._features(phrase) for phrase in phrases])
            self._lr = LogisticRegression(epochs=200, learning_rate=1.0).fit(features, labels)
        else:
            raise ValueError(f"unknown classifier head: {self.head!r}")
        return self

    def _features(self, phrase: str) -> np.ndarray:
        assert self._vocabulary is not None
        bow = np.zeros(len(self._vocabulary))
        for token in tokenize(phrase):
            token_id = self._vocabulary.id_of(token)
            if token_id is not None:
                bow[token_id] += 1.0
        if self.embedder is not None:
            return np.concatenate([bow, self.embedder.represent(phrase)])
        return bow

    @property
    def classes(self) -> list[str]:
        if not self._classes:
            raise NotFittedError("AttributeClassifier is not fitted")
        return list(self._classes)

    def predict(self, phrase: str) -> str:
        """Most probable attribute for a phrase."""
        if self._nb is not None:
            return str(self._nb.predict(phrase))
        if self._lr is not None:
            return str(self._lr.predict(self._features(phrase).reshape(1, -1))[0])
        raise NotFittedError("AttributeClassifier is not fitted")

    def predict_many(self, phrases: Sequence[str]) -> list[str]:
        return [self.predict(phrase) for phrase in phrases]

    def accuracy(self, examples: Sequence[tuple[str, str]]) -> float:
        """Accuracy over held-out ``(phrase, attribute)`` tuples."""
        if not examples:
            return 0.0
        predictions = self.predict_many([phrase for phrase, _attribute in examples])
        gold = [attribute for _phrase, attribute in examples]
        return sum(1 for p, g in zip(predictions, gold) if p == g) / len(gold)
