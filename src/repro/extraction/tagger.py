"""Opinion taggers: classify each token as aspect term, opinion term, or other.

The tagging stage of Figure 6 labels every token of a review sentence with
one of three tags: ``AS`` (part of an aspect term), ``OP`` (part of an
opinion term), ``O`` (irrelevant).  Two models are provided:

``PerceptronOpinionTagger`` ("our model")
    A feature-rich linear-chain structured perceptron with Viterbi decoding
    (see :mod:`repro.ml.perceptron` and :mod:`repro.extraction.features`).
    This stands in for the paper's BERT+BiLSTM+CRF extractor.

``BaselineLexiconTagger`` ("previous SOTA" stand-in)
    A purely lexical tagger: a token is an opinion term when it (or its
    intensifier-attached head) is in the sentiment lexicon, and an aspect
    term when it appears in a noun gazetteer learned from the training data
    only (no context features, no transition structure).  It plays the role
    of the pre-BERT models of [51, 52] in the Table 6 comparison: reasonable
    on large training sets, noticeably weaker on small ones.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import NotFittedError
from repro.extraction.features import tagging_features
from repro.ml.perceptron import StructuredPerceptronTagger
from repro.text.sentiment import SentimentAnalyzer

TAGS = ["O", "AS", "OP"]


@dataclass(frozen=True)
class TaggedSentence:
    """A tokenised sentence together with one tag per token."""

    tokens: tuple[str, ...]
    tags: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.tokens) != len(self.tags):
            raise ValueError("tokens and tags must have the same length")
        unknown = set(self.tags) - set(TAGS)
        if unknown:
            raise ValueError(f"unknown tags: {unknown}")

    def aspect_spans(self) -> list[tuple[int, int]]:
        """(start, end) index pairs of maximal AS runs."""
        return _spans(self.tags, "AS")

    def opinion_spans(self) -> list[tuple[int, int]]:
        """(start, end) index pairs of maximal OP runs."""
        return _spans(self.tags, "OP")

    def aspect_terms(self) -> list[str]:
        return [" ".join(self.tokens[s:e]) for s, e in self.aspect_spans()]

    def opinion_terms(self) -> list[str]:
        return [" ".join(self.tokens[s:e]) for s, e in self.opinion_spans()]


def _spans(tags: Sequence[str], label: str) -> list[tuple[int, int]]:
    spans: list[tuple[int, int]] = []
    start = None
    for index, tag in enumerate(tags):
        if tag == label and start is None:
            start = index
        elif tag != label and start is not None:
            spans.append((start, index))
            start = None
    if start is not None:
        spans.append((start, len(tags)))
    return spans


class OpinionTagger:
    """Interface of a tagging model: fit on tagged sentences, predict tags."""

    def fit(self, sentences: Sequence[TaggedSentence]) -> "OpinionTagger":
        raise NotImplementedError

    def predict(self, tokens: Sequence[str]) -> list[str]:
        raise NotImplementedError

    def predict_many(self, sentences: Sequence[Sequence[str]]) -> list[list[str]]:
        return [self.predict(tokens) for tokens in sentences]

    def tag(self, tokens: Sequence[str]) -> TaggedSentence:
        """Predict and wrap into a :class:`TaggedSentence`."""
        return TaggedSentence(tuple(tokens), tuple(self.predict(tokens)))


@dataclass
class PerceptronOpinionTagger(OpinionTagger):
    """Structured-perceptron tagger with the rich feature templates."""

    epochs: int = 8
    seed: int | None = 0
    _model: StructuredPerceptronTagger | None = field(default=None, init=False, repr=False)

    def fit(self, sentences: Sequence[TaggedSentence]) -> "PerceptronOpinionTagger":
        if not sentences:
            raise ValueError("training set is empty")
        self._model = StructuredPerceptronTagger(
            feature_extractor=tagging_features,
            tags=TAGS,
            epochs=self.epochs,
            seed=self.seed,
        )
        self._model.fit(
            [list(sentence.tokens) for sentence in sentences],
            [list(sentence.tags) for sentence in sentences],
        )
        return self

    def predict(self, tokens: Sequence[str]) -> list[str]:
        if self._model is None:
            raise NotFittedError("PerceptronOpinionTagger is not fitted")
        return self._model.predict(tokens)


@dataclass
class BaselineLexiconTagger(OpinionTagger):
    """Lexicon/gazetteer tagger standing in for the pre-BERT SOTA baseline.

    Aspect vocabulary is learned from the training data alone (tokens that
    appear inside gold AS spans at least ``min_aspect_count`` times); opinion
    terms come from the sentiment lexicon plus tokens seen inside gold OP
    spans.  No transition structure and no contextual features, which is why
    it trails the structured model, especially when training data is scarce.
    """

    min_aspect_count: int = 2
    _aspect_vocabulary: set[str] = field(default_factory=set, init=False, repr=False)
    _opinion_vocabulary: set[str] = field(default_factory=set, init=False, repr=False)
    _analyzer: SentimentAnalyzer = field(default_factory=SentimentAnalyzer, init=False, repr=False)
    _fitted: bool = field(default=False, init=False, repr=False)

    def fit(self, sentences: Sequence[TaggedSentence]) -> "BaselineLexiconTagger":
        if not sentences:
            raise ValueError("training set is empty")
        aspect_counts: Counter = Counter()
        opinion_counts: Counter = Counter()
        for sentence in sentences:
            for token, tag in zip(sentence.tokens, sentence.tags):
                if tag == "AS":
                    aspect_counts[token.lower()] += 1
                elif tag == "OP":
                    opinion_counts[token.lower()] += 1
        self._aspect_vocabulary = {
            token for token, count in aspect_counts.items()
            if count >= self.min_aspect_count
        }
        self._opinion_vocabulary = {
            token for token, count in opinion_counts.items() if count >= 2
        }
        self._fitted = True
        return self

    def predict(self, tokens: Sequence[str]) -> list[str]:
        if not self._fitted:
            raise NotFittedError("BaselineLexiconTagger is not fitted")
        tags = []
        for token in tokens:
            lowered = token.lower()
            if lowered in self._aspect_vocabulary:
                tags.append("AS")
            elif lowered in self._opinion_vocabulary or (
                self._analyzer.lexicon_polarity(lowered) is not None
                and abs(self._analyzer.lexicon_polarity(lowered)) >= 0.2
            ):
                tags.append("OP")
            else:
                tags.append("O")
        return tags
