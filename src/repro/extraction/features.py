"""Feature templates for the opinion-tagging models.

The structured-perceptron tagger is feature-based; this module defines the
templates.  They are the classic CRF-style templates for aspect/opinion term
extraction: word identity in a window, prefixes/suffixes, shape features,
and — the strongest signal — membership of the token in the sentiment
lexicon (opinion words) or in a set of frequent noun-like aspect candidates.
"""

from __future__ import annotations

from typing import Sequence

from repro.text.sentiment import SentimentAnalyzer
from repro.text.stopwords import STOPWORDS

_ANALYZER = SentimentAnalyzer()

# Tokens that frequently start or belong to aspect terms across review
# domains (rooms, food, service, ...).  They act like a gazetteer feature;
# the learner can still override them from the training data.
_COMMON_ASPECT_NOUNS: frozenset[str] = frozenset(
    """
    room rooms bed beds bathroom shower bath toilet towels towel pillow
    pillows carpet floor furniture decor wifi internet breakfast coffee food
    meal meals dish dishes menu dessert drink drinks bar staff service
    reception concierge location view pool gym spa parking price value
    noise atmosphere ambience ambiance vibe music table tables seating
    portion portions pasta pizza sushi steak soup salad bread cocktail wine
    server waiter waitress host kitchen restroom lobby elevator hallway
    air conditioning heating window windows balcony garden terrace
    """.split()
)

_INTENSIFIER_WORDS: frozenset[str] = frozenset(
    {"very", "really", "extremely", "so", "super", "quite", "too", "pretty",
     "absolutely", "incredibly", "remarkably", "fairly", "rather", "a", "bit",
     "wee", "slightly", "somewhat", "not", "no", "never"}
)


def _shape(token: str) -> str:
    if token.isdigit():
        return "digits"
    if any(character.isdigit() for character in token):
        return "alnum"
    if "-" in token:
        return "hyphenated"
    return "alpha"


def tagging_features(tokens: Sequence[str], position: int) -> list[str]:
    """Features of the token at ``position`` within ``tokens``.

    Returns a list of feature strings; the perceptron hashes each of them
    against each tag.  Templates: current/previous/next word identities,
    bigrams, suffixes, lexicon polarity buckets, aspect-gazetteer and
    intensifier membership, stopword/shape indicators, sentence position.
    """
    token = tokens[position].lower()
    previous_token = tokens[position - 1].lower() if position > 0 else "<s>"
    next_token = tokens[position + 1].lower() if position + 1 < len(tokens) else "</s>"
    previous2 = tokens[position - 2].lower() if position > 1 else "<s>"
    next2 = tokens[position + 2].lower() if position + 2 < len(tokens) else "</s>"

    features = [
        "bias",
        f"w={token}",
        f"w-1={previous_token}",
        f"w+1={next_token}",
        f"w-2={previous2}",
        f"w+2={next2}",
        f"w-1|w={previous_token}|{token}",
        f"w|w+1={token}|{next_token}",
        f"suffix3={token[-3:]}",
        f"suffix2={token[-2:]}",
        f"prefix3={token[:3]}",
        f"shape={_shape(token)}",
    ]

    polarity = _ANALYZER.lexicon_polarity(token)
    if polarity is not None:
        if polarity > 0.3:
            features.append("lex=positive")
        elif polarity < -0.3:
            features.append("lex=negative")
        else:
            features.append("lex=neutral")
    previous_polarity = _ANALYZER.lexicon_polarity(previous_token)
    if previous_polarity is not None:
        features.append("lex-1=opinion")
    next_polarity = _ANALYZER.lexicon_polarity(next_token)
    if next_polarity is not None:
        features.append("lex+1=opinion")

    if token in _COMMON_ASPECT_NOUNS:
        features.append("gaz=aspect")
    if previous_token in _COMMON_ASPECT_NOUNS:
        features.append("gaz-1=aspect")
    if next_token in _COMMON_ASPECT_NOUNS:
        features.append("gaz+1=aspect")
    if token in _INTENSIFIER_WORDS:
        features.append("intensifier")
    if previous_token in _INTENSIFIER_WORDS:
        features.append("intensifier-1")
    if token in STOPWORDS:
        features.append("stopword")
    if position == 0:
        features.append("position=first")
    if position == len(tokens) - 1:
        features.append("position=last")
    return features
