"""Construction pipeline: from raw reviews to a populated subjective database.

Implements Section 4 of the paper:

* opinion extraction — tagging review sentences with aspect/opinion terms
  and pairing them (Section 4.1, Appendix C);
* attribute classification via seed expansion (Section 4.2);
* marker discovery — sentiment bucketing for linear domains, k-means for
  categorical domains (Section 4.2.1);
* marker-summary aggregation with provenance (Section 4.2.2);
* :class:`SubjectiveDatabaseBuilder`, the end-to-end driver.
"""

from repro.extraction.features import tagging_features
from repro.extraction.tagger import (
    BaselineLexiconTagger,
    OpinionTagger,
    PerceptronOpinionTagger,
    TaggedSentence,
)
from repro.extraction.pairing import (
    OpinionPair,
    RuleBasedPairer,
    SupervisedPairer,
)
from repro.extraction.pipeline import ExtractionPipeline, ExtractedOpinion
from repro.extraction.seeds import SeedSet, expand_seeds
from repro.extraction.attribute_classifier import AttributeClassifier
from repro.extraction.marker_discovery import (
    discover_categorical_markers,
    discover_linear_markers,
    suggest_markers,
)
from repro.extraction.aggregation import SummaryAggregator
from repro.extraction.builder import SubjectiveDatabaseBuilder

__all__ = [
    "tagging_features",
    "OpinionTagger",
    "PerceptronOpinionTagger",
    "BaselineLexiconTagger",
    "TaggedSentence",
    "OpinionPair",
    "RuleBasedPairer",
    "SupervisedPairer",
    "ExtractionPipeline",
    "ExtractedOpinion",
    "SeedSet",
    "expand_seeds",
    "AttributeClassifier",
    "discover_linear_markers",
    "discover_categorical_markers",
    "suggest_markers",
    "SummaryAggregator",
    "SubjectiveDatabaseBuilder",
]
