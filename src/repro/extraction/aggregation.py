"""Marker-summary aggregation (Section 4.2.2).

Once markers are defined, the extracted phrases of every entity are
aggregated onto them.  The aggregator assigns each extraction to the most
similar marker of its attribute — by phrase-embedding similarity when an
embedder is available, by sentiment proximity otherwise for linear scales —
and maintains the count/sentiment/centroid statistics of the marker summary
as well as the provenance store.

Aggregation is configurable the way the paper sketches:

* a ``review_filter`` restricts the reviews considered (prolific reviewers,
  reviews after a year, ...), re-creating the summaries for qualified
  subsets at query time;
* a ``review_weight`` function lets an application weight reviews unequally
  (recency, helpful votes);
* ``fractional`` enables splitting one phrase between the two nearest
  markers of a linear scale, the extension the paper leaves to future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

import numpy as np

from repro.core.attributes import SubjectiveAttribute
from repro.core.domain import normalise_phrase
from repro.core.database import ExtractionRecord, ReviewRecord, SubjectiveDatabase
from repro.core.markers import MarkerSummary, SummaryKind
from repro.text.embeddings import PhraseEmbedder, cosine
from repro.text.sentiment import SentimentAnalyzer

ReviewFilter = Callable[[ReviewRecord], bool]
ReviewWeight = Callable[[ReviewRecord], float]


@dataclass
class SummaryAggregator:
    """Aggregates a database's extractions into per-entity marker summaries."""

    database: SubjectiveDatabase
    embedder: PhraseEmbedder | None = None
    sentiment: SentimentAnalyzer = field(default_factory=SentimentAnalyzer)
    fractional: bool = False
    similarity_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.embedder is None:
            self.embedder = self.database.phrase_embedder

    # ------------------------------------------------------------ assignment
    def marker_contributions(
        self, attribute: SubjectiveAttribute, record: ExtractionRecord
    ) -> dict[str, float]:
        """Distribution of one extraction over the attribute's markers.

        The best-matching marker receives the full count unless
        ``fractional`` is set and the attribute is linear, in which case the
        two best adjacent markers split the count proportionally to their
        similarity.  Returns an empty mapping when nothing matches at all.
        """
        scores = self._marker_scores(attribute, record)
        if not scores:
            return {}
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        best_name, best_score = ranked[0]
        if best_score <= self.similarity_floor:
            return {}
        if not self.fractional or attribute.kind is not SummaryKind.LINEAR or len(ranked) < 2:
            return {best_name: 1.0}
        second_name, second_score = ranked[1]
        if second_score <= self.similarity_floor:
            return {best_name: 1.0}
        total = best_score + second_score
        return {best_name: best_score / total, second_name: second_score / total}

    def _marker_scores(
        self, attribute: SubjectiveAttribute, record: ExtractionRecord
    ) -> dict[str, float]:
        phrase = record.phrase
        scores: dict[str, float] = {}
        if self.embedder is not None:
            phrase_vector = self.embedder.represent(phrase)
            if np.linalg.norm(phrase_vector) > 0:
                for marker in attribute.markers:
                    marker_vector = self.embedder.represent(marker.name)
                    scores[marker.name] = max(0.0, cosine(phrase_vector, marker_vector))
        if not scores or max(scores.values()) <= self.similarity_floor:
            # Sentiment proximity fallback (always available).
            phrase_polarity = record.sentiment
            for marker in attribute.markers:
                distance = abs(phrase_polarity - marker.sentiment)
                scores[marker.name] = max(0.0, 1.0 - distance / 2.0)
        return scores

    # ------------------------------------------------------------- aggregate
    def aggregate(
        self,
        review_filter: ReviewFilter | None = None,
        review_weight: ReviewWeight | None = None,
        store: bool = True,
    ) -> dict[tuple[Hashable, str], MarkerSummary]:
        """Build marker summaries for every (entity, attribute) pair.

        When ``store`` is true the summaries replace those held by the
        database (and provenance is rebuilt); otherwise they are only
        returned — the query-time re-aggregation path for review-qualifying
        queries uses ``store=False``.
        """
        database = self.database
        allowed_reviews: set[int] | None = None
        if review_filter is not None:
            allowed_reviews = {
                review.review_id for review in database.filter_reviews(review_filter)
            }
        summaries: dict[tuple[Hashable, str], MarkerSummary] = {}
        dimension = self.embedder.dimension if self.embedder is not None else None
        for entity in database.entities():
            for attribute in database.schema.subjective_attributes:
                summary = attribute.new_summary(embedding_dimension=dimension)
                summary.num_reviews = len(database.reviews(entity.entity_id))
                summaries[(entity.entity_id, attribute.name)] = summary

        if store:
            database.clear_summaries()

        for record in database.extractions():
            if allowed_reviews is not None and record.review_id not in allowed_reviews:
                continue
            attribute = database.schema.subjective(record.attribute)
            summary = summaries[(record.entity_id, record.attribute)]
            contributions = self.marker_contributions(attribute, record)
            if not contributions:
                summary.add_unmatched()
                continue
            weight = 1.0
            if review_weight is not None:
                weight = max(0.0, float(review_weight(database.review(record.review_id))))
                if weight == 0.0:
                    continue
            vector = (
                self.embedder.represent(record.phrase) if self.embedder is not None else None
            )
            weighted = {name: share * weight for name, share in contributions.items()}
            summary.add_phrase(weighted, sentiment=record.sentiment, vector=vector)
            best_marker = max(contributions.items(), key=lambda item: item[1])[0]
            if store:
                database.set_variation_marker(
                    record.attribute, normalise_phrase(record.phrase), best_marker
                )
                database.provenance.record(
                    record.entity_id, record.attribute, best_marker, record.extraction_id
                )

        if store:
            for (entity_id, _attribute_name), summary in summaries.items():
                database.store_summary(entity_id, summary)
        return summaries
