"""Pairing aspect terms with opinion terms (Figure 6, Appendix C).

After tagging, maximal AS and OP spans must be linked into (aspect, opinion)
pairs.  Two pairing models are provided, mirroring Appendix C:

``RuleBasedPairer``
    Unsupervised: greedily link each aspect span to the nearest unassigned
    opinion span (token distance standing in for parse-tree distance).  The
    paper notes this achieves performance comparable to the learned model,
    which is why the default pipeline uses it.

``SupervisedPairer``
    A logistic-regression classifier over (sentence, candidate pair)
    features — distance, order, intervening punctuation-like tokens, span
    lengths — mirroring the paper's sentence-pair classification fine-tuned
    on 1,000 labelled pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.extraction.tagger import TaggedSentence
from repro.ml.logistic import LogisticRegression


@dataclass(frozen=True)
class OpinionPair:
    """An (aspect term, opinion term) pair extracted from one sentence."""

    aspect_term: str
    opinion_term: str
    aspect_span: tuple[int, int]
    opinion_span: tuple[int, int]

    @property
    def phrase(self) -> str:
        """Concatenated "opinion aspect" phrase, e.g. ``"very clean room"``."""
        return f"{self.opinion_term} {self.aspect_term}".strip()


def _span_distance(first: tuple[int, int], second: tuple[int, int]) -> int:
    """Token gap between two spans (0 when adjacent or overlapping)."""
    if first[1] <= second[0]:
        return second[0] - first[1]
    if second[1] <= first[0]:
        return first[0] - second[1]
    return 0


class RuleBasedPairer:
    """Greedy nearest-neighbour pairing of aspect and opinion spans."""

    def __init__(self, max_distance: int = 8) -> None:
        self.max_distance = max_distance

    def pair(self, sentence: TaggedSentence) -> list[OpinionPair]:
        """Pair the spans of one tagged sentence.

        Aspect spans are processed left to right and each takes the nearest
        still-unassigned opinion span (a proxy for parse-tree proximity that
        also avoids "crossing" assignments in multi-clause sentences such as
        "bed was too soft, bathroom a wee bit small").  Aspects left without a
        partner fall back to sharing the nearest opinion ("bed and bathroom
        were dirty").
        """
        aspect_spans = sentence.aspect_spans()
        opinion_spans = sentence.opinion_spans()
        if not aspect_spans or not opinion_spans:
            return []
        used_opinions: set[tuple[int, int]] = set()
        pairs: list[OpinionPair] = []
        unpaired: list[tuple[int, int]] = []
        for aspect_span in aspect_spans:
            available = [span for span in opinion_spans if span not in used_opinions]
            if not available:
                unpaired.append(aspect_span)
                continue
            best = min(
                available,
                key=lambda opinion_span: (_span_distance(aspect_span, opinion_span),
                                          opinion_span[0]),
            )
            if _span_distance(aspect_span, best) > self.max_distance:
                unpaired.append(aspect_span)
                continue
            pairs.append(self._make_pair(sentence, aspect_span, best))
            used_opinions.add(best)
        # Aspects left without a partner may still share the nearest opinion
        # term ("bed and bathroom were dirty"): link them to the closest one.
        for aspect_span in unpaired:
            best = min(
                opinion_spans,
                key=lambda opinion_span: _span_distance(aspect_span, opinion_span),
            )
            if _span_distance(aspect_span, best) <= self.max_distance:
                pairs.append(self._make_pair(sentence, aspect_span, best))
        pairs.sort(key=lambda pair: pair.aspect_span[0])
        return pairs

    @staticmethod
    def _make_pair(
        sentence: TaggedSentence,
        aspect_span: tuple[int, int],
        opinion_span: tuple[int, int],
    ) -> OpinionPair:
        return OpinionPair(
            aspect_term=" ".join(sentence.tokens[aspect_span[0] : aspect_span[1]]),
            opinion_term=" ".join(sentence.tokens[opinion_span[0] : opinion_span[1]]),
            aspect_span=aspect_span,
            opinion_span=opinion_span,
        )


def _pair_features(
    sentence: TaggedSentence,
    aspect_span: tuple[int, int],
    opinion_span: tuple[int, int],
) -> np.ndarray:
    distance = _span_distance(aspect_span, opinion_span)
    between_lo = min(aspect_span[1], opinion_span[1])
    between_hi = max(aspect_span[0], opinion_span[0])
    between_tokens = sentence.tokens[between_lo:between_hi]
    connectors = sum(1 for token in between_tokens if token in ("and", "but", "was", "is", "were"))
    return np.array(
        [
            distance,
            1.0 if opinion_span[0] < aspect_span[0] else 0.0,
            aspect_span[1] - aspect_span[0],
            opinion_span[1] - opinion_span[0],
            len(between_tokens),
            connectors,
            1.0 if distance <= 2 else 0.0,
        ]
    )


@dataclass
class SupervisedPairer:
    """Logistic-regression pairing classifier (Appendix C, supervised variant)."""

    threshold: float = 0.5
    model: LogisticRegression = field(default_factory=LogisticRegression)
    _fitted: bool = field(default=False, init=False, repr=False)

    def fit(
        self,
        examples: Sequence[tuple[TaggedSentence, tuple[int, int], tuple[int, int], int]],
    ) -> "SupervisedPairer":
        """Train on (sentence, aspect span, opinion span, label) tuples."""
        if not examples:
            raise ValueError("no training examples provided")
        features = np.vstack(
            [
                _pair_features(sentence, aspect_span, opinion_span)
                for sentence, aspect_span, opinion_span, _label in examples
            ]
        )
        labels = [int(label) for *_rest, label in examples]
        if len(set(labels)) < 2:
            raise ValueError("training labels must include both classes")
        self.model.fit(features, labels)
        self._fitted = True
        return self

    def accuracy(
        self,
        examples: Sequence[tuple[TaggedSentence, tuple[int, int], tuple[int, int], int]],
    ) -> float:
        """Classification accuracy over held-out labelled candidate pairs."""
        if not self._fitted:
            raise NotFittedError("SupervisedPairer is not fitted")
        features = np.vstack(
            [
                _pair_features(sentence, aspect_span, opinion_span)
                for sentence, aspect_span, opinion_span, _label in examples
            ]
        )
        labels = [int(label) for *_rest, label in examples]
        return self.model.score(features, labels)

    def pair(self, sentence: TaggedSentence) -> list[OpinionPair]:
        """Pair spans whose classifier probability clears the threshold."""
        if not self._fitted:
            raise NotFittedError("SupervisedPairer is not fitted")
        pairs: list[OpinionPair] = []
        for aspect_span in sentence.aspect_spans():
            best_span = None
            best_probability = 0.0
            for opinion_span in sentence.opinion_spans():
                features = _pair_features(sentence, aspect_span, opinion_span)
                probability = float(
                    self.model.positive_probability(features.reshape(1, -1))[0]
                )
                if probability > best_probability:
                    best_probability = probability
                    best_span = opinion_span
            if best_span is not None and best_probability >= self.threshold:
                pairs.append(
                    OpinionPair(
                        aspect_term=" ".join(
                            sentence.tokens[aspect_span[0] : aspect_span[1]]
                        ),
                        opinion_term=" ".join(
                            sentence.tokens[best_span[0] : best_span[1]]
                        ),
                        aspect_span=aspect_span,
                        opinion_span=best_span,
                    )
                )
        return pairs
