"""Seed expansion for the attribute classifier (Section 4.2).

For every subjective attribute A the designer supplies a small seed pair
(E, P): aspect terms E and opinion terms P.  OpineDB expands the seeds with
near-synonyms from the review-trained word2vec model and builds the training
set of the attribute classifier from the cross product E × P — each example
is the concatenated phrase ``opinion aspect`` labelled with A.  This turns a
few hundred seed terms into a few thousand labelled tuples with no manual
labelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.text.embeddings import WordEmbeddings
from repro.utils.rng import ensure_rng


@dataclass
class SeedSet:
    """Designer-provided seeds (E, P) for one subjective attribute."""

    attribute: str
    aspect_terms: list[str] = field(default_factory=list)
    opinion_terms: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.aspect_terms or not self.opinion_terms:
            raise ValueError(
                f"seed set for {self.attribute!r} needs both aspect and opinion terms"
            )

    @property
    def num_seeds(self) -> int:
        return len(self.aspect_terms) + len(self.opinion_terms)


def _expand_terms(
    terms: Iterable[str],
    embeddings: WordEmbeddings | None,
    per_term: int,
    threshold: float,
) -> list[str]:
    expanded: list[str] = []
    seen: set[str] = set()
    for term in terms:
        if term not in seen:
            expanded.append(term)
            seen.add(term)
        if embeddings is None:
            continue
        for synonym in embeddings.expand(term, top_n=per_term, threshold=threshold):
            if synonym not in seen:
                expanded.append(synonym)
                seen.add(synonym)
    return expanded


def expand_seeds(
    seed_sets: list[SeedSet],
    embeddings: WordEmbeddings | None = None,
    target_size: int = 5000,
    per_term_expansions: int = 3,
    similarity_threshold: float = 0.45,
    seed: int | None = 0,
) -> list[tuple[str, str]]:
    """Build a labelled training set of ``(phrase, attribute)`` tuples.

    The cross products E × P of all attributes are expanded with embedding
    near-synonyms and sampled down (or fully enumerated if smaller) to
    approximately ``target_size`` tuples, keeping the attribute distribution
    balanced the way the cross-product sizes dictate.
    """
    if not seed_sets:
        raise ValueError("no seed sets provided")
    rng = ensure_rng(seed)
    examples: list[tuple[str, str]] = []
    for seed_set in seed_sets:
        aspects = _expand_terms(
            seed_set.aspect_terms, embeddings, per_term_expansions, similarity_threshold
        )
        opinions = _expand_terms(
            seed_set.opinion_terms, embeddings, per_term_expansions, similarity_threshold
        )
        for aspect in aspects:
            for opinion in opinions:
                examples.append((f"{opinion} {aspect}", seed_set.attribute))
    if len(examples) > target_size:
        indices = rng.choice(len(examples), size=target_size, replace=False)
        examples = [examples[int(index)] for index in sorted(indices)]
    return examples
