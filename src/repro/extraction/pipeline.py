"""The extraction pipeline: review text -> (aspect, opinion) pairs per sentence.

Combines a tagger and a pairer (Figure 6) and adds sentence splitting and
sentiment scoring of each extracted pair.  The pipeline is the front half of
the database builder; its output feeds the attribute classifier and the
marker-summary aggregator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ExtractionError
from repro.extraction.pairing import OpinionPair, RuleBasedPairer, SupervisedPairer
from repro.extraction.tagger import OpinionTagger, TaggedSentence
from repro.text.sentiment import SentimentAnalyzer
from repro.text.tokenize import sentences as split_sentences
from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class ExtractedOpinion:
    """One extracted opinion: pair + source sentence + sentiment."""

    sentence: str
    aspect_term: str
    opinion_term: str
    sentiment: float

    @property
    def phrase(self) -> str:
        return f"{self.opinion_term} {self.aspect_term}".strip()


@dataclass
class ExtractionPipeline:
    """Tag review sentences and pair the tagged spans into opinions.

    Parameters
    ----------
    tagger:
        A fitted :class:`OpinionTagger`.
    pairer:
        Rule-based by default; a fitted :class:`SupervisedPairer` may be
        substituted (Appendix C).
    """

    tagger: OpinionTagger
    pairer: RuleBasedPairer | SupervisedPairer = field(default_factory=RuleBasedPairer)
    sentiment: SentimentAnalyzer = field(default_factory=SentimentAnalyzer)

    def extract_sentence(self, sentence: str) -> list[ExtractedOpinion]:
        """Extract opinion pairs from one sentence."""
        tokens = tokenize(sentence)
        if not tokens:
            return []
        tagged = TaggedSentence(tuple(tokens), tuple(self.tagger.predict(tokens)))
        pairs = self.pairer.pair(tagged)
        return [self._to_opinion(sentence, pair) for pair in pairs]

    def extract_review(self, text: str) -> list[ExtractedOpinion]:
        """Extract opinion pairs from every sentence of a review."""
        if not isinstance(text, str):
            raise ExtractionError("review text must be a string")
        opinions: list[ExtractedOpinion] = []
        for sentence in split_sentences(text):
            opinions.extend(self.extract_sentence(sentence))
        return opinions

    def extract_corpus(self, reviews: Iterable[str]) -> list[list[ExtractedOpinion]]:
        """Extract opinions from a corpus; one list per review."""
        return [self.extract_review(text) for text in reviews]

    def _to_opinion(self, sentence: str, pair: OpinionPair) -> ExtractedOpinion:
        sentiment = self.sentiment.polarity(pair.phrase)
        return ExtractedOpinion(
            sentence=sentence,
            aspect_term=pair.aspect_term,
            opinion_term=pair.opinion_term,
            sentiment=sentiment,
        )
