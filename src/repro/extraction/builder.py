"""End-to-end construction of a subjective database from raw reviews.

The builder orchestrates the full Section 4 pipeline:

1. load entities (with their objective attributes) and reviews;
2. train the corpus text models (embeddings, IDF, BM25 indexes);
3. run the extraction pipeline over every review sentence;
4. classify each extracted pair into a subjective attribute (seed-expanded
   classifier), populating the linguistic domains;
5. discover markers for every attribute (unless the designer fixed them);
6. aggregate the extractions into per-entity marker summaries.

It is the component a downstream application uses to go from "a folder of
reviews plus a list of attribute seeds" to a queryable
:class:`~repro.core.database.SubjectiveDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.attributes import ObjectiveAttribute, SubjectiveAttribute, SubjectiveSchema
from repro.core.database import ReviewRecord, SubjectiveDatabase
from repro.core.markers import Marker, SummaryKind
from repro.errors import ExtractionError
from repro.extraction.aggregation import SummaryAggregator
from repro.extraction.attribute_classifier import AttributeClassifier
from repro.extraction.marker_discovery import suggest_markers
from repro.extraction.pipeline import ExtractionPipeline
from repro.extraction.seeds import SeedSet, expand_seeds
from repro.text.sentiment import SentimentAnalyzer
from repro.text.tokenize import sentences as split_sentences


@dataclass
class SubjectiveDatabaseBuilder:
    """Drives the construction pipeline for one application domain.

    Parameters
    ----------
    schema_name / entity_key:
        Name the application and the key attribute of its entities.
    objective_attributes:
        The objective columns of the entity relation.
    seed_sets:
        One :class:`SeedSet` per subjective attribute (Section 4.2); the
        attribute names of the seeds define the subjective schema.
    attribute_kinds:
        Optional mapping attribute -> :class:`SummaryKind`; linear by default.
    fixed_markers:
        Optional mapping attribute -> explicit marker list; attributes not
        listed get automatically discovered markers.
    num_markers:
        Number of markers to discover per attribute.
    pipeline:
        A fitted :class:`ExtractionPipeline` (tagger + pairer).
    min_confidence:
        Extraction pairs whose classifier phrase is empty are dropped.
    embedding_dimension:
        Dimensionality of the corpus embeddings trained by the builder.
    """

    schema_name: str
    entity_key: str
    objective_attributes: list[ObjectiveAttribute]
    seed_sets: list[SeedSet]
    pipeline: ExtractionPipeline
    attribute_kinds: Mapping[str, SummaryKind] = field(default_factory=dict)
    fixed_markers: Mapping[str, list[Marker]] = field(default_factory=dict)
    num_markers: int = 4
    embedding_dimension: int = 48
    classifier_head: str = "naive_bayes"
    fractional_aggregation: bool = False
    seed: int | None = 0

    classifier: AttributeClassifier | None = field(default=None, init=False)
    aggregator: SummaryAggregator | None = field(default=None, init=False)

    def build(
        self,
        entities: Iterable[tuple[str, Mapping[str, object]]],
        reviews: Iterable[ReviewRecord],
    ) -> SubjectiveDatabase:
        """Run the full pipeline and return a populated subjective database."""
        schema = self._make_schema()
        database = SubjectiveDatabase(
            schema, embedding_dimension=self.embedding_dimension,
            sentiment=SentimentAnalyzer(),
        )
        entity_list = list(entities)
        if not entity_list:
            raise ExtractionError("builder needs at least one entity")
        for entity_id, objective in entity_list:
            database.add_entity(entity_id, objective)
        review_list = list(reviews)
        if not review_list:
            raise ExtractionError("builder needs at least one review")
        database.add_reviews(review_list)

        # Corpus text models first: the seed expansion and marker discovery
        # both rely on the review-trained embeddings.
        database.fit_text_models()

        self.classifier = self._train_classifier(database)
        self._extract_and_classify(database)
        self._finalise_markers(database)
        self.aggregator = SummaryAggregator(
            database,
            embedder=database.phrase_embedder,
            fractional=self.fractional_aggregation,
        )
        self.aggregator.aggregate(store=True)
        return database

    # ------------------------------------------------------------ internals
    def _make_schema(self) -> SubjectiveSchema:
        subjective_attributes = []
        for seed_set in self.seed_sets:
            kind = self.attribute_kinds.get(seed_set.attribute, SummaryKind.LINEAR)
            markers = self.fixed_markers.get(seed_set.attribute)
            placeholder = markers or [
                Marker(name=f"__pending_{index}", position=index)
                for index in range(self.num_markers)
            ]
            subjective_attributes.append(
                SubjectiveAttribute(
                    name=seed_set.attribute,
                    markers=list(placeholder),
                    kind=kind,
                    aspect_seeds=list(seed_set.aspect_terms),
                    opinion_seeds=list(seed_set.opinion_terms),
                )
            )
        return SubjectiveSchema(
            name=self.schema_name,
            entity_key=self.entity_key,
            objective_attributes=list(self.objective_attributes),
            subjective_attributes=subjective_attributes,
        )

    def _train_classifier(self, database: SubjectiveDatabase) -> AttributeClassifier:
        embeddings = (
            database.phrase_embedder.embeddings if database.phrase_embedder else None
        )
        examples = expand_seeds(
            self.seed_sets,
            embeddings=embeddings,
            target_size=5000,
            seed=self.seed,
        )
        classifier = AttributeClassifier(
            head=self.classifier_head, embedder=database.phrase_embedder
        )
        classifier.fit(examples)
        return classifier

    def _extract_and_classify(self, database: SubjectiveDatabase) -> None:
        assert self.classifier is not None
        for review in database.reviews():
            for sentence in split_sentences(review.text):
                for opinion in self.pipeline.extract_sentence(sentence):
                    if not opinion.aspect_term or not opinion.opinion_term:
                        continue
                    attribute = self.classifier.predict(opinion.phrase)
                    database.add_extraction(
                        entity_id=review.entity_id,
                        review_id=review.review_id,
                        sentence=sentence,
                        aspect_term=opinion.aspect_term,
                        opinion_term=opinion.opinion_term,
                        attribute=attribute,
                        sentiment=opinion.sentiment,
                    )

    def _finalise_markers(self, database: SubjectiveDatabase) -> None:
        for attribute in database.schema.subjective_attributes:
            if attribute.name in self.fixed_markers:
                continue
            if len(attribute.domain) == 0:
                # No extraction landed on the attribute; keep a minimal
                # sentiment scale so queries against it stay well-defined.
                attribute.markers = [
                    Marker(name="good", position=0, sentiment=0.6),
                    Marker(name="bad", position=1, sentiment=-0.6),
                ]
                continue
            attribute.markers = suggest_markers(
                attribute.domain,
                attribute.kind,
                num_markers=self.num_markers,
                embedder=database.phrase_embedder,
                seed=self.seed,
            )
