"""Automatic marker discovery (Section 4.2.1).

Given the linguistic domain of a subjective attribute, OpineDB suggests its
markers automatically:

* **linearly-ordered domains** — sort the variations by sentiment score and
  split the domain into ``k`` equal-frequency buckets; the variation at the
  centre of each bucket becomes a marker.  Markers end up ordered from most
  negative to most positive (position 0 = most positive by convention here).
* **categorical domains** — run k-means over the phrase-embedding vectors of
  the variations and take the variation closest to each centroid (the
  medoid) as a marker.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.domain import LinguisticDomain
from repro.core.markers import Marker, SummaryKind
from repro.ml.kmeans import KMeans
from repro.text.embeddings import PhraseEmbedder
from repro.text.sentiment import SentimentAnalyzer


def discover_linear_markers(
    domain: LinguisticDomain,
    num_markers: int = 4,
    sentiment: SentimentAnalyzer | None = None,
) -> list[Marker]:
    """Sentiment-bucketing marker discovery for linearly-ordered domains.

    Variations are weighted by their observed frequency when forming the
    equal-frequency buckets so that rare extreme phrases do not crowd out the
    common vocabulary.
    """
    if num_markers < 2:
        raise ValueError("a linear scale needs at least 2 markers")
    if len(domain) == 0:
        raise ValueError(f"linguistic domain of {domain.attribute!r} is empty")
    analyzer = sentiment or SentimentAnalyzer()
    scored = sorted(
        ((analyzer.polarity(phrase), phrase, count) for phrase, count in domain.most_common()),
        key=lambda item: (-item[0], item[1]),
    )
    total_mass = sum(count for _s, _p, count in scored)
    k = min(num_markers, len(scored))
    bucket_mass = total_mass / k
    markers: list[Marker] = []
    used: set[str] = set()
    cumulative = 0.0
    bucket: list[tuple[float, str, int]] = []
    bucket_index = 0
    for polarity, phrase, count in scored:
        bucket.append((polarity, phrase, count))
        cumulative += count
        if cumulative >= bucket_mass * (bucket_index + 1) or (polarity, phrase, count) == scored[-1]:
            centre = bucket[len(bucket) // 2]
            name = centre[1]
            if name in used:
                # Fall back to any unused phrase in the bucket.
                for _polarity, candidate, _count in bucket:
                    if candidate not in used:
                        name = candidate
                        break
            if name not in used:
                markers.append(Marker(name=name, position=bucket_index, sentiment=centre[0]))
                used.add(name)
                bucket_index += 1
            bucket = []
        if bucket_index >= k:
            break
    # Re-number positions contiguously in case buckets collapsed.
    return [
        Marker(name=marker.name, position=index, sentiment=marker.sentiment)
        for index, marker in enumerate(markers)
    ]


def discover_categorical_markers(
    domain: LinguisticDomain,
    embedder: PhraseEmbedder,
    num_markers: int = 4,
    seed: int | None = 0,
    sentiment: SentimentAnalyzer | None = None,
) -> list[Marker]:
    """k-means marker discovery for categorical domains (medoid per cluster)."""
    if num_markers < 2:
        raise ValueError("a categorical summary needs at least 2 markers")
    phrases = domain.phrases
    if not phrases:
        raise ValueError(f"linguistic domain of {domain.attribute!r} is empty")
    analyzer = sentiment or SentimentAnalyzer()
    vectors = np.vstack([embedder.represent(phrase) for phrase in phrases])
    result = KMeans(n_clusters=min(num_markers, len(phrases)), seed=seed).fit(vectors)
    markers: list[Marker] = []
    used: set[str] = set()
    for position, medoid_index in enumerate(result.medoid_indices):
        name = phrases[medoid_index]
        if name in used:
            continue
        markers.append(
            Marker(name=name, position=position, sentiment=analyzer.polarity(name))
        )
        used.add(name)
    return [
        Marker(name=marker.name, position=index, sentiment=marker.sentiment)
        for index, marker in enumerate(markers)
    ]


def suggest_markers(
    domain: LinguisticDomain,
    kind: SummaryKind,
    num_markers: int = 4,
    embedder: PhraseEmbedder | None = None,
    sentiment: SentimentAnalyzer | None = None,
    seed: int | None = 0,
) -> list[Marker]:
    """Dispatch to the linear or categorical discovery method."""
    if kind is SummaryKind.LINEAR:
        return discover_linear_markers(domain, num_markers, sentiment)
    if embedder is None:
        raise ValueError("categorical marker discovery requires a phrase embedder")
    return discover_categorical_markers(domain, embedder, num_markers, seed, sentiment)


def marker_names(markers: Sequence[Marker]) -> list[str]:
    """Convenience accessor used by tests and experiments."""
    return [marker.name for marker in markers]
