"""Tokenizer and recursive-descent parser for subjective SQL.

The dialect is the single-block select-from-where language of the paper
(Section 2) with the standard extras the experiments need:

.. code-block:: sql

    SELECT * FROM Hotels
    WHERE price_pn < 150 AND city = 'london'
      AND "has really clean rooms" AND "is a romantic getaway"
    ORDER BY price_pn ASC
    LIMIT 10

* double-quoted strings inside WHERE are *subjective predicates*;
* single-quoted strings are ordinary text literals;
* AND / OR / NOT with the usual precedence (NOT > AND > OR), parentheses;
* comparisons =, !=, <>, <, <=, >, >=; IN (...); BETWEEN x AND y;
* an optional single INNER JOIN with an equality ON condition;
* ORDER BY one column ASC/DESC and LIMIT.

Identifiers may be qualified (``h.price_pn``) and tables may be aliased
(``FROM Hotels h``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.engine.executor import JoinClause, OrderBy, SelectStatement
from repro.engine.expressions import (
    BetweenExpression,
    ColumnReference,
    ComparisonExpression,
    Expression,
    InExpression,
    Literal,
    NotExpression,
    SubjectivePredicate,
    conjunction,
    disjunction,
)
from repro.errors import ParseError

_TOKEN_SPEC = [
    ("WS", r"\s+"),
    ("NUMBER", r"\d+(?:\.\d+)?"),
    ("DQSTRING", r'"(?:[^"\\]|\\.)*"'),
    ("SQSTRING", r"'(?:[^'\\]|\\.)*'"),
    ("OP", r"<=|>=|!=|<>|=|<|>"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("STAR", r"\*"),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "in", "between", "join",
    "on", "order", "by", "asc", "desc", "limit", "true", "false", "null",
    "inner",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    value: str
    position: int


def _lex(text: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "WS":
            if kind == "IDENT" and value.lower() in _KEYWORDS:
                tokens.append(Token("KEYWORD", value.lower(), position))
            else:
                tokens.append(Token(kind, value, position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    # ------------------------------------------------------------ plumbing
    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", len(self._source))
        self._index += 1
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._advance()
        if token.kind != "KEYWORD" or token.value != keyword:
            raise ParseError(f"expected {keyword.upper()!r}, got {token.value!r}",
                             token.position)
        return token

    def _match_keyword(self, *keywords: str) -> Token | None:
        token = self._peek()
        if token is not None and token.kind == "KEYWORD" and token.value in keywords:
            return self._advance()
        return None

    def _match_kind(self, kind: str) -> Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            return self._advance()
        return None

    # ------------------------------------------------------------- grammar
    def parse(self) -> SelectStatement:
        self._expect_keyword("select")
        columns = self._parse_select_list()
        self._expect_keyword("from")
        table, alias = self._parse_table_reference()
        join = self._parse_optional_join()
        where: Expression | None = None
        if self._match_keyword("where"):
            where = self._parse_or()
        order_by = self._parse_optional_order_by()
        limit = self._parse_optional_limit()
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(f"unexpected token {trailing.value!r}", trailing.position)
        return SelectStatement(
            columns=columns,
            table=table,
            alias=alias,
            join=join,
            where=where,
            order_by=order_by,
            limit=limit,
        )

    def _parse_select_list(self) -> list[str] | None:
        if self._match_kind("STAR"):
            return None
        columns = [self._parse_identifier().name]
        while self._match_kind("COMMA"):
            columns.append(self._parse_identifier().name)
        return columns

    def _parse_table_reference(self) -> tuple[str, str | None]:
        token = self._advance()
        if token.kind != "IDENT":
            raise ParseError(f"expected table name, got {token.value!r}", token.position)
        alias = None
        next_token = self._peek()
        if next_token is not None and next_token.kind == "IDENT":
            alias = self._advance().value
        return token.value, alias

    def _parse_optional_join(self) -> JoinClause | None:
        saw_inner = self._match_keyword("inner")
        if not self._match_keyword("join"):
            if saw_inner:
                raise ParseError("expected JOIN after INNER",
                                 saw_inner.position)
            return None
        table, alias = self._parse_table_reference()
        self._expect_keyword("on")
        left = self._parse_identifier()
        operator = self._advance()
        if operator.kind != "OP" or operator.value != "=":
            raise ParseError("JOIN conditions must be equalities", operator.position)
        right = self._parse_identifier()
        return JoinClause(table=table, alias=alias, left=left, right=right)

    def _parse_optional_order_by(self) -> OrderBy | None:
        if not self._match_keyword("order"):
            return None
        self._expect_keyword("by")
        column = self._parse_identifier()
        descending = False
        if self._match_keyword("desc"):
            descending = True
        else:
            self._match_keyword("asc")
        return OrderBy(column=column, descending=descending)

    def _parse_optional_limit(self) -> int | None:
        if not self._match_keyword("limit"):
            return None
        token = self._advance()
        if token.kind != "NUMBER":
            raise ParseError("LIMIT expects a number", token.position)
        return int(float(token.value))

    # ------------------------------------------------------ where grammar
    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._match_keyword("or"):
            operands.append(self._parse_and())
        return disjunction(operands)

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._match_keyword("and"):
            operands.append(self._parse_not())
        return conjunction(operands)

    def _parse_not(self) -> Expression:
        if self._match_keyword("not"):
            return NotExpression(self._parse_not())
        return self._parse_atom()

    def _parse_atom(self) -> Expression:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of WHERE clause", len(self._source))
        if token.kind == "LPAREN":
            self._advance()
            expression = self._parse_or()
            closing = self._advance()
            if closing.kind != "RPAREN":
                raise ParseError("expected ')'", closing.position)
            return expression
        if token.kind == "DQSTRING":
            self._advance()
            return SubjectivePredicate(self._unquote(token.value))
        if token.kind == "KEYWORD" and token.value in ("true", "false"):
            self._advance()
            return Literal(token.value == "true")
        return self._parse_condition()

    def _parse_condition(self) -> Expression:
        column = self._parse_identifier()
        if self._match_keyword("in"):
            return self._parse_in(column)
        if self._match_keyword("between"):
            low = self._parse_literal_value()
            self._expect_keyword("and")
            high = self._parse_literal_value()
            return BetweenExpression(column, low, high)
        operator = self._advance()
        if operator.kind != "OP":
            raise ParseError(
                f"expected comparison operator, got {operator.value!r}",
                operator.position,
            )
        op = "!=" if operator.value == "<>" else operator.value
        value = self._parse_literal_value()
        return ComparisonExpression(column, op, Literal(value))

    def _parse_in(self, column: ColumnReference) -> Expression:
        opening = self._advance()
        if opening.kind != "LPAREN":
            raise ParseError("IN expects a parenthesised list", opening.position)
        values = [self._parse_literal_value()]
        while self._match_kind("COMMA"):
            values.append(self._parse_literal_value())
        closing = self._advance()
        if closing.kind != "RPAREN":
            raise ParseError("expected ')' to close IN list", closing.position)
        return InExpression(column, tuple(values))

    def _parse_identifier(self) -> ColumnReference:
        token = self._advance()
        if token.kind != "IDENT":
            raise ParseError(f"expected identifier, got {token.value!r}", token.position)
        if "." in token.value:
            qualifier, name = token.value.split(".", 1)
            return ColumnReference(name=name, qualifier=qualifier)
        return ColumnReference(name=token.value)

    def _parse_literal_value(self):
        token = self._advance()
        if token.kind == "NUMBER":
            value = float(token.value)
            return int(value) if value.is_integer() and "." not in token.value else value
        if token.kind == "SQSTRING":
            return self._unquote(token.value)
        if token.kind == "KEYWORD" and token.value in ("true", "false"):
            return token.value == "true"
        if token.kind == "KEYWORD" and token.value == "null":
            return None
        raise ParseError(f"expected a literal, got {token.value!r}", token.position)

    @staticmethod
    def _unquote(quoted: str) -> str:
        body = quoted[1:-1]
        return body.replace('\\"', '"').replace("\\'", "'")


def parse_query(sql: str) -> SelectStatement:
    """Parse a subjective-SQL string into a :class:`SelectStatement`."""
    tokens = _lex(sql)
    if not tokens:
        raise ParseError("empty query")
    return _Parser(tokens, sql).parse()
