"""Expression AST for WHERE clauses, with objective evaluation semantics.

The AST has two kinds of leaves:

* *objective* conditions — comparisons, IN, BETWEEN over table columns —
  which evaluate to plain booleans against a row, and
* :class:`SubjectivePredicate` leaves — the quoted natural-language
  conditions of subjective SQL ("has really clean rooms") — which have no
  boolean value at the engine level.  The engine treats them as ``True``
  when asked for a boolean (so objective filtering still works) and exposes
  them to the query processor, which replaces them by fuzzy degrees of truth
  (Section 3).

``Expression.evaluate(row)`` gives the boolean semantics;
``Expression.fuzzy(row, scorer, logic)`` gives the fuzzy semantics where
``scorer(predicate_text, row)`` returns the degree of truth of a subjective
leaf and ``logic`` is a :class:`repro.core.fuzzy.FuzzyLogic` variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ExecutionError

SubjectiveScorer = Callable[[str, dict], float]


class Expression:
    """Base class for all WHERE-clause expression nodes."""

    def evaluate(self, row: dict) -> bool:
        """Boolean value of the expression for ``row`` (objective semantics)."""
        raise NotImplementedError

    def fuzzy(self, row: dict, scorer: SubjectiveScorer, logic: "Any") -> float:
        """Fuzzy degree of truth for ``row``.

        Objective sub-expressions contribute 0.0 or 1.0 (the paper interprets
        objective predicates as crisp values); subjective leaves are scored by
        ``scorer``; connectives combine through ``logic``.
        """
        raise NotImplementedError

    def subjective_predicates(self) -> list["SubjectivePredicate"]:
        """All subjective leaves in the expression, left to right."""
        return [node for node in self.walk() if isinstance(node, SubjectivePredicate)]

    def walk(self) -> Iterator["Expression"]:
        """Depth-first iteration over all nodes (self included)."""
        yield self

    def columns(self) -> set[str]:
        """Names of all table columns referenced by objective conditions."""
        return set()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value (number, string, boolean)."""

    value: Any

    def evaluate(self, row: dict) -> bool:
        return bool(self.value)

    def fuzzy(self, row: dict, scorer: SubjectiveScorer, logic: Any) -> float:
        return 1.0 if self.value else 0.0


@dataclass(frozen=True)
class ColumnReference(Expression):
    """A reference to a column, optionally qualified (``h.price_pn``)."""

    name: str
    qualifier: str | None = None

    def resolve(self, row: dict) -> Any:
        if self.name in row:
            return row[self.name]
        qualified = f"{self.qualifier}.{self.name}" if self.qualifier else None
        if qualified and qualified in row:
            return row[qualified]
        raise ExecutionError(f"unknown column {self.display_name!r}")

    @property
    def display_name(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def evaluate(self, row: dict) -> bool:
        return bool(self.resolve(row))

    def fuzzy(self, row: dict, scorer: SubjectiveScorer, logic: Any) -> float:
        return 1.0 if self.evaluate(row) else 0.0

    def columns(self) -> set[str]:
        return {self.name}


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class ComparisonExpression(Expression):
    """``column <op> literal`` (or literal <op> column)."""

    left: Expression
    operator: str
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _COMPARATORS:
            raise ExecutionError(f"unsupported comparison operator {self.operator!r}")

    @staticmethod
    def _value(node: Expression, row: dict) -> Any:
        if isinstance(node, ColumnReference):
            return node.resolve(row)
        if isinstance(node, Literal):
            return node.value
        raise ExecutionError("comparison operands must be columns or literals")

    def evaluate(self, row: dict) -> bool:
        left = self._value(self.left, row)
        right = self._value(self.right, row)
        if left is None or right is None:
            return False
        try:
            return _COMPARATORS[self.operator](left, right)
        except TypeError as error:
            raise ExecutionError(
                f"cannot compare {left!r} and {right!r}: {error}"
            ) from error

    def fuzzy(self, row: dict, scorer: SubjectiveScorer, logic: Any) -> float:
        return 1.0 if self.evaluate(row) else 0.0

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class InExpression(Expression):
    """``column IN (v1, v2, ...)``."""

    column: ColumnReference
    values: tuple

    def evaluate(self, row: dict) -> bool:
        return self.column.resolve(row) in self.values

    def fuzzy(self, row: dict, scorer: SubjectiveScorer, logic: Any) -> float:
        return 1.0 if self.evaluate(row) else 0.0

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.column.walk()

    def columns(self) -> set[str]:
        return self.column.columns()


@dataclass(frozen=True)
class BetweenExpression(Expression):
    """``column BETWEEN low AND high`` (inclusive)."""

    column: ColumnReference
    low: Any
    high: Any

    def evaluate(self, row: dict) -> bool:
        value = self.column.resolve(row)
        if value is None:
            return False
        return self.low <= value <= self.high

    def fuzzy(self, row: dict, scorer: SubjectiveScorer, logic: Any) -> float:
        return 1.0 if self.evaluate(row) else 0.0

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.column.walk()

    def columns(self) -> set[str]:
        return self.column.columns()


@dataclass(frozen=True)
class SubjectivePredicate(Expression):
    """A natural-language condition, e.g. ``"has really clean rooms"``.

    At the engine level it is inert (boolean value ``True``); the subjective
    query processor interprets it and supplies its degree of truth through
    the ``scorer`` callback.
    """

    text: str

    def evaluate(self, row: dict) -> bool:
        return True

    def fuzzy(self, row: dict, scorer: SubjectiveScorer, logic: Any) -> float:
        return float(scorer(self.text, row))


@dataclass(frozen=True)
class AndExpression(Expression):
    """Conjunction of two or more conditions."""

    operands: tuple[Expression, ...]

    def evaluate(self, row: dict) -> bool:
        return all(operand.evaluate(row) for operand in self.operands)

    def fuzzy(self, row: dict, scorer: SubjectiveScorer, logic: Any) -> float:
        scores = [operand.fuzzy(row, scorer, logic) for operand in self.operands]
        return logic.conjunction(scores)

    def walk(self) -> Iterator[Expression]:
        yield self
        for operand in self.operands:
            yield from operand.walk()

    def columns(self) -> set[str]:
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.columns()
        return result


@dataclass(frozen=True)
class OrExpression(Expression):
    """Disjunction of two or more conditions."""

    operands: tuple[Expression, ...]

    def evaluate(self, row: dict) -> bool:
        return any(operand.evaluate(row) for operand in self.operands)

    def fuzzy(self, row: dict, scorer: SubjectiveScorer, logic: Any) -> float:
        scores = [operand.fuzzy(row, scorer, logic) for operand in self.operands]
        return logic.disjunction(scores)

    def walk(self) -> Iterator[Expression]:
        yield self
        for operand in self.operands:
            yield from operand.walk()

    def columns(self) -> set[str]:
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.columns()
        return result


@dataclass(frozen=True)
class NotExpression(Expression):
    """Negation of a condition."""

    operand: Expression

    def evaluate(self, row: dict) -> bool:
        return not self.operand.evaluate(row)

    def fuzzy(self, row: dict, scorer: SubjectiveScorer, logic: Any) -> float:
        return logic.negation(self.operand.fuzzy(row, scorer, logic))

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.operand.walk()

    def columns(self) -> set[str]:
        return self.operand.columns()


def conjunction(operands: Sequence[Expression]) -> Expression:
    """Build a (possibly degenerate) conjunction from ``operands``."""
    operands = list(operands)
    if not operands:
        return Literal(True)
    if len(operands) == 1:
        return operands[0]
    return AndExpression(tuple(operands))


def disjunction(operands: Sequence[Expression]) -> Expression:
    """Build a (possibly degenerate) disjunction from ``operands``."""
    operands = list(operands)
    if not operands:
        return Literal(False)
    if len(operands) == 1:
        return operands[0]
    return OrExpression(tuple(operands))
