"""In-memory relational engine with a subjective-SQL parser.

The paper implements OpineDB's query engine on top of PostgreSQL and parses
subjective SQL with ``sqlparse``.  This package provides the equivalent
substrate from scratch: typed table schemas, in-memory tables, an expression
AST, a recursive-descent SQL parser that accepts quoted natural-language
predicates inside the WHERE clause, and an executor for
select–project–filter–join–order–limit plans.
"""

from repro.engine.types import ColumnType
from repro.engine.schema import Column, TableSchema
from repro.engine.table import Row, Table
from repro.engine.database import Database
from repro.engine.expressions import (
    AndExpression,
    BetweenExpression,
    ColumnReference,
    ComparisonExpression,
    Expression,
    InExpression,
    Literal,
    NotExpression,
    OrExpression,
    SubjectivePredicate,
)
from repro.engine.sqlparser import parse_query
from repro.engine.executor import QueryExecutor, SelectStatement

__all__ = [
    "ColumnType",
    "Column",
    "TableSchema",
    "Row",
    "Table",
    "Database",
    "Expression",
    "Literal",
    "ColumnReference",
    "ComparisonExpression",
    "AndExpression",
    "OrExpression",
    "NotExpression",
    "InExpression",
    "BetweenExpression",
    "SubjectivePredicate",
    "parse_query",
    "SelectStatement",
    "QueryExecutor",
]
