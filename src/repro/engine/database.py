"""A named collection of tables plus SQL entry points and JSON persistence."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

from repro.engine.executor import QueryExecutor, SelectStatement
from repro.engine.schema import Column, TableSchema
from repro.engine.sqlparser import parse_query
from repro.engine.table import Row, Table
from repro.engine.types import ColumnType
from repro.errors import ExecutionError, SchemaError


class Database:
    """An in-memory relational database: create tables, insert, query.

    Table names are case-insensitive (SQL convention); the original casing
    is preserved for display.
    """

    def __init__(self, name: str = "opinedb") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._display_names: dict[str, str] = {}

    # --------------------------------------------------------------- tables
    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from ``schema``; duplicate names are rejected."""
        key = schema.name.lower()
        if key in self._tables:
            raise SchemaError(f"table already exists: {schema.name!r}")
        table = Table(schema)
        self._tables[key] = table
        self._display_names[key] = schema.name
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table (raises if it does not exist)."""
        key = name.lower()
        if key not in self._tables:
            raise ExecutionError(f"no such table: {name!r}")
        del self._tables[key]
        del self._display_names[key]

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        key = name.lower()
        if key not in self._tables:
            raise ExecutionError(f"no such table: {name!r}")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return [self._display_names[key] for key in sorted(self._tables)]

    def insert(self, table_name: str, rows: Iterable[Mapping]) -> int:
        """Insert rows into ``table_name``; returns the number inserted."""
        return self.table(table_name).insert_many(rows)

    # ---------------------------------------------------------------- query
    def execute(self, sql: str) -> list[Row]:
        """Parse and execute a SQL string with objective semantics.

        Subjective predicates in the WHERE clause are ignored (treated as
        true); use :class:`repro.core.processor.SubjectiveQueryProcessor`
        for full subjective semantics.
        """
        statement = parse_query(sql)
        return self.execute_statement(statement)

    def execute_statement(self, statement: SelectStatement) -> list[Row]:
        return QueryExecutor(self).execute(statement)

    # ---------------------------------------------------------- persistence
    def dump(self, path: str | Path) -> None:
        """Serialise all tables (schema + rows) to a JSON file."""
        payload = {
            "name": self.name,
            "tables": [
                {
                    "name": table.schema.name,
                    "key": table.schema.key,
                    "columns": [
                        {
                            "name": column.name,
                            "type": column.type.value,
                            "nullable": column.nullable,
                        }
                        for column in table.schema.columns
                    ],
                    "rows": table.scan(),
                }
                for table in (self._tables[key] for key in sorted(self._tables))
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2, default=str))

    @classmethod
    def load(cls, path: str | Path) -> "Database":
        """Rebuild a database previously written by :meth:`dump`."""
        payload = json.loads(Path(path).read_text())
        database = cls(payload.get("name", "opinedb"))
        for table_payload in payload["tables"]:
            schema = TableSchema(
                name=table_payload["name"],
                key=table_payload.get("key"),
                columns=[
                    Column(
                        name=column["name"],
                        type=ColumnType(column["type"]),
                        nullable=column.get("nullable", True),
                    )
                    for column in table_payload["columns"]
                ],
            )
            table = database.create_table(schema)
            table.insert_many(table_payload["rows"])
        return database
