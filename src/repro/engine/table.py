"""In-memory tables: row storage, key uniqueness, scans and key lookups."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.engine.schema import TableSchema
from repro.errors import ExecutionError, SchemaError

Row = dict[str, Any]


class Table:
    """A heap of rows conforming to a :class:`TableSchema`.

    Rows are plain dictionaries validated on insert.  When the schema defines
    a key, a hash index on the key column is maintained for point lookups
    (the subjective query processor looks up marker summaries by entity key).
    """

    def __init__(self, schema: TableSchema) -> None:
        self._schema = schema
        self._rows: list[Row] = []
        self._key_index: dict[Any, int] = {}

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def insert(self, values: Mapping[str, Any]) -> Row:
        """Validate and insert one row; returns the stored row."""
        row = self._schema.validate_row(values)
        key = self._schema.key
        if key is not None:
            key_value = row[key]
            if key_value is None:
                raise SchemaError(
                    f"key column {key!r} of table {self.name!r} must not be NULL"
                )
            if key_value in self._key_index:
                raise SchemaError(
                    f"duplicate key {key_value!r} in table {self.name!r}"
                )
            self._key_index[key_value] = len(self._rows)
        self._rows.append(row)
        return row

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def get(self, key_value: Any) -> Row | None:
        """Point lookup by key value (requires a keyed schema)."""
        if self._schema.key is None:
            raise ExecutionError(f"table {self.name!r} has no key column")
        index = self._key_index.get(key_value)
        if index is None:
            return None
        return self._rows[index]

    def scan(self, predicate: Callable[[Row], bool] | None = None) -> list[Row]:
        """Full scan, optionally filtered by a row predicate."""
        if predicate is None:
            return list(self._rows)
        return [row for row in self._rows if predicate(row)]

    def update(self, key_value: Any, changes: Mapping[str, Any]) -> Row:
        """Update columns of the row with the given key."""
        row = self.get(key_value)
        if row is None:
            raise ExecutionError(
                f"no row with key {key_value!r} in table {self.name!r}"
            )
        merged = dict(row)
        merged.update(changes)
        validated = self._schema.validate_row(merged)
        row.update(validated)
        return row

    def keys(self) -> list[Any]:
        """All key values in insertion order (requires a keyed schema)."""
        if self._schema.key is None:
            raise ExecutionError(f"table {self.name!r} has no key column")
        return [row[self._schema.key] for row in self._rows]

    def column_values(self, column: str) -> list[Any]:
        """All values of one column, in row order."""
        if not self._schema.has_column(column):
            raise SchemaError(f"table {self.name!r} has no column {column!r}")
        return [row[column] for row in self._rows]
