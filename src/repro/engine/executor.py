"""Execution of parsed SELECT statements over a :class:`Database`.

The executor implements the relational part of query processing: scan the
FROM table, apply the optional join, filter by the objective value of the
WHERE clause, project, order and limit.  Subjective predicates are treated
as always-true at this level — the subjective query processor in
:mod:`repro.core.processor` re-uses the same plan but replaces the boolean
filter by fuzzy scoring and ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.expressions import ColumnReference, Expression
from repro.engine.table import Row
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.database import Database


@dataclass(frozen=True)
class JoinClause:
    """An inner equi-join: ``JOIN table [alias] ON left = right``."""

    table: str
    alias: str | None
    left: ColumnReference
    right: ColumnReference


@dataclass(frozen=True)
class OrderBy:
    """ORDER BY a single column, ascending by default."""

    column: ColumnReference
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed single-block subjective-SQL query."""

    table: str
    alias: str | None = None
    columns: list[str] | None = None
    join: JoinClause | None = None
    where: Expression | None = None
    order_by: OrderBy | None = None
    limit: int | None = None

    def subjective_predicates(self) -> list[str]:
        """Texts of all subjective predicates in the WHERE clause."""
        if self.where is None:
            return []
        return [predicate.text for predicate in self.where.subjective_predicates()]

    def has_subjective_predicates(self) -> bool:
        return bool(self.subjective_predicates())


@dataclass
class QueryExecutor:
    """Evaluates :class:`SelectStatement` objects against a database."""

    database: "Database"
    _default_limit: int | None = field(default=None)

    def execute(self, statement: SelectStatement) -> list[Row]:
        """Run ``statement`` with objective (boolean) semantics."""
        rows = self.candidate_rows(statement)
        rows = self.order_and_limit(rows, statement)
        return self.project_rows(rows, statement.columns)

    def candidate_rows(self, statement: SelectStatement) -> list[Row]:
        """Rows passing only the *objective* part of the WHERE clause.

        Used by the subjective query processor and the serving engine: the
        objective predicates act as a crisp pre-filter (they evaluate to 0 or
        1 in the fuzzy semantics, and subjective leaves are inert ``True`` at
        this level) and the surviving rows are then ranked by fuzzy degree of
        truth.  This is the candidate-generation primitive shared by both the
        boolean :meth:`execute` path and the batch scoring path.
        """
        rows = self._scan_from(statement)
        if statement.where is None:
            return rows
        return [row for row in rows if statement.where.evaluate(row)]

    def order_and_limit(self, rows: list[Row], statement: SelectStatement) -> list[Row]:
        """Apply the statement's ORDER BY and LIMIT to already-filtered rows."""
        rows = self._order(rows, statement.order_by)
        limit = statement.limit if statement.limit is not None else self._default_limit
        if limit is not None:
            rows = rows[:limit]
        return rows

    def project_rows(self, rows: list[Row], columns: list[str] | None) -> list[Row]:
        """Project each row onto ``columns`` (all unqualified columns when None)."""
        return [self._project(row, columns) for row in rows]

    # ------------------------------------------------------------ internal
    def _scan_from(self, statement: SelectStatement) -> list[Row]:
        table = self.database.table(statement.table)
        rows = [dict(row) for row in table.scan()]
        rows = [self._qualify(row, statement.alias) for row in rows]
        if statement.join is not None:
            rows = self._apply_join(rows, statement.join)
        return rows

    @staticmethod
    def _qualify(row: Row, alias: str | None) -> Row:
        if alias is None:
            return row
        qualified = dict(row)
        for key, value in row.items():
            qualified[f"{alias}.{key}"] = value
        return qualified

    def _apply_join(self, rows: list[Row], join: JoinClause) -> list[Row]:
        other = self.database.table(join.table)
        other_rows = [self._qualify(dict(row), join.alias) for row in other.scan()]
        joined: list[Row] = []
        for row in rows:
            left_value = self._join_value(row, join.left)
            for other_row in other_rows:
                right_value = self._join_value(other_row, join.right)
                if left_value is not None and left_value == right_value:
                    merged = dict(other_row)
                    merged.update(row)
                    joined.append(merged)
        return joined

    @staticmethod
    def _join_value(row: Row, reference: ColumnReference):
        try:
            return reference.resolve(row)
        except ExecutionError:
            return None

    @staticmethod
    def _order(rows: list[Row], order_by: OrderBy | None) -> list[Row]:
        if order_by is None:
            return rows
        def sort_key(row: Row):
            value = order_by.column.resolve(row)
            # Sort None last regardless of direction.
            return (value is None, value)
        return sorted(rows, key=sort_key, reverse=order_by.descending)

    @staticmethod
    def _project(row: Row, columns: list[str] | None) -> Row:
        if columns is None:
            return {key: value for key, value in row.items() if "." not in key}
        missing = [column for column in columns if column not in row]
        if missing:
            raise ExecutionError(f"projection references unknown columns: {missing}")
        return {column: row[column] for column in columns}
