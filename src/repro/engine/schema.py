"""Table schemas: named, typed columns with a designated key."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.engine.types import ColumnType
from repro.errors import SchemaError


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    type: ColumnType
    nullable: bool = True

    def validate(self, value: Any) -> Any:
        if value is None and not self.nullable:
            raise SchemaError(f"column {self.name!r} does not allow NULL")
        return self.type.validate(value)


@dataclass
class TableSchema:
    """Schema of one relation: R(K, A1, ..., An) with ``key`` = K.

    The paper assumes a single-attribute key per relation (Section 2); the
    engine enforces that keys exist and are unique at insert time.
    """

    name: str
    columns: list[Column]
    key: str | None = None
    _by_name: dict[str, Column] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must not be empty")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} needs at least one column")
        for column in self.columns:
            if column.name in self._by_name:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            self._by_name[column.name] = column
        if self.key is not None and self.key not in self._by_name:
            raise SchemaError(
                f"key column {self.key!r} not defined in table {self.name!r}"
            )

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def validate_row(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and normalise one row mapping against the schema.

        Unknown columns are rejected; missing columns become NULL (subject to
        nullability checks).
        """
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(
                f"unknown columns for table {self.name!r}: {sorted(unknown)}"
            )
        row: dict[str, Any] = {}
        for column in self.columns:
            row[column.name] = column.validate(values.get(column.name))
        return row


def make_schema(
    name: str,
    columns: Iterable[tuple[str, ColumnType]],
    key: str | None = None,
) -> TableSchema:
    """Convenience constructor from (name, type) pairs."""
    return TableSchema(
        name=name,
        columns=[Column(column_name, column_type) for column_name, column_type in columns],
        key=key,
    )
