"""Column types supported by the relational engine."""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """The value domains a column can hold.

    ``SUMMARY`` is the engine-level type behind the data model's marker
    summaries: the stored value is an opaque mapping (marker name -> count)
    plus auxiliary statistics; the engine stores and retrieves it but never
    compares it with the ordinary comparison operators.
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    SUMMARY = "summary"

    def validate(self, value: Any) -> Any:
        """Coerce/validate ``value`` for this type; ``None`` is always allowed."""
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected integer, got {value!r}")
            if isinstance(value, float) and not value.is_integer():
                raise SchemaError(f"expected integer, got {value!r}")
            return int(value)
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected float, got {value!r}")
            return float(value)
        if self is ColumnType.TEXT:
            if not isinstance(value, str):
                raise SchemaError(f"expected text, got {value!r}")
            return value
        if self is ColumnType.BOOLEAN:
            if not isinstance(value, bool):
                raise SchemaError(f"expected boolean, got {value!r}")
            return value
        if self is ColumnType.SUMMARY:
            return value
        raise SchemaError(f"unsupported column type: {self}")

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.FLOAT)
