"""Cluster transport: TCP shard nodes, snapshot hydration, a concurrent coordinator.

PR 4 put the entity shards behind a service boundary, but the boundary was
a local socketpair and the workers were forks — the column data reached
them implicitly, by copy-on-write inheritance, and the coordinator executed
queries strictly one at a time.  This module removes both limits and turns
the stack into a true multi-node engine:

* :class:`ShardNodeServer` — a shard worker that listens on **TCP** and
  speaks exactly the frame protocol of :mod:`repro.serving.protocol` (the
  same codec the socketpair path uses — one definition, no drift).  Every
  connection opens with a versioned ``hello`` handshake carrying the
  protocol version, the node's ``data_version`` and its owned slice ids;
  version skew is a typed :class:`~repro.serving.protocol.HandshakeError`,
  never a hang.  The node holds **no database**: its column slices arrive
  over the wire as packed :class:`~repro.core.columnar.ColumnSnapshot`
  bytes (``hydrate`` frames) — deterministic, checksummed, bit-exact — so
  a node can run in any process on any machine, not just a fork of the
  coordinator;
* :class:`ClusterShardStore` — the coordinator side: implements the same
  ``pair_degrees`` protocol as every other columnar store over a registry
  of node connections.  Requests are **pipelined** through per-node
  send/receive queues with a bounded in-flight window (a select-driven
  pump keeps every node fed while responses stream back), slices are
  hydrated lazily per ``(node, attribute, slice)`` and re-hydrated after
  every ``data_version`` bump, and a lost connection or dead node surfaces
  as the same :class:`~repro.serving.protocol.WorkerCrashedError` the RPC
  layer raises — the fleet reconnects or respawns on the next query;
* :class:`ClusterQueryEngine` — subclasses the sharded engine, so
  WHERE-tree vectorization and the exact ``(-score, str(entity_id),
  position)`` top-k merge are reused verbatim, and adds a **concurrent**
  :meth:`~ClusterQueryEngine.run_batch`: a bounded window of queries is
  planned ahead and their uncached degree fan-outs are issued to the nodes
  before earlier queries finish ranking, so node latency hides under
  coordinator CPU.  Results are bit-identical to serial execution — the
  prefetch only warms the same caches the serial path would fill, with the
  same deterministic values (every kernel is row-independent, so batching
  composition cannot change a single bit).

Exact equality is pinned by ``tests/test_serving_cluster.py``: rankings,
scores and degrees equal to the unsharded engine over TCP for node counts
{1, 2, 4} on two domains, including mid-batch ingest (snapshot
re-hydration) and node loss → :class:`WorkerCrashedError` → recovery.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import select
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.core.columnar import (
    AttributeColumns,
    ColumnarSummaryStore,
    ColumnSnapshot,
    ScoreBounds,
    SnapshotDelta,
    bounded_pair_degrees,
    columnar_kernel,
    gather_degrees,
    gather_rows,
    plan_slice_requests,
    scalar_fallback_scorer,
)
from repro.core.database import SubjectiveDatabase
from repro.core.interpreter import InterpretationMethod
from repro.core.processor import SubjectiveQueryProcessor
from repro.errors import SnapshotError
from repro.obs.metrics import MetricsRegistry, cell_property
from repro.obs.trace import current_wire_trace, global_trace_store, record_span, span
from repro.serving.cache import LRUCache
from repro.serving.engine import BatchResult
from repro.serving.plans import normalize_sql
from repro.serving.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    OP_HELLO,
    OP_HYDRATE,
    OP_HYDRATE_DELTA,
    OP_INVALIDATE,
    OP_SCORE,
    OP_SCORE_BOUNDED,
    OP_SHUTDOWN,
    OP_STATS,
    OP_TRACES,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    TRACE_PROTOCOL_VERSION,
    STATUS_ERROR,
    STATUS_OK,
    FrameTooLargeError,
    HandshakeError,
    Reader,
    RpcError,
    WorkerCrashedError,
    encode_error,
    encode_hello,
    encode_hello_ack,
    encode_hydrate_delta_request,
    encode_hydrate_request,
    encode_invalidate_request,
    encode_score_bounded_request,
    encode_score_bounded_response,
    encode_score_request,
    encode_traces_request,
    frame_bytes,
    pack_str,
    read_hello_ack,
    read_score_bounded_response,
    read_trace_field,
    recv_frame,
    send_frame,
)
from repro.utils.timing import now
from repro.serving.rpc import DEFAULT_WORKER_CACHE_SIZE
from repro.serving.sharded import (
    ShardedSubjectiveQueryEngine,
    default_num_shards,
    partition_bounds,
)

from repro.serving.protocol import (
    _HEADER,
    _U8,
    _U32,
    _U64,
)

#: Default bound on score/hydrate requests in flight per node connection.
DEFAULT_INFLIGHT_WINDOW = 32

#: Default bound on batch queries whose fan-outs may overlap in
#: :meth:`ClusterQueryEngine.run_batch`.
DEFAULT_MAX_INFLIGHT_QUERIES = 16

#: Default seconds allowed for connecting + handshaking with one node.
DEFAULT_CONNECT_TIMEOUT = 10.0

#: Default seconds a fan-out may wait on node responses before the
#: affected nodes are treated as crashed.
DEFAULT_IO_TIMEOUT = 60.0

#: Sentinel distinguishing "absent from the cache" from cached ``None``
#: during batch prefetch probing.
_PREFETCH_MISSING = object()


# --------------------------------------------------------------------------
# The shard node (server side)
# --------------------------------------------------------------------------

class ShardNodeServer:
    """One TCP shard node: hydrated column slices, scored over the wire.

    Unlike the fork-based :class:`~repro.serving.rpc.ShardServiceWorker`,
    the node owns **no database** — it is constructed with only the
    membership function (the scoring model, a deployment artifact) and
    receives its column data as packed
    :class:`~repro.core.columnar.ColumnSnapshot` bytes through ``hydrate``
    frames.  Snapshots are checksummed and bit-exact, so a hydrated node
    computes exactly the degrees the coordinator's own store would.

    Every connection must open with a ``hello`` frame; the node refuses a
    protocol version other than its own with a transported error (a typed
    :class:`~repro.serving.protocol.HandshakeError` on the client side) and
    otherwise acknowledges with its protocol version, the ``data_version``
    of its hydrated snapshots (0 before any hydration) and the slice ids
    it currently owns.  Scored slice vectors are memoised per slice; an
    ``invalidate`` frame carrying a *newer* data version drops the hydrated
    slices too, so the next scores can only be served after re-hydration.

    ``serve_forever`` accepts connections sequentially (the coordinator
    holds one pipelined connection per node and reconnects after a loss);
    :meth:`stop` wakes and stops the accept loop.  ``handle_frame`` is the
    transport-free dispatch used directly by in-process tests.
    """

    def __init__(
        self,
        node_id: int = 0,
        membership: object | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        cache_size: int | None = DEFAULT_WORKER_CACHE_SIZE,
        data_dir: str | None = None,
    ) -> None:
        self.node_id = node_id
        self.membership = membership
        self.max_frame_bytes = max_frame_bytes
        self.cache_size = cache_size
        self.data_dir = data_dir
        self.data_version = 0
        # Warm-restart path: a node given ``data_dir`` maps the persistent
        # storage tier's column files and adopts the catalog's durable
        # ``data_version`` as its own, so the hello acknowledgement
        # advertises a local store the coordinator can skip ``hydrate``
        # frames for.  An unreadable or corrupt directory downgrades to the
        # ordinary wire-hydrated cold start — never a refusal to serve.
        self._local: "object | None" = None
        if data_dir is not None:
            from repro.errors import StorageError
            from repro.storage import StoreReader

            try:
                self._local = StoreReader(data_dir).verify()
            except StorageError:
                self._local = None
            else:
                self.data_version = self._local.data_version
        self._slices: dict[tuple[str, int], ColumnSnapshot] = {}
        # One generation of superseded snapshots, kept as delta bases: an
        # ``invalidate`` (or the first snapshot of a newer version) retires
        # the current slices here instead of discarding them, so a
        # subsequent ``hydrate delta`` built against the retired version
        # can re-hydrate without re-downloading unchanged rows.  Never
        # served from — scoring reads ``_slices`` only.
        self._stale: dict[tuple[str, int], ColumnSnapshot] = {}
        self._stale_version = 0
        # Degree-vector memos, one bounded cache per hydrated
        # (attribute, slice) — re-hydrating one attribute's slice must not
        # evict another attribute's still-valid vectors.
        self._caches: dict[tuple[str, int], LRUCache] = {}
        # Bound summaries per hydrated (attribute, slice), built lazily
        # from the snapshot's columns on the first bounded score and
        # dropped wherever the snapshot itself is dropped.
        self._bounds: dict[tuple[str, int], ScoreBounds] = {}
        self._listener: socket.socket | None = None
        self._active: socket.socket | None = None
        self._stopped = False
        # Protocol version agreed at the last hello (min of both peers);
        # pre-handshake frames are served at the node's own version.
        self.negotiated_version = PROTOCOL_VERSION
        self.metrics = MetricsRegistry()
        self._score_requests_cell = self.metrics.counter(
            "score_requests", help="Exact score frames served"
        )
        self._bounded_requests_cell = self.metrics.counter(
            "bounded_requests", help="Bounded score frames served"
        )
        self._kernel_calls_cell = self.metrics.counter(
            "kernel_calls", help="Columnar kernel invocations (cache misses)"
        )
        self._entities_scored_cell = self.metrics.counter(
            "entities_scored", help="Requested rows scored exactly (bounded path)"
        )
        self._entities_pruned_cell = self.metrics.counter(
            "entities_pruned", help="Requested rows dismissed on a bound alone"
        )
        self._hydrations_cell = self.metrics.counter(
            "hydrations", help="Full snapshot installs over the wire"
        )
        self._delta_hydrations_cell = self.metrics.counter(
            "delta_hydrations", help="Snapshots rebuilt locally from a delta"
        )
        self._local_hydrations_cell = self.metrics.counter(
            "local_hydrations", help="Snapshots served from the local mmap store"
        )
        self._invalidations_cell = self.metrics.counter(
            "invalidations", help="Invalidate frames that dropped hydrated state"
        )
        self._connections_cell = self.metrics.counter(
            "connections", help="Coordinator connections accepted"
        )

    score_requests = cell_property("_score_requests_cell")
    bounded_requests = cell_property("_bounded_requests_cell")
    kernel_calls = cell_property("_kernel_calls_cell")
    entities_scored = cell_property("_entities_scored_cell")
    entities_pruned = cell_property("_entities_pruned_cell")
    hydrations = cell_property("_hydrations_cell")
    delta_hydrations = cell_property("_delta_hydrations_cell")
    local_hydrations = cell_property("_local_hydrations_cell")
    invalidations = cell_property("_invalidations_cell")
    connections = cell_property("_connections_cell")

    # ------------------------------------------------------------- lifecycle
    def bind(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Open the TCP listener; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — read :attr:`address` after.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(8)
        self._listener = listener
        return self.address

    def adopt_listener(self, listener: socket.socket) -> None:
        """Serve on an already-bound listening socket (forked node entry)."""
        self._listener = listener

    @property
    def address(self) -> tuple[str, int]:
        """The listener's bound ``(host, port)``."""
        if self._listener is None:
            raise RpcError("node is not bound; call bind() first")
        return self._listener.getsockname()

    @property
    def owned_slice_ids(self) -> list[int]:
        """Slice ids currently hydrated on this node (sorted)."""
        return sorted({slice_id for _, slice_id in self._slices})

    def stop(self) -> None:
        """Stop the accept loop and close the listener (thread-safe wake)."""
        self._stopped = True
        listener = self._listener
        if listener is not None:
            try:
                # Wake a blocked accept() portably with a throwaway connect.
                with socket.create_connection(listener.getsockname(), timeout=1):
                    pass
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass
        active = self._active
        if active is not None:
            try:
                active.close()
            except OSError:
                pass

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` or ``shutdown``."""
        if self._listener is None:
            raise RpcError("node is not bound; call bind() first")
        while not self._stopped:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                break
            if self._stopped:
                connection.close()
                break
            self.connections += 1
            self._active = connection
            try:
                self._serve_connection(connection)
            finally:
                self._active = None
                try:
                    connection.close()
                except OSError:
                    pass
        try:
            self._listener.close()
        except OSError:
            pass

    # ------------------------------------------------------------ connection
    def _serve_connection(self, sock: socket.socket) -> None:
        """One connection: hello handshake first, then the framed loop."""
        try:
            first = recv_frame(sock, self.max_frame_bytes)
        except (RpcError, OSError):
            return
        if first is None:
            return
        response, accepted = self._handle_hello(first)
        try:
            send_frame(sock, response, self.max_frame_bytes)
        except OSError:
            return
        if not accepted:
            return
        while not self._stopped:
            try:
                payload = recv_frame(sock, self.max_frame_bytes)
            except FrameTooLargeError as error:
                # The stream cannot be resynchronised after refusing a
                # frame; report why, then drop the connection.
                try:
                    send_frame(sock, encode_error(str(error)), self.max_frame_bytes)
                except OSError:
                    pass
                return
            except (RpcError, OSError):
                return  # peer vanished mid-frame
            if payload is None:
                return  # clean EOF: the coordinator closed its end
            response, stop = self.handle_frame(payload)
            try:
                send_frame(sock, response, self.max_frame_bytes)
            except OSError:
                return
            if stop:
                self._stopped = True
                return

    def _handle_hello(self, payload: bytes) -> tuple[bytes, bool]:
        """Validate the connection-opening hello; ``(response, accepted?)``."""
        try:
            reader = Reader(payload)
            opcode = reader.read_u8()
            if opcode != OP_HELLO:
                return (
                    encode_error(
                        f"expected a hello frame to open the connection, got opcode {opcode}"
                    ),
                    False,
                )
            peer_version = reader.read_u32()
            reader.read_u64()  # the coordinator's data_version (diagnostic)
        except RpcError as error:
            return encode_error(f"malformed hello frame ({error})"), False
        if peer_version not in SUPPORTED_PROTOCOL_VERSIONS:
            return (
                encode_error(
                    f"protocol version mismatch: peer speaks {peer_version}, "
                    f"node supports {sorted(SUPPORTED_PROTOCOL_VERSIONS)}"
                ),
                False,
            )
        # The connection runs at the lower of the two versions: a v4
        # coordinator sees a v4 ack and never learns about trace fields.
        self.negotiated_version = min(peer_version, PROTOCOL_VERSION)
        ack = encode_hello_ack(
            self.negotiated_version,
            self.data_version,
            self.owned_slice_ids,
            local_store=self._local_store_fresh,
        )
        return ack, True

    # ------------------------------------------------------------- dispatch
    def handle_frame(self, payload: bytes) -> tuple[bytes, bool]:
        """One request payload → ``(response payload, stop serving?)``.

        Node-side failures are transported as error responses, never
        exceptions — a bad request must not take the node down.
        """
        try:
            reader = Reader(payload)
            opcode = reader.read_u8()
            if opcode == OP_SCORE:
                return self._handle_score(reader), False
            if opcode == OP_SCORE_BOUNDED:
                return self._handle_score_bounded(reader), False
            if opcode == OP_HYDRATE:
                return self._handle_hydrate(reader), False
            if opcode == OP_HYDRATE_DELTA:
                return self._handle_hydrate_delta(reader), False
            if opcode == OP_INVALIDATE:
                return self._handle_invalidate(reader), False
            if opcode == OP_STATS:
                return self._handle_stats(), False
            if opcode == OP_TRACES:
                return self._handle_traces(reader), False
            if opcode == OP_HELLO:
                return self._handle_hello(payload)[0], False
            if opcode == OP_SHUTDOWN:
                return _U8.pack(STATUS_OK), True
            return encode_error(f"unknown opcode {opcode}"), False
        except Exception as error:  # noqa: BLE001 - transported to the peer
            return encode_error(f"{type(error).__name__}: {error}"), False

    def _retire_slices(self, new_version: int) -> None:
        """Supersede every hydrated slice, keeping one generation as delta bases.

        A new data version invalidates all current slices together —
        mixed-version scoring is impossible by construction.  Instead of
        discarding them, the slices are retired to :attr:`_stale` (tagged
        with their version) so a later ``hydrate delta`` against that
        version can rebuild locally instead of re-downloading.
        """
        if self._slices:
            self._stale = dict(self._slices)
            self._stale_version = self.data_version
        self._slices = {}
        self._caches.clear()
        self._bounds.clear()
        self.data_version = new_version

    def _install_snapshot(self, snapshot: ColumnSnapshot) -> bytes:
        """Install one unpacked snapshot; the shared hydrate OK response."""
        if snapshot.data_version != self.data_version:
            self._retire_slices(snapshot.data_version)
        key = (snapshot.columns.attribute, snapshot.slice_id)
        self._slices[key] = snapshot
        self._caches.pop(key, None)
        self._bounds.pop(key, None)
        self.hydrations += 1
        return (
            _U8.pack(STATUS_OK)
            + _U64.pack(self.data_version)
            + _U32.pack(snapshot.columns.num_entities)
        )

    def _handle_hydrate(self, reader: Reader) -> bytes:
        try:
            snapshot = ColumnSnapshot.unpack(reader.read_rest())
        except SnapshotError as error:
            return encode_error(f"{type(error).__name__}: {error}")
        return self._install_snapshot(snapshot)

    def _handle_hydrate_delta(self, reader: Reader) -> bytes:
        """Re-hydrate one slice from a delta over a base the node still holds.

        The base is looked up first among the live slices (the delta's base
        version may still be current here) and then among the retired
        generation.  A missing or version-skewed base, a corrupt frame, or
        a delta whose expectations do not match the base all transport a
        typed error back — the coordinator responds by re-shipping a full
        snapshot; the node never installs a doubtful slice.
        """
        try:
            delta = SnapshotDelta.unpack(reader.read_rest())
        except SnapshotError as error:
            return encode_error(f"{type(error).__name__}: {error}")
        key = (delta.columns.attribute, delta.slice_id)
        base: ColumnSnapshot | None = None
        if self.data_version == delta.base_version:
            base = self._slices.get(key)
        if base is None and self._stale_version == delta.base_version:
            base = self._stale.get(key)
        if base is None:
            return encode_error(
                f"SnapshotError: node {self.node_id} holds no base snapshot at "
                f"version {delta.base_version} for slice {delta.slice_id} of "
                f"{delta.columns.attribute!r} (have version {self.data_version}, "
                f"stale {self._stale_version}); ship a full snapshot"
            )
        try:
            snapshot = delta.apply(base)
        except SnapshotError as error:
            return encode_error(f"{type(error).__name__}: {error}")
        response = self._install_snapshot(snapshot)
        self.delta_hydrations += 1
        return response

    def _handle_score(self, reader: Reader) -> bytes:
        slice_id = reader.read_u32()
        attribute = reader.read_str()
        phrase = reader.read_str()
        start = reader.read_u32()
        stop = reader.read_u32()
        rows: list[int] | None = None
        if reader.read_u8():
            rows = reader.read_u32_array(reader.read_u32())
        trace = read_trace_field(reader)
        started = now()
        self.score_requests += 1
        key = (phrase, start, stop, tuple(rows) if rows is not None else None)
        cache = self._caches.get((attribute, slice_id))
        if cache is None:
            cache = self._caches[(attribute, slice_id)] = LRUCache(self.cache_size)
        vector = cache.get(key)
        cached = vector is not None
        if vector is None:
            vector = self._score(slice_id, attribute, phrase, start, stop, rows)
            cache.put(key, vector)
        if trace is not None:
            record_span(
                "node_score",
                trace_id=trace[0],
                parent_id=trace[1],
                duration=now() - started,
                node=self.node_id,
                slice_id=slice_id,
                attribute=attribute,
                cached=cached,
            )
        return _U8.pack(STATUS_OK) + _U32.pack(len(vector)) + vector.astype(">f8").tobytes()

    @property
    def _local_store_fresh(self) -> bool:
        """Whether the node's local store matches its current data version.

        True only while no ``invalidate`` (or newer-versioned hydrate) has
        moved the node past the catalog the store was opened from — a stale
        store must never answer a score, exactly as a stale snapshot never
        does.
        """
        local = self._local
        return local is not None and self.data_version == local.data_version

    def _local_slice(
        self, attribute: str, slice_id: int, start: int, stop: int
    ) -> "ColumnSnapshot | None":
        """Carve one slice out of the local mmap store instead of the wire.

        Returns ``None`` whenever the local store cannot serve the request
        bit-exactly (stale version, unknown attribute, bounds outside the
        persisted rows) so the caller falls back to the not-hydrated error
        and the coordinator re-ships the snapshot.  A served slice is a
        zero-copy view over the mapped column file, installed in
        ``_slices`` exactly as a wire hydration would be.
        """
        if not self._local_store_fresh:
            return None
        from repro.errors import StorageError

        try:
            columns = self._local.columns(attribute)
        except StorageError:
            return None
        if columns is None or not (0 <= start <= stop <= columns.num_entities):
            return None
        snapshot = ColumnSnapshot.of_slice(columns, slice_id, start, stop, self.data_version)
        self._slices[(attribute, slice_id)] = snapshot
        self.local_hydrations += 1
        return snapshot

    def _score(
        self,
        slice_id: int,
        attribute: str,
        phrase: str,
        start: int,
        stop: int,
        rows: list[int] | None,
    ) -> np.ndarray:
        if self.membership is None:
            raise RpcError(f"node {self.node_id} has no membership function installed")
        kernel = getattr(self.membership, "degrees_columnar", None)
        if kernel is None:
            raise RpcError(
                f"the membership function of node {self.node_id} has no columnar kernel"
            )
        snapshot = self._slices.get((attribute, slice_id))
        if snapshot is None:
            snapshot = self._local_slice(attribute, slice_id, start, stop)
        if snapshot is None:
            raise RpcError(
                f"slice {slice_id} of attribute {attribute!r} is not hydrated "
                f"on node {self.node_id} (data_version {self.data_version})"
            )
        if snapshot.start != start or snapshot.stop != stop:
            raise RpcError(
                f"slice bounds mismatch for slice {slice_id} of {attribute!r}: "
                f"request [{start}, {stop}) vs hydrated "
                f"[{snapshot.start}, {snapshot.stop})"
            )
        view = snapshot.columns
        if rows is not None:
            view = gather_rows(view, rows)
        self.kernel_calls += 1
        return np.asarray(kernel(view, phrase), dtype=np.float64)

    def _handle_score_bounded(self, reader: Reader) -> bytes:
        slice_id = reader.read_u32()
        attribute = reader.read_str()
        phrase = reader.read_str()
        start = reader.read_u32()
        stop = reader.read_u32()
        rows: list[int] | None = None
        if reader.read_u8():
            rows = reader.read_u32_array(reader.read_u32())
        threshold = float(reader.read_f64_array(1)[0])
        trace = read_trace_field(reader)
        started = now()
        self.bounded_requests += 1

        def finish(response: bytes, scored: int, pruned: int, cached: bool) -> bytes:
            if trace is not None:
                record_span(
                    "node_score_bounded",
                    trace_id=trace[0],
                    parent_id=trace[1],
                    duration=now() - started,
                    node=self.node_id,
                    slice_id=slice_id,
                    attribute=attribute,
                    scored=scored,
                    pruned=pruned,
                    cached=cached,
                )
            return response

        key = (phrase, start, stop, tuple(rows) if rows is not None else None)
        cache = self._caches.get((attribute, slice_id))
        if cache is None:
            cache = self._caches[(attribute, slice_id)] = LRUCache(self.cache_size)
        vector = cache.get(key)
        if vector is not None:
            # A memoised exact vector answers any threshold without new
            # kernel work — nothing was scored or pruned by this request.
            return finish(
                encode_score_bounded_response(
                    vector, np.ones(len(vector), dtype=bool), 0, 0
                ),
                0,
                0,
                True,
            )
        result = self._score_bounded(slice_id, attribute, phrase, start, stop, rows, threshold)
        if result is None:
            # No bound envelope for this membership/phrase: degrade to one
            # exact pass — the response is still well-formed (all exact).
            vector = self._score(slice_id, attribute, phrase, start, stop, rows)
            cache.put(key, vector)
            self.entities_scored += len(vector)
            return finish(
                encode_score_bounded_response(
                    vector, np.ones(len(vector), dtype=bool), len(vector), 0
                ),
                len(vector),
                0,
                False,
            )
        values, exact_mask, scored, pruned = result
        self.entities_scored += scored
        self.entities_pruned += pruned
        if pruned == 0:
            # Fully exact results are interchangeable with plain ``score``
            # responses; mixed vectors must never enter the cache (a bound
            # is not a degree).
            cache.put(key, values)
        return finish(
            encode_score_bounded_response(values, exact_mask, scored, pruned),
            scored,
            pruned,
            False,
        )

    def _score_bounded(
        self,
        slice_id: int,
        attribute: str,
        phrase: str,
        start: int,
        stop: int,
        rows: list[int] | None,
        threshold: float,
    ) -> "tuple[np.ndarray, np.ndarray, int, int] | None":
        if self.membership is None:
            raise RpcError(f"node {self.node_id} has no membership function installed")
        if getattr(self.membership, "degrees_columnar", None) is None:
            raise RpcError(
                f"the membership function of node {self.node_id} has no columnar kernel"
            )
        snapshot = self._slices.get((attribute, slice_id))
        if snapshot is None:
            snapshot = self._local_slice(attribute, slice_id, start, stop)
        if snapshot is None:
            raise RpcError(
                f"slice {slice_id} of attribute {attribute!r} is not hydrated "
                f"on node {self.node_id} (data_version {self.data_version})"
            )
        if snapshot.start != start or snapshot.stop != stop:
            raise RpcError(
                f"slice bounds mismatch for slice {slice_id} of {attribute!r}: "
                f"request [{start}, {stop}) vs hydrated "
                f"[{snapshot.start}, {snapshot.stop})"
            )
        bounds_key = (attribute, slice_id)
        bounds = self._bounds.get(bounds_key)
        if bounds is None:
            # Snapshot columns already are the slice: bound them whole.
            bounds = self._bounds[bounds_key] = ScoreBounds.of_columns(snapshot.columns)
        if rows is not None:
            bounds = bounds.narrowed(rows)
        result = bounded_pair_degrees(
            self.membership, bounds.columns, bounds, phrase, threshold
        )
        if result is not None and result[2]:
            self.kernel_calls += 1
        return result

    def _handle_invalidate(self, reader: Reader) -> bytes:
        caller_version = reader.read_u64()
        reported = self.data_version
        dropped = sum(len(cache) for cache in self._caches.values())
        self._caches.clear()
        if caller_version != self.data_version:
            # The coordinator moved on: every hydrated slice is stale.  The
            # node returns to the unhydrated state — it can never serve a
            # stale degree — but retires the slices as delta bases so the
            # coming re-hydration can ship only changed rows.
            self._retire_slices(caller_version)
        self.invalidations += 1
        return _U8.pack(STATUS_OK) + _U64.pack(reported) + _U32.pack(dropped)

    def _handle_stats(self) -> bytes:
        stats = {
            "node": self.node_id,
            "pid": os.getpid(),
            "data_version": self.data_version,
            "owned_slices": self.owned_slice_ids,
            "hydrated_slices": len(self._slices),
            "score_requests": self.score_requests,
            "bounded_requests": self.bounded_requests,
            "kernel_calls": self.kernel_calls,
            "entities_scored": self.entities_scored,
            "entities_pruned": self.entities_pruned,
            "cache_hits": sum(cache.stats.hits for cache in self._caches.values()),
            "hydrations": self.hydrations,
            "delta_hydrations": self.delta_hydrations,
            "local_store": self._local_store_fresh,
            "local_hydrations": self.local_hydrations,
            "stale_slices": len(self._stale),
            "invalidations": self.invalidations,
            "connections": self.connections,
            "cache_entries": sum(len(cache) for cache in self._caches.values()),
        }
        return _U8.pack(STATUS_OK) + pack_str(json.dumps(stats))

    def _handle_traces(self, reader: Reader) -> bytes:
        """Serve the node's recorded spans as JSON (``traces`` frames)."""
        trace_id = reader.read_u64()
        limit = reader.read_u32()
        payload = global_trace_store().to_json(trace_id=trace_id, limit=limit)
        return _U8.pack(STATUS_OK) + pack_str(payload)


def _node_main(
    node_id: int,
    listener: socket.socket,
    close_in_child: list[socket.socket],
    membership: object,
    max_frame_bytes: int,
    cache_size: int | None,
    data_dir: str | None = None,
) -> None:
    """Forked node entry point: close inherited sockets, then serve TCP."""
    for other in close_in_child:
        try:
            other.close()
        except OSError:
            pass
    # The fork copies the coordinator's span buffer; without this clear,
    # node_traces() would re-serve the parent's spans as duplicates.
    global_trace_store().clear()
    server = ShardNodeServer(
        node_id=node_id,
        membership=membership,
        max_frame_bytes=max_frame_bytes,
        cache_size=cache_size,
        data_dir=data_dir,
    )
    server.adopt_listener(listener)
    server.serve_forever()


# --------------------------------------------------------------------------
# Replies and per-node channels (coordinator side)
# --------------------------------------------------------------------------

class NodeReply:
    """One in-flight request's eventual response (single-threaded future).

    Resolved by the I/O pump when the node's response frame arrives, or
    failed with a transport error when the connection is lost.  ``decode``
    turns the OK-status remainder of the response into the reply value.
    """

    __slots__ = ("decode", "done", "value", "error")

    def __init__(self, decode: Callable[[Reader], object]) -> None:
        self.decode = decode
        self.done = False
        self.value: object = None
        self.error: Exception | None = None

    def resolve(self, payload: bytes, node_index: int) -> None:
        """Decode one response frame into this reply (errors captured)."""
        try:
            reader = Reader(payload)
            if reader.read_u8() == STATUS_ERROR:
                raise RpcError(f"cluster node {node_index}: {reader.read_str()}")
            self.value = self.decode(reader)
        except Exception as error:  # noqa: BLE001 - surfaced at collect time
            self.error = error
        self.done = True

    def fail(self, error: Exception) -> None:
        """Mark the reply failed (connection lost before the response)."""
        if not self.done:
            self.error = error
            self.done = True


def _decode_score(reader: Reader) -> np.ndarray:
    """A ``score`` response: the slice's degree vector."""
    return reader.read_f64_array(reader.read_u32())


def _decode_score_bounded(reader: Reader) -> tuple:
    """A ``score bounded`` response: (values, exact mask, scored, pruned)."""
    return read_score_bounded_response(reader)


def _decode_versioned(reader: Reader) -> tuple[int, int]:
    """A ``hydrate``/``invalidate`` response: (data_version, count)."""
    return reader.read_u64(), reader.read_u32()


def _decode_stats(reader: Reader) -> dict:
    """A ``stats`` response: the node's JSON counters."""
    return json.loads(reader.read_str())


def _decode_traces(reader: Reader) -> list[dict]:
    """A ``traces`` response: the node's recorded spans as JSON."""
    return json.loads(reader.read_str())


def _decode_ack(reader: Reader) -> None:
    """An empty OK response (``shutdown``)."""
    return None


class ClusterNodeClient:
    """The coordinator's pipelined connection to one shard node.

    Requests enter a send queue; a bounded window of them is in flight at
    any moment (framed into the output buffer and counted against
    ``window``), and responses are matched to their
    :class:`NodeReply` futures strictly in order — the node serves one
    connection sequentially, so FIFO matching is exact.  All socket I/O is
    non-blocking; :class:`ClusterShardStore`'s select pump drives every
    channel together, which is what lets all nodes compute concurrently
    while the coordinator does its own work.
    """

    def __init__(
        self,
        index: int,
        address: tuple[str, int],
        max_frame_bytes: int,
        window: int,
        counters: dict[str, int],
        owned_slice_ids: Sequence[int] = (),
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> None:
        self.index = index
        self.address = address
        self.max_frame_bytes = max_frame_bytes
        self.window = max(1, window)
        self.counters = counters
        self.owned_slice_ids = list(owned_slice_ids)
        self.connect_timeout = connect_timeout
        self.sock: socket.socket | None = None
        self.dead = False
        self.remote_data_version = 0
        self.remote_owned: list[int] = []
        self.remote_local_store = False
        # Protocol version the node acked (min of both peers); trace fields
        # are only stamped on frames when this reaches TRACE_PROTOCOL_VERSION.
        self.negotiated_version = PROTOCOL_VERSION
        self.queue: deque[tuple[bytes, NodeReply]] = deque()
        self.inflight: deque[NodeReply] = deque()
        self._out = bytearray()
        self._in = bytearray()

    # ------------------------------------------------------------ connection
    def connect(self, data_version: int) -> None:
        """Connect and run the versioned hello handshake (blocking).

        Raises :class:`~repro.serving.protocol.HandshakeError` on protocol
        skew or a malformed acknowledgement, and
        :class:`~repro.serving.protocol.WorkerCrashedError` when the node
        cannot be reached at all.
        """
        try:
            sock = socket.create_connection(self.address, timeout=self.connect_timeout)
        except OSError as error:
            self.dead = True
            raise WorkerCrashedError(
                f"cluster node {self.index} at {self.address} is unreachable "
                f"({error}); the coordinator will reconnect or respawn it on "
                "the next query"
            ) from error
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            send_frame(sock, encode_hello(PROTOCOL_VERSION, data_version), self.max_frame_bytes)
            payload = recv_frame(sock, self.max_frame_bytes)
            if payload is None:
                raise HandshakeError(
                    f"cluster node {self.index} closed the connection during the handshake"
                )
            (
                self.negotiated_version,
                self.remote_data_version,
                self.remote_owned,
                self.remote_local_store,
            ) = read_hello_ack(payload)
        except HandshakeError:
            sock.close()
            self.dead = True
            raise
        except (RpcError, OSError) as error:
            sock.close()
            self.dead = True
            raise HandshakeError(
                f"handshake with cluster node {self.index} failed ({error})"
            ) from error
        sock.setblocking(False)
        self.sock = sock
        self.dead = False
        self.counters["reconnects"] += 1

    def fileno(self) -> int:
        """The connected socket's file descriptor (for ``select``)."""
        return self.sock.fileno()

    def wire_trace(self) -> "tuple[int, int] | None":
        """The active trace as a wire ``(trace_id, span_id)`` pair.

        ``None`` when tracing is off, no trace is active, or the node
        negotiated a protocol below :data:`~repro.serving.protocol.
        TRACE_PROTOCOL_VERSION` — a v4 node must never see a trace field.
        """
        if self.negotiated_version < TRACE_PROTOCOL_VERSION:
            return None
        return current_wire_trace()

    @property
    def has_work(self) -> bool:
        """Whether any request is queued, buffered, or awaiting a response."""
        return bool(self.queue or self._out or self.inflight)

    @property
    def wants_write(self) -> bool:
        """Whether the pump should register this channel for writability."""
        return bool(self._out) or bool(self.queue and len(self.inflight) < self.window)

    # --------------------------------------------------------------- queueing
    def enqueue(self, payload: bytes, decode: Callable[[Reader], object]) -> NodeReply:
        """Queue one request frame; returns its :class:`NodeReply` future."""
        if self.dead or self.sock is None:
            raise WorkerCrashedError(
                f"cluster node {self.index} at {self.address} has no live "
                "connection; the coordinator will reconnect or respawn it on "
                "the next query"
            )
        reply = NodeReply(decode)
        self.queue.append((frame_bytes(payload, self.max_frame_bytes), reply))
        self.counters["requests"] += 1
        return reply

    # ------------------------------------------------------------------ pump
    def pump_writes(self) -> None:
        """Frame queued requests up to the window and flush what the socket takes."""
        while self.queue and len(self.inflight) < self.window:
            frame, reply = self.queue.popleft()
            self._out += frame
            self.inflight.append(reply)
        if not self._out:
            return
        try:
            sent = self.sock.send(self._out)
        except (BlockingIOError, InterruptedError):
            return
        if sent:
            self.counters["bytes_sent"] += sent
            del self._out[:sent]

    def pump_reads(self) -> None:
        """Read available bytes and resolve completed response frames in order."""
        try:
            data = self.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        if not data:
            raise RpcError("node closed its connection")
        self.counters["bytes_received"] += len(data)
        self._in += data
        while True:
            if len(self._in) < _HEADER.size:
                return
            (length,) = _HEADER.unpack(bytes(self._in[: _HEADER.size]))
            if length > self.max_frame_bytes:
                raise FrameTooLargeError(
                    f"node {self.index} announced a {length}-byte frame "
                    f"(limit {self.max_frame_bytes} bytes)"
                )
            if len(self._in) < _HEADER.size + length:
                return
            payload = bytes(self._in[_HEADER.size : _HEADER.size + length])
            del self._in[: _HEADER.size + length]
            if not self.inflight:
                raise RpcError(f"node {self.index} sent a response with no request in flight")
            self.inflight.popleft().resolve(payload, self.index)

    # --------------------------------------------------------------- failure
    def fail_all(self, error: Exception) -> None:
        """Fail every outstanding reply and close the connection."""
        for reply in self.inflight:
            reply.fail(error)
        for _, reply in self.queue:
            reply.fail(error)
        self.inflight.clear()
        self.queue.clear()
        self._out.clear()
        self._in.clear()
        self.dead = True
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def close(self) -> None:
        """Close the connection without failing replies (clean teardown)."""
        self.dead = True
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None


# --------------------------------------------------------------------------
# The cluster store (coordinator side)
# --------------------------------------------------------------------------

@dataclass
class _PendingCall:
    """One enqueued node call of a fan-out, with everything needed to retry it.

    ``kind`` is ``"hydrate"`` or ``"score"``.  Score calls carry their full
    request parameters (slice identity, row subset, scatter target,
    optional prune threshold) so that when the serving node dies
    mid-request, :meth:`ClusterShardStore._collect_calls` can re-issue the
    exact same call on an untried replica; ``tried`` accumulates the nodes
    already attempted so a failover can never loop.
    """

    kind: str
    reply: NodeReply
    node: int
    attribute: str = ""
    slice_id: int = -1
    hydration_key: "tuple[int, str, int] | None" = None
    phrase: str = ""
    start: int = 0
    stop: int = 0
    rows: "list[int] | None" = None
    scatter: object = None
    threshold: float | None = None
    tried: set[int] = field(default_factory=set)


@dataclass
class DegreeRequest:
    """An issued-but-uncollected degree fan-out (one ``pair_degrees`` worth).

    Produced by :meth:`ClusterShardStore.request_degrees`, consumed by
    :meth:`ClusterShardStore.collect_degrees`.  Holding several of these at
    once is what lets the concurrent coordinator overlap independent
    queries' fan-outs across the nodes.
    """

    data_version: int
    entity_ids: list[Hashable]
    rows: list[int | None]
    membership: object
    attribute: str
    phrase: str
    columns: AttributeColumns
    batch: np.ndarray | None
    pending: list[_PendingCall] = field(default_factory=list)


class ClusterShardStore:
    """Entity-sliced degree scoring over TCP shard nodes.

    Implements the ``pair_degrees`` protocol of
    :class:`~repro.core.columnar.ColumnarSummaryStore`, so the query
    processor routes through it unchanged.  Kernel work ships to the nodes
    as ``(slice_id, attribute, start, stop[, rows])`` score requests over
    pipelined per-node queues; column data ships exactly once per
    ``(node, attribute, slice, data_version)`` as packed
    :class:`~repro.core.columnar.ColumnSnapshot` bytes, enqueued ahead of
    the first score request that needs the slice (the per-node FIFO
    guarantees hydration lands first).

    Two fleet shapes are supported: **managed** (default) — the store forks
    local node processes listening on ephemeral localhost ports and owns
    their full lifecycle, respawning dead nodes on the next query — and
    **external** (``addresses=[(host, port), ...]``) — the store connects
    to already-running :class:`ShardNodeServer` instances and can reconnect
    after a connection loss but never spawns or shuts them down.  In both
    shapes a node lost mid-request surfaces as
    :class:`~repro.serving.protocol.WorkerCrashedError`, exactly like the
    socketpair RPC layer.

    A ``data_version`` bump drops base columns and hydration records
    together, pushes ``invalidate`` to every reachable node (dropping node
    caches *and* hydrated slices), and the next fan-out re-hydrates lazily
    — snapshot re-hydration instead of the RPC layer's fleet re-fork.

    Three cold-path controls (all default-off / lossless):

    * ``replication`` — hydrate every slice on R nodes (the owner plus its
      R−1 ring successors) and route each score to the least-loaded live
      replica.  A node killed mid-fan-out then degrades to a warm replica:
      the in-flight calls fail over and the caller never sees a
      :class:`~repro.serving.protocol.WorkerCrashedError`; the dead node
      rejoins (reconnect or respawn) on the next fan-out.  With the
      default ``replication=1`` the single-owner crash semantics are
      exactly the pre-replication ones.
    * ``snapshot_compression`` — zlib framing on hydrate payloads;
      lossless, every hydrated bit unchanged.
    * ``centroid_tolerance`` — opt-in f32 quantization of snapshot
      centroid tensors (the dominant hydrate bytes) under an explicit
      error bound; ``None`` (default) keeps full bit-identity.

    Independent of those flags, re-hydration after an ingest ships **delta
    frames** wherever it can: the coordinator keeps the previous packed
    generation per slice, and a node still holding that base receives only
    the changed rows (:class:`~repro.core.columnar.SnapshotDelta`) instead
    of the whole slice.  A node that cannot apply a delta answers with a
    typed error and a full snapshot is shipped — never a stale slice.
    """

    def __init__(
        self,
        database: SubjectiveDatabase,
        num_nodes: int | None = None,
        num_slices: int | None = None,
        base: ColumnarSummaryStore | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        node_cache_size: int | None = DEFAULT_WORKER_CACHE_SIZE,
        addresses: Sequence[tuple[str, int]] | None = None,
        window: int = DEFAULT_INFLIGHT_WINDOW,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        io_timeout: float = DEFAULT_IO_TIMEOUT,
        replication: int = 1,
        snapshot_compression: bool = False,
        centroid_tolerance: float | None = None,
        data_dir: str | None = None,
    ) -> None:
        self._managed = addresses is None
        if self._managed:
            if "fork" not in multiprocessing.get_all_start_methods():
                raise RpcError(
                    "managed cluster nodes require the 'fork' start method; "
                    "start ShardNodeServer instances yourself and pass addresses=..."
                )
            if num_nodes is None:
                num_nodes = default_num_shards()
        else:
            if num_nodes is not None and num_nodes != len(addresses):
                raise ValueError(
                    f"num_nodes ({num_nodes}) contradicts the {len(addresses)} addresses given"
                )
            num_nodes = len(addresses)
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if num_slices is None:
            num_slices = num_nodes
        if num_slices < num_nodes:
            raise ValueError(f"num_slices ({num_slices}) must be >= num_nodes ({num_nodes})")
        if replication < 1:
            raise ValueError(f"replication must be positive, got {replication}")
        self.database = database
        self.num_nodes = num_nodes
        self.num_slices = num_slices
        self.base = base if base is not None else database.columnar_store()
        self.max_frame_bytes = max_frame_bytes
        self.node_cache_size = node_cache_size
        self.window = window
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        # R is clamped to the fleet size: replicating a slice onto the same
        # node twice buys nothing.
        self.replication = min(replication, num_nodes)
        self.snapshot_compression = snapshot_compression
        self.centroid_tolerance = centroid_tolerance
        # Directory of the persistent storage tier the managed nodes boot
        # from (None → nodes cold-start and hydrate over the wire).
        self.data_dir = data_dir
        # Node n owns the contiguous slice-id range [bounds[n], bounds[n+1]).
        self._ownership = partition_bounds(num_slices, num_nodes)
        self._owner_of = [
            node
            for node, (start, stop) in enumerate(zip(self._ownership, self._ownership[1:]))
            for _ in range(stop - start)
        ]
        self._channels: list[ClusterNodeClient | None] = [None] * num_nodes
        self._processes: list[multiprocessing.process.BaseProcess | None] = [None] * num_nodes
        self._addresses: list[tuple[str, int] | None] = (
            [None] * num_nodes if self._managed else [tuple(a) for a in addresses]
        )
        self._hydrated: set[tuple[int, str, int]] = set()
        # Delta-hydration bookkeeping: the current packed generation per
        # (attribute, slice), the previous generation (the delta base), the
        # data version each (node, attribute, slice) last received, and a
        # one-entry delta cache per slice so R replicas (and re-issues)
        # never pack the same delta twice.
        self._slice_bases: dict[tuple[str, int], ColumnSnapshot] = {}
        self._slice_prev: dict[tuple[str, int], ColumnSnapshot] = {}
        self._node_bases: dict[tuple[int, str, int], int] = {}
        self._slice_deltas: dict[tuple[str, int], tuple[int, int, bytes | None]] = {}
        self._membership: object | None = None
        self._version = database.data_version
        self.metrics = MetricsRegistry()
        self._invalidations_cell = self.metrics.counter(
            "invalidations", help="Data-version bumps pushed to the node fleet"
        )
        self._fanouts_cell = self.metrics.counter(
            "fanouts", help="Sharded kernel passes (one per predicate computation)"
        )
        self._rpc_requests_cell = self.metrics.counter(
            "rpc_requests", help="Individual score requests shipped to nodes"
        )
        self._hydrations_cell = self.metrics.counter(
            "hydrations", help="Snapshots shipped (full or delta)"
        )
        self._delta_hydrations_cell = self.metrics.counter(
            "delta_hydrations", help="Hydrations shipped as delta frames"
        )
        self._local_hydrations_cell = self.metrics.counter(
            "local_hydrations", help="Hydrate frames skipped: node store was warm"
        )
        self._failovers_cell = self.metrics.counter(
            "failovers", help="Crashed score calls re-issued on a replica"
        )
        self._entities_scored_cell = self.metrics.counter(
            "entities_scored", help="Rows the nodes' exact kernels evaluated"
        )
        self._entities_pruned_cell = self.metrics.counter(
            "entities_pruned", help="Rows settled by bounds alone"
        )
        self._node_counters = [
            {"requests": 0, "bytes_sent": 0, "bytes_received": 0, "reconnects": 0, "respawns": 0}
            for _ in range(num_nodes)
        ]

    invalidations = cell_property("_invalidations_cell")
    fanouts = cell_property("_fanouts_cell")
    rpc_requests = cell_property("_rpc_requests_cell")
    hydrations = cell_property("_hydrations_cell")
    delta_hydrations = cell_property("_delta_hydrations_cell")
    local_hydrations = cell_property("_local_hydrations_cell")
    failovers = cell_property("_failovers_cell")
    entities_scored = cell_property("_entities_scored_cell")
    entities_pruned = cell_property("_entities_pruned_cell")

    # ------------------------------------------------------------ lifecycle
    @property
    def data_version(self) -> int:
        """The database version the current hydration state reflects."""
        return self._version

    @property
    def managed(self) -> bool:
        """Whether this store spawns and owns its node processes."""
        return self._managed

    @property
    def channels(self) -> list[ClusterNodeClient | None]:
        """The per-node connection channels (``None`` before first use)."""
        return self._channels

    @property
    def processes(self) -> list[multiprocessing.process.BaseProcess | None]:
        """Managed node processes (all ``None`` for external fleets)."""
        return self._processes

    def _check_version(self) -> None:
        if self._version != self.database.data_version:
            self.invalidate()

    def invalidate(self) -> None:
        """Honor a ``data_version`` bump: drop columns, push node invalidation.

        Base columns and hydration records drop immediately; every
        reachable node receives an ``invalidate`` frame carrying the new
        version, which makes it drop its degree caches *and* its hydrated
        slices (they are stale by definition).  Fresh snapshots ship lazily
        with the next fan-out — re-hydration, not re-fork.  A node that
        cannot be reached is dropped and reconnected-or-respawned on the
        next query; invalidation itself never raises.
        """
        self.base.invalidate()
        self._hydrated.clear()
        self._version = self.database.data_version
        self.invalidations += 1
        replies: list[NodeReply] = []
        for channel in self._channels:
            if channel is None or channel.dead or channel.sock is None:
                continue
            try:
                replies.append(
                    channel.enqueue(encode_invalidate_request(self._version), _decode_versioned)
                )
            except RpcError:
                continue
        if replies:
            self._pump_until(replies, raise_errors=False)

    def invalidate_node_caches(self) -> int:
        """Drop every live node's degree caches; returns entries dropped.

        Cache recycling *within* a snapshot's lifetime: the data did not
        change, so hydrated slices stay in place (each node sees its own
        current version in the frame and keeps its columns).  A node
        reporting a different snapshot version has skewed — its hydration
        records are dropped so the next fan-out re-ships fresh snapshots.
        """
        replies: list[tuple[int, NodeReply]] = []
        for index, channel in enumerate(self._channels):
            if channel is None or channel.dead or channel.sock is None:
                continue
            frame = encode_invalidate_request(self._version)
            replies.append((index, channel.enqueue(frame, _decode_versioned)))
        self._pump_until([reply for _, reply in replies])
        dropped_total = 0
        for index, reply in replies:
            if reply.error is not None:
                raise reply.error
            version, dropped = reply.value
            dropped_total += dropped
            if version != self._version:
                self._drop_hydration(index)
        return dropped_total

    def close(self) -> None:
        """Shut the fleet down (idempotent).

        Managed node processes receive a graceful ``shutdown`` frame and
        are reaped (terminated if unresponsive); external nodes only have
        their connections closed — their lifecycle belongs to whoever
        started them.
        """
        for index, channel in enumerate(self._channels):
            if channel is None:
                continue
            if self._managed and not channel.dead and channel.sock is not None:
                try:
                    reply = channel.enqueue(_U8.pack(OP_SHUTDOWN), _decode_ack)
                    self._pump_until([reply], raise_errors=False, timeout=5.0)
                except RpcError:
                    pass
            channel.close()
            self._channels[index] = None
        if self._managed:
            for index, process in enumerate(self._processes):
                if process is None:
                    continue
                process.join(timeout=5)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=5)
                self._processes[index] = None
        self._hydrated.clear()
        self._node_bases.clear()

    # ----------------------------------------------------------------- fleet
    def _spawn_node(self, index: int, membership: object) -> None:
        """Fork one local node process listening on an ephemeral TCP port.

        The listener is bound in the coordinator (so the address is known
        without a rendezvous) and inherited by the fork; the child closes
        the coordinator's live connections to its siblings so a sibling
        crash always surfaces as EOF.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        address = listener.getsockname()
        close_in_child = [
            channel.sock
            for channel in self._channels
            if channel is not None and channel.sock is not None
        ]
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_node_main,
            args=(
                index,
                listener,
                close_in_child,
                membership,
                self.max_frame_bytes,
                self.node_cache_size,
                self.data_dir,
            ),
            daemon=True,
            name=f"repro-cluster-node-{index}",
        )
        process.start()
        listener.close()
        self._processes[index] = process
        self._addresses[index] = address
        self._node_counters[index]["respawns"] += 1

    def _ensure_nodes(self, membership: object) -> None:
        """Connect (and for managed fleets, spawn) every node that needs it.

        Reconnect-or-respawn: a channel lost since the last fan-out is
        reconnected to the same address; a managed node whose process died
        is forked afresh first.  A reconnected node keeps nothing the
        coordinator relies on — its hydration records are dropped so the
        next fan-out re-ships snapshots (hydration is idempotent).
        Switching membership functions tears a managed fleet down (the
        model is baked into the node processes at fork time).
        """
        if self._membership is not None and self._membership is not membership:
            if self._managed:
                self.close()
            else:
                for index, channel in enumerate(self._channels):
                    if channel is not None:
                        channel.close()
                        self._channels[index] = None
                        self._drop_hydration(index)
        self._membership = membership
        for index in range(self.num_nodes):
            channel = self._channels[index]
            if channel is not None and not channel.dead and channel.sock is not None:
                continue
            if self._managed:
                process = self._processes[index]
                if process is None or not process.is_alive():
                    self._spawn_node(index, membership)
            channel = ClusterNodeClient(
                index,
                self._addresses[index],
                self.max_frame_bytes,
                self.window,
                self._node_counters[index],
                owned_slice_ids=range(self._ownership[index], self._ownership[index + 1]),
                connect_timeout=self.connect_timeout,
            )
            self._connect_with_retry(channel)
            self._channels[index] = channel
            self._drop_hydration(index)

    def _connect_with_retry(self, channel: ClusterNodeClient, attempts: int = 40) -> None:
        """Connect to one node, retrying briefly (a freshly forked node may
        not have reached ``accept`` yet)."""
        deadline = time.monotonic() + self.connect_timeout
        last: Exception | None = None
        for _ in range(attempts):
            try:
                channel.connect(self._version)
                return
            except HandshakeError:
                raise
            except WorkerCrashedError as error:
                last = error
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.05)
        raise last if last is not None else WorkerCrashedError("node connect failed")

    def _drop_hydration(self, index: int) -> None:
        """Forget what one node holds (its state is unknown after a loss).

        Dropping the node's base-version records too means the next
        hydration ships full snapshots — a reconnected node *may* still
        hold its slices, but delta shipping must never bet on it.
        """
        self._hydrated = {key for key in self._hydrated if key[0] != index}
        self._node_bases = {
            key: version for key, version in self._node_bases.items() if key[0] != index
        }

    def _drop_channel(self, channel: ClusterNodeClient, error: Exception) -> None:
        """A connection failed: fail its replies, mark it for reconnection."""
        wrapped = WorkerCrashedError(
            f"cluster node {channel.index} at {channel.address} failed "
            f"mid-request ({error}); the coordinator will reconnect or "
            "respawn it on the next query"
        )
        wrapped.__cause__ = error
        channel.fail_all(wrapped)
        self._drop_hydration(channel.index)

    # ------------------------------------------------- hydration and routing
    def _replicas_of(self, slice_id: int) -> list[int]:
        """The nodes hosting one slice: its owner plus R−1 ring successors."""
        primary = self._owner_of[slice_id]
        return [(primary + offset) % self.num_nodes for offset in range(self.replication)]

    def _hydration_payload(
        self,
        node: int,
        columns: AttributeColumns,
        attribute: str,
        slice_id: int,
        start: int,
        stop: int,
    ) -> bytes:
        """The hydrate frame for one ``(node, slice)``: delta when possible.

        The coordinator keeps the current packed generation per slice and
        one previous generation.  When the target node's last-shipped
        version matches the previous generation, the frame is a
        :class:`~repro.core.columnar.SnapshotDelta` carrying only the
        changed rows (packed once per slice per version step, shared by
        every replica); in every other case — first hydration, a node more
        than one generation behind, a reconnect that wiped its records, or
        a slice where too much changed — it is a full snapshot.
        Compression and centroid quantization apply to both shapes.
        """
        key = (attribute, slice_id)
        current = self._slice_bases.get(key)
        if current is None or current.data_version != self._version:
            if current is not None:
                self._slice_prev[key] = current
            current = ColumnSnapshot.of_slice(columns, slice_id, start, stop, self._version)
            self._slice_bases[key] = current
        prev = self._slice_prev.get(key)
        node_version = self._node_bases.get((node, attribute, slice_id))
        if (
            prev is not None
            and node_version == prev.data_version
            and prev.data_version != self._version
        ):
            cached = self._slice_deltas.get(key)
            if cached is None or cached[0] != prev.data_version or cached[1] != self._version:
                delta = SnapshotDelta.between(prev, current)
                blob = (
                    delta.pack(self.snapshot_compression, self.centroid_tolerance)
                    if delta is not None
                    else None
                )
                cached = (prev.data_version, self._version, blob)
                self._slice_deltas[key] = cached
            if cached[2] is not None:
                self.delta_hydrations += 1
                return encode_hydrate_delta_request(cached[2])
        return encode_hydrate_request(
            current.pack(self.snapshot_compression, self.centroid_tolerance)
        )

    def _channel_load(self, node: int) -> int:
        """One node's outstanding work (queued + in-flight requests)."""
        channel = self._channels[node]
        return len(channel.inflight) + len(channel.queue)

    def _issue_slice_call(
        self,
        pending: list[_PendingCall],
        columns: AttributeColumns,
        attribute: str,
        phrase: str,
        slice_id: int,
        start: int,
        stop: int,
        rows: "list[int] | None",
        scatter: object,
        threshold: float | None,
    ) -> None:
        """Hydrate one slice's replicas as needed, then enqueue its score call.

        Every replica missing the slice receives a hydrate frame (warm
        standby — the availability the replication factor buys); the score
        itself goes to the least-loaded replica.  Routing cannot affect
        results: replicas hydrate from identical snapshot bytes and the
        kernels are row-independent, so any replica computes the same
        vector bit for bit.
        """
        replicas = self._replicas_of(slice_id)
        for node in replicas:
            hydration_key = (node, attribute, slice_id)
            if hydration_key in self._hydrated:
                continue
            channel = self._channels[node]
            if channel.remote_local_store and channel.remote_data_version == self._version:
                # The node advertised a warm persistent store at exactly the
                # coordinator's version: it will carve this slice out of its
                # own mmap on first use, so no hydrate frame ships at all.
                self._hydrated.add(hydration_key)
                self._node_bases[hydration_key] = self._version
                self.local_hydrations += 1
                continue
            with span("hydrate", node=node, attribute=attribute, slice_id=slice_id):
                payload = self._hydration_payload(node, columns, attribute, slice_id, start, stop)
            reply = self._channels[node].enqueue(payload, _decode_versioned)
            pending.append(
                _PendingCall(
                    kind="hydrate",
                    reply=reply,
                    node=node,
                    attribute=attribute,
                    slice_id=slice_id,
                    hydration_key=hydration_key,
                )
            )
            self._hydrated.add(hydration_key)
            self._node_bases[hydration_key] = self._version
            self.hydrations += 1
        target = min(replicas, key=self._channel_load)
        trace = self._channels[target].wire_trace()
        if threshold is None:
            payload = encode_score_request(
                slice_id, attribute, phrase, start, stop, rows, trace=trace
            )
            decode = _decode_score
        else:
            payload = encode_score_bounded_request(
                slice_id, attribute, phrase, start, stop, rows, threshold, trace=trace
            )
            decode = _decode_score_bounded
        reply = self._channels[target].enqueue(payload, decode)
        pending.append(
            _PendingCall(
                kind="score",
                reply=reply,
                node=target,
                attribute=attribute,
                slice_id=slice_id,
                phrase=phrase,
                start=start,
                stop=stop,
                rows=rows,
                scatter=scatter,
                threshold=threshold,
                tried={target},
            )
        )

    def _failover_target(self, call: _PendingCall) -> int | None:
        """A live, untried replica to re-issue one crashed score call on."""
        candidates = []
        for node in self._replicas_of(call.slice_id):
            if node in call.tried:
                continue
            channel = self._channels[node]
            if channel is None or channel.dead or channel.sock is None:
                continue
            candidates.append(node)
        if not candidates:
            return None
        return min(candidates, key=self._channel_load)

    def _reissue(
        self, call: _PendingCall, node: int, columns: AttributeColumns
    ) -> list[_PendingCall]:
        """Re-issue one crashed score call on ``node``; the replacement calls.

        Hydration rides ahead of the retried score exactly as on the
        original path (the per-node FIFO guarantees ordering), so a
        replica that never saw the slice serves the retry correctly.
        """
        new_calls: list[_PendingCall] = []
        channel = self._channels[node]
        hydration_key = (node, call.attribute, call.slice_id)
        if hydration_key not in self._hydrated and (
            channel.remote_local_store and channel.remote_data_version == self._version
        ):
            # Same skip as the original path: a warm local store at the
            # coordinator's version hydrates itself on first use.
            self._hydrated.add(hydration_key)
            self._node_bases[hydration_key] = self._version
            self.local_hydrations += 1
        if hydration_key not in self._hydrated:
            payload = self._hydration_payload(
                node, columns, call.attribute, call.slice_id, call.start, call.stop
            )
            reply = channel.enqueue(payload, _decode_versioned)
            new_calls.append(
                _PendingCall(
                    kind="hydrate",
                    reply=reply,
                    node=node,
                    attribute=call.attribute,
                    slice_id=call.slice_id,
                    hydration_key=hydration_key,
                )
            )
            self._hydrated.add(hydration_key)
            self._node_bases[hydration_key] = self._version
            self.hydrations += 1
        trace = channel.wire_trace()
        if call.threshold is None:
            payload = encode_score_request(
                call.slice_id,
                call.attribute,
                call.phrase,
                call.start,
                call.stop,
                call.rows,
                trace=trace,
            )
            decode = _decode_score
        else:
            payload = encode_score_bounded_request(
                call.slice_id,
                call.attribute,
                call.phrase,
                call.start,
                call.stop,
                call.rows,
                call.threshold,
                trace=trace,
            )
            decode = _decode_score_bounded
        reply = channel.enqueue(payload, decode)
        self.rpc_requests += 1
        new_calls.append(
            _PendingCall(
                kind="score",
                reply=reply,
                node=node,
                attribute=call.attribute,
                slice_id=call.slice_id,
                phrase=call.phrase,
                start=call.start,
                stop=call.stop,
                rows=call.rows,
                scatter=call.scatter,
                threshold=call.threshold,
                tried=call.tried | {node},
            )
        )
        return new_calls

    def _collect_calls(
        self, calls: list[_PendingCall], columns: AttributeColumns
    ) -> list[_PendingCall]:
        """Resolve one fan-out's calls; completed score calls, in any order.

        The failover loop: pump until every outstanding call resolves,
        re-issue score calls whose node crashed onto an untried live
        replica (hydrating it first if needed), and repeat until nothing
        is outstanding.  With a replica available a node loss is invisible
        to the caller; with none (``replication=1``, or every replica
        tried) the original :class:`~repro.serving.protocol.
        WorkerCrashedError` surfaces exactly as before.  Non-crash errors
        — a refused snapshot, a version-skewed delta, a node-side scoring
        fault — always raise: they signal bugs or corruption, and retrying
        them elsewhere would only mask the signal.  A crashed *hydrate*
        call alone never fails the fan-out (its record is rolled back and
        any score routed to that node fails over on its own), so a dying
        warm standby costs nothing.
        """
        completed: list[_PendingCall] = []
        pending = list(calls)
        while pending:
            self._pump_until([call.reply for call in pending], raise_errors=False)
            next_round: list[_PendingCall] = []
            for call in pending:
                error = call.reply.error
                if error is None:
                    if call.kind == "score":
                        completed.append(call)
                    continue
                if call.kind == "hydrate":
                    self._hydrated.discard(call.hydration_key)
                    self._node_bases.pop(call.hydration_key, None)
                    if isinstance(error, WorkerCrashedError):
                        continue
                    raise error
                if not isinstance(error, WorkerCrashedError):
                    raise error
                node = self._failover_target(call)
                if node is None:
                    raise error
                self.failovers += 1
                next_round.extend(self._reissue(call, node, columns))
            pending = next_round
        return completed

    # ------------------------------------------------------------------ pump
    def _live_channels(self) -> list[ClusterNodeClient]:
        return [
            channel
            for channel in self._channels
            if channel is not None and not channel.dead and channel.sock is not None
        ]

    def _service_io(self, timeout: float) -> bool:
        """One pump step: write queued frames, read ready responses.

        Registers every live channel that has work with ``select`` and
        performs all ready I/O once; returns whether anything progressed.
        Channel failures are absorbed here — the affected replies fail with
        :class:`~repro.serving.protocol.WorkerCrashedError` and the channel
        is marked dead for reconnection.
        """
        channels = [channel for channel in self._live_channels() if channel.has_work]
        readers = [channel for channel in channels if channel.inflight]
        writers = [channel for channel in channels if channel.wants_write]
        if not readers and not writers:
            return False
        readable, writable, _ = select.select(readers, writers, [], timeout)
        progressed = False
        for channel in writable:
            if channel.dead:
                continue
            try:
                channel.pump_writes()
                progressed = True
            except (RpcError, OSError) as error:
                self._drop_channel(channel, error)
        for channel in readable:
            if channel.dead:
                continue
            try:
                channel.pump_reads()
                progressed = True
            except (RpcError, OSError) as error:
                self._drop_channel(channel, error)
        return progressed

    def _pump_until(
        self,
        replies: Sequence[NodeReply],
        raise_errors: bool = True,
        timeout: float | None = None,
    ) -> None:
        """Drive the pump until every reply resolves (or fails).

        A reply can only be outstanding while its channel is live (channel
        loss fails its replies immediately), so the loop always terminates;
        the deadline guards against a node that accepts requests but never
        answers — its channel is treated as crashed.
        """
        deadline = time.monotonic() + (timeout if timeout is not None else self.io_timeout)
        while not all(reply.done for reply in replies):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                stuck = RpcError("timed out waiting for node responses")
                for channel in self._live_channels():
                    if channel.inflight or channel.queue:
                        self._drop_channel(channel, stuck)
                break
            self._service_io(min(remaining, 0.5))
        if raise_errors:
            for reply in replies:
                if reply.error is not None:
                    raise reply.error

    # ----------------------------------------------------------- partitions
    def columns(self, attribute: str) -> AttributeColumns | None:
        """The unpartitioned column arrays (delegates to the base store)."""
        self._check_version()
        return self.base.columns(attribute)

    # -------------------------------------------------------------- scoring
    def request_degrees(
        self,
        membership: object,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
    ) -> DegreeRequest | None:
        """Issue one degree fan-out without waiting for the responses.

        Plans the exact per-slice requests the in-process store executes
        (:func:`repro.core.columnar.plan_slice_requests`), enqueues a
        ``hydrate`` frame ahead of the first score touching a not-yet
        hydrated slice, and opportunistically flushes the queues so nodes
        start computing immediately.  Returns ``None`` under the same
        conditions the base store does (no kernel / no columns), so
        callers' scalar fallback behaviour is unchanged.  The returned
        :class:`DegreeRequest` is consumed by :meth:`collect_degrees`;
        issuing several before collecting any is how the concurrent
        coordinator overlaps independent queries' fan-outs.
        """
        self._check_version()
        kernel = columnar_kernel(membership, self.database)
        if kernel is None:
            return None
        columns = self.base.columns(attribute)
        if columns is None:
            return None
        rows = [columns.row_of.get(entity_id) for entity_id in entity_ids]
        resident = sorted({row for row in rows if row is not None})
        request = DegreeRequest(
            data_version=self._version,
            entity_ids=list(entity_ids),
            rows=rows,
            membership=membership,
            attribute=attribute,
            phrase=phrase,
            columns=columns,
            batch=np.empty(columns.num_entities) if resident else None,
        )
        if resident:
            self._ensure_nodes(membership)
            bounds = partition_bounds(columns.num_entities, self.num_slices)
            slice_requests = plan_slice_requests(bounds, resident)
            for slice_id, start, stop, slice_rows, scatter in slice_requests:
                self._issue_slice_call(
                    request.pending,
                    columns,
                    attribute,
                    phrase,
                    slice_id,
                    start,
                    stop,
                    slice_rows,
                    scatter,
                    None,
                )
            self.fanouts += 1
            self.rpc_requests += len(slice_requests)
            self._service_io(0.0)
        return request

    def collect_degrees(self, request: DegreeRequest) -> list[float]:
        """Wait for one issued fan-out and gather its per-entity degrees.

        A node lost while the request was in flight fails over to a warm
        replica when the replication factor provides one, invisibly to the
        caller; without one it surfaces as
        :class:`~repro.serving.protocol.WorkerCrashedError` exactly as
        before.  A transported hydration failure forgets the hydration
        record so the next fan-out re-ships the snapshot.  Entities absent
        from the columns fall back to per-entity scalar scoring on the
        coordinator, exactly like every other store.
        """
        with span("transport", layer="cluster", requests=len(request.pending)):
            for call in self._collect_calls(request.pending, request.columns):
                request.batch[call.scatter] = call.reply.value
        return gather_degrees(
            request.batch,
            request.rows,
            request.entity_ids,
            scalar_fallback_scorer(
                request.membership,
                self.database,
                request.attribute,
                request.phrase,
                request.columns,
            ),
        )

    def pair_degrees(
        self,
        membership: object,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
    ) -> list[float] | None:
        """Cluster analog of :meth:`ColumnarSummaryStore.pair_degrees`.

        One synchronous fan-out: issue, pump, gather.  Degrees are exactly
        those of the unsharded store — hydrated snapshots round-trip every
        float bit and the kernels are row-independent.
        """
        request = self.request_degrees(membership, entity_ids, attribute, phrase)
        if request is None:
            return None
        return self.collect_degrees(request)

    def pair_degrees_bounded(
        self,
        membership: object,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
        threshold: float,
    ) -> "tuple[np.ndarray, np.ndarray, int, int] | None":
        """Threshold-pruned cluster scoring: nodes skip rows their bounds cap.

        The bounded twin of :meth:`pair_degrees`: the same per-slice plan is
        fanned out as ``score bounded`` frames carrying the coordinator's
        prune threshold, each node evaluates its hydrated slice's bound
        envelope before its exact kernel, and the responses scatter values
        plus a per-row exactness mask.  Hydration rides ahead of the first
        bounded score exactly as in :meth:`request_degrees`.  The returned
        counters cover the *requested* entities, mirroring the base store.
        ``None`` under the base store's fallback conditions (no kernel, no
        bound envelope, absent entities), in which case the caller takes
        the full exact path.
        """
        self._check_version()
        kernel = columnar_kernel(membership, self.database)
        if kernel is None or getattr(membership, "degree_bounds", None) is None:
            return None
        columns = self.base.columns(attribute)
        if columns is None:
            return None
        rows = [columns.row_of.get(entity_id) for entity_id in entity_ids]
        if any(row is None for row in rows):
            return None
        resident = sorted(set(rows))
        self._ensure_nodes(membership)
        bounds = partition_bounds(columns.num_entities, self.num_slices)
        slice_requests = plan_slice_requests(bounds, resident)
        values = np.empty(columns.num_entities)
        exact = np.zeros(columns.num_entities, dtype=bool)
        pending: list[_PendingCall] = []
        for slice_id, start, stop, slice_rows, scatter in slice_requests:
            self._issue_slice_call(
                pending,
                columns,
                attribute,
                phrase,
                slice_id,
                start,
                stop,
                slice_rows,
                scatter,
                threshold,
            )
        self.fanouts += 1
        self.rpc_requests += len(slice_requests)
        with span("transport", layer="cluster", requests=len(pending), bounded=True):
            for call in self._collect_calls(pending, columns):
                vector, mask, _scored, _pruned = call.reply.value
                values[call.scatter] = vector
                exact[call.scatter] = mask
        index = np.fromiter(rows, dtype=np.intp, count=len(rows))
        requested_exact = exact[index]
        scored = int(np.count_nonzero(requested_exact))
        pruned = int(index.size - scored)
        self.entities_scored += scored
        self.entities_pruned += pruned
        return values[index], requested_exact, scored, pruned

    # ------------------------------------------------------------ statistics
    def node_stats(self) -> list[dict]:
        """One ``stats`` RPC result per connected node (dead nodes skipped)."""
        return [stats for _, stats in self._indexed_node_stats()]

    def _indexed_node_stats(self) -> list[tuple[int, dict]]:
        """``(channel index, stats frame)`` per reachable node.

        Keyed by the coordinator's channel index, *not* the node's
        self-reported ``node`` id: an external fleet may number its
        servers however it likes (duplicates included), and a respawned
        managed node must keep reporting under the slot it serves.
        """
        replies: list[tuple[int, NodeReply]] = []
        for index, channel in enumerate(self._channels):
            if channel is None or channel.dead or channel.sock is None:
                continue
            replies.append((index, channel.enqueue(_U8.pack(OP_STATS), _decode_stats)))
        if replies:
            self._pump_until([reply for _, reply in replies], raise_errors=False)
        return [
            (index, reply.value)
            for index, reply in replies
            if reply.error is None and reply.done
        ]

    def node_traces(self, trace_id: int = 0, limit: int = 0) -> list[dict]:
        """Span records collected from every reachable node's trace store.

        Nodes record spans whenever a score frame carries a trace field
        (negotiated protocol v5+), so the coordinator can stitch one
        cross-process span tree by querying the fleet after a traced
        query.  Dead nodes are skipped, mirroring :meth:`node_stats`.
        """
        replies: list[NodeReply] = []
        for channel in self._channels:
            if channel is None or channel.dead or channel.sock is None:
                continue
            if channel.negotiated_version < TRACE_PROTOCOL_VERSION:
                continue
            replies.append(channel.enqueue(encode_traces_request(trace_id, limit), _decode_traces))
        if replies:
            self._pump_until(replies, raise_errors=False)
        spans: list[dict] = []
        for reply in replies:
            if reply.error is None and reply.done:
                spans.extend(reply.value)
        return spans

    def partition_stats(self) -> list[dict[str, object]]:
        """One dict per node: transport counters plus node cache activity.

        Transport counters (``requests``, ``bytes_sent``,
        ``bytes_received``, ``reconnects``, ``respawns``) are tracked
        coordinator-side and survive reconnects and respawns; for reachable
        nodes the dict additionally merges the node's own ``stats`` frame
        (``cache_hits``, ``cache_entries``, hydrated slices).  Unreachable
        nodes report transport counters only.  Node frames attach to the
        channel they arrived on, so a respawn cycle or an external fleet
        with clashing node ids can never double-assign one node's frame
        to another's entry.
        """
        remote: dict[int, dict] = dict(self._indexed_node_stats())
        entries: list[dict[str, object]] = []
        for index, counters in enumerate(self._node_counters):
            channel = self._channels[index]
            entry: dict[str, object] = {
                "node": index,
                "address": self._addresses[index],
                "connected": bool(
                    channel is not None and not channel.dead and channel.sock is not None
                ),
                **counters,
            }
            node_stats = remote.get(index)
            if node_stats is not None:
                entry["cache_hits"] = node_stats.get("cache_hits", 0)
                entry["cache_entries"] = node_stats.get("cache_entries", 0)
                entry["hydrated_slices"] = node_stats.get("hydrated_slices", 0)
                entry["delta_hydrations"] = node_stats.get("delta_hydrations", 0)
                entry["stale_slices"] = node_stats.get("stale_slices", 0)
                entry["data_version"] = node_stats.get("data_version", 0)
                entry["entities_scored"] = node_stats.get("entities_scored", 0)
                entry["entities_pruned"] = node_stats.get("entities_pruned", 0)
            entries.append(entry)
        return entries

    def transport_counters(self) -> dict[str, int]:
        """Aggregate transport counters (surfaced in ``run_batch`` stats)."""
        return {
            "rpc_requests": sum(c["requests"] for c in self._node_counters),
            "rpc_bytes_sent": sum(c["bytes_sent"] for c in self._node_counters),
            "rpc_bytes_received": sum(c["bytes_received"] for c in self._node_counters),
            "node_reconnects": sum(c["reconnects"] for c in self._node_counters),
            "node_respawns": sum(c["respawns"] for c in self._node_counters),
            "snapshot_hydrations": self.hydrations,
            "snapshot_delta_hydrations": self.delta_hydrations,
            "slice_failovers": self.failovers,
        }

    def stats_snapshot(self) -> dict[str, object]:
        """Coordinator counters plus the wrapped base store's snapshot."""
        return {
            "num_nodes": self.num_nodes,
            "num_slices": self.num_slices,
            "backend": "cluster",
            "managed": self._managed,
            "replication": self.replication,
            "data_version": self._version,
            "connected_nodes": len(self._live_channels()),
            "invalidations": self.invalidations,
            "fanouts": self.fanouts,
            "rpc_requests": self.rpc_requests,
            "hydrations": self.hydrations,
            "delta_hydrations": self.delta_hydrations,
            "local_hydrations": self.local_hydrations,
            "failovers": self.failovers,
            "entities_scored": self.entities_scored,
            "entities_pruned": self.entities_pruned,
            "base": self.base.stats_snapshot(),
        }


# --------------------------------------------------------------------------
# The concurrent coordinator engine
# --------------------------------------------------------------------------

@dataclass
class _PrefetchedQuery:
    """One batch query planned ahead, with its issued degree fan-outs.

    Each handle entry is ``(cache keys, store request, memo key or None,
    candidate ids)`` — the memo key is set when the fan-out covers the
    whole candidate set, so absorbing it can pre-fill the vector memo.
    """

    sql: str
    data_version: int
    handles: list[tuple] = field(default_factory=list)


class ClusterQueryEngine(ShardedSubjectiveQueryEngine):
    """Serving front end over TCP shard nodes; results exactly equal to the
    unsharded engine, with a concurrent batch coordinator.

    Planning, WHERE-tree vectorization over degree arrays, and the exact
    ``(-score, str(entity_id), position)`` top-k merge are inherited from
    the sharded engine verbatim; only the degree transport (an installed
    :class:`ClusterShardStore`) and :meth:`run_batch` differ.

    ``run_batch`` keeps a bounded window of up to ``max_inflight_queries``
    queries planned ahead of the one currently executing: each windowed
    query's uncached membership fan-outs are issued to the nodes
    immediately, so while the coordinator ranks query *i*, the nodes are
    already computing degrees for queries *i+1 … i+W*.  The look-ahead
    window additionally enables **vector-level reuse**: once one windowed
    query has assembled a predicate pair's degree vector over the shared
    candidate set, every other query in the batch touching the same pair
    reuses the vector outright instead of re-walking the per-entity
    membership cache — the dominant coordinator cost under overlapping
    query traffic.  Results are **bit-identical** to serial execution: the
    prefetch only pre-fills the same membership cache the serial path
    would fill, with the same deterministic values (kernels are
    row-independent, so request batching cannot change any bit), reused
    vectors hold exactly the values the per-entity walk would have
    gathered, duplicate work is suppressed exactly where the serial path
    would have had a cache hit, and a mid-batch ``data_version`` bump
    discards every prefetched value from the old version before it can be
    served.  The returned :class:`~repro.serving.engine.BatchResult`
    reports serial-equivalent cache statistics (what a one-query-at-a-time
    execution would have counted) plus the real transport counter deltas.

    Fleet shape mirrors :class:`ClusterShardStore`: a managed local fleet
    of ``num_nodes`` forked TCP nodes by default, or ``addresses=...`` to
    serve over externally started :class:`ShardNodeServer` instances.  Set
    ``max_inflight_queries=1`` for a strictly serial coordinator (the
    baseline the cluster benchmark measures against).
    """

    engine_backends = ("cluster",)

    def __init__(
        self,
        database: SubjectiveDatabase | None = None,
        processor: SubjectiveQueryProcessor | None = None,
        num_nodes: int | None = None,
        num_shards: int | None = None,
        plan_cache_size: int | None = 256,
        membership_cache_size: int | None = 200_000,
        candidate_cache_size: int | None = 64,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        node_cache_size: int | None = DEFAULT_WORKER_CACHE_SIZE,
        addresses: Sequence[tuple[str, int]] | None = None,
        window: int = DEFAULT_INFLIGHT_WINDOW,
        max_inflight_queries: int = DEFAULT_MAX_INFLIGHT_QUERIES,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        io_timeout: float = DEFAULT_IO_TIMEOUT,
        replication: int = 1,
        snapshot_compression: bool = False,
        centroid_tolerance: float | None = None,
        data_dir: str | None = None,
    ) -> None:
        if addresses is not None:
            num_nodes = len(addresses)
        elif num_nodes is None:
            num_nodes = default_num_shards()
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if max_inflight_queries < 1:
            raise ValueError(
                f"max_inflight_queries must be positive, got {max_inflight_queries}"
            )
        self.num_nodes = num_nodes
        self.max_frame_bytes = max_frame_bytes
        self.node_cache_size = node_cache_size
        self.addresses = list(addresses) if addresses is not None else None
        self.window = window
        self.max_inflight_queries = max_inflight_queries
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.replication = replication
        self.snapshot_compression = snapshot_compression
        self.centroid_tolerance = centroid_tolerance
        self.data_dir = data_dir
        # Batch-local (attribute, phrase) → (unique_ids, degrees) memo;
        # active only inside a concurrent run_batch, cleared on every
        # invalidation so it can never outlive a data version.  The
        # prefetch record tracks pairs whose keys were already issued or
        # found cached by an earlier windowed query.
        self._vector_memo: dict[tuple, tuple] | None = None
        self._prefetched_pairs: dict[tuple, Sequence[Hashable]] = {}
        super().__init__(
            database=database,
            processor=processor,
            num_shards=num_shards if num_shards is not None else num_nodes,
            backend="cluster",
            max_workers=num_nodes,
            plan_cache_size=plan_cache_size,
            membership_cache_size=membership_cache_size,
            candidate_cache_size=candidate_cache_size,
        )

    def _build_sharded_store(
        self, base: ColumnarSummaryStore | None, max_workers: int | None
    ) -> ClusterShardStore:
        """Install a :class:`ClusterShardStore` as the processor's columnar store."""
        return ClusterShardStore(
            self.database,
            num_nodes=max_workers,
            num_slices=self.num_shards,
            base=base,
            max_frame_bytes=self.max_frame_bytes,
            node_cache_size=self.node_cache_size,
            addresses=self.addresses,
            window=self.window,
            connect_timeout=self.connect_timeout,
            io_timeout=self.io_timeout,
            replication=self.replication,
            snapshot_compression=self.snapshot_compression,
            centroid_tolerance=self.centroid_tolerance,
            data_dir=self.data_dir,
        )

    # ----------------------------------------------------- vector-level reuse
    def invalidate(self) -> None:
        """Drop engine caches and the batch-local vector memo together."""
        self._vector_memo = None if self._vector_memo is None else {}
        self._prefetched_pairs = {}
        super().invalidate()

    @staticmethod
    def _same_ids(stored: Sequence[Hashable], unique_ids: Sequence[Hashable]) -> bool:
        """Whether two candidate-id sequences are the same set of rows."""
        return stored is unique_ids or list(stored) == list(unique_ids)

    @staticmethod
    def _pair_signature(
        attribute: str | None, phrase: str, unique_ids: Sequence[Hashable]
    ) -> tuple:
        """A cheap memo key for one predicate pair over one candidate set.

        Batch queries may run over different candidate sets (objective
        filters, the empty set of an all-crisp-false pre-filter), so the
        ids participate in the key through an O(1) signature; lookups still
        verify full id equality before reusing anything, so a signature
        collision can only cost a recomputation, never change a value.
        """
        if len(unique_ids):
            return (attribute, phrase, len(unique_ids), unique_ids[0], unique_ids[-1])
        return (attribute, phrase, 0, None, None)

    def _memo_lookup(self, key: tuple, unique_ids: Sequence[Hashable]):
        memo = self._vector_memo
        if memo is None:
            return None
        entry = memo.get(key)
        if entry is None:
            return None
        memo_ids, values = entry
        if self._same_ids(memo_ids, unique_ids):
            return values
        return None

    def _cached_pair_degrees(
        self, entity_ids: Sequence[Hashable], attribute: str, phrase: str
    ) -> list[float]:
        """Pair degrees with batch-local vector reuse (concurrent batches only).

        Inside a concurrent ``run_batch``, the first query assembling one
        predicate pair's degree list over the batch's shared candidate set
        memoises the whole list; later windowed queries over the same ids
        reuse it outright — the values are exactly what the per-entity
        cache walk would have returned, so results cannot change, and the
        walk (hundreds of tuple builds and cache probes per query) is the
        dominant coordinator cost under overlapping traffic.
        """
        key = self._pair_signature(attribute, phrase, entity_ids)
        values = self._memo_lookup(key, entity_ids)
        if values is not None:
            return values
        values = super()._cached_pair_degrees(entity_ids, attribute, phrase)
        if self._vector_memo is not None:
            self._vector_memo[key] = (list(entity_ids), values)
        return values

    def _prune_enabled(self) -> bool:
        """Pruning is off inside a concurrent batch.

        The prefetch window has already issued (or finished) full exact
        fan-outs for every windowed query's predicate pairs; a bounded
        re-fetch would only duplicate node work the batch machinery has
        paid for, so the serial ranking path over the warm caches wins.
        """
        return self._vector_memo is None

    def _cached_retrieval_degrees(
        self, entity_ids: Sequence[Hashable], predicate: str
    ) -> list[float]:
        """Retrieval degrees with the same batch-local vector reuse."""
        key = self._pair_signature(None, predicate, entity_ids)
        values = self._memo_lookup(key, entity_ids)
        if values is not None:
            return values
        values = super()._cached_retrieval_degrees(entity_ids, predicate)
        if self._vector_memo is not None:
            self._vector_memo[key] = (list(entity_ids), values)
        return values

    # ------------------------------------------------------- concurrent batch
    def run_batch(self, sqls: Sequence[str], top_k: int | None = None) -> BatchResult:
        """Execute many queries, overlapping their node fan-outs.

        With ``max_inflight_queries`` of 1 (or no cluster store installed)
        this is exactly the inherited serial batch.  Otherwise queries are
        consumed from ``sqls`` into a bounded look-ahead window; each
        windowed query is planned and its uncached degree work issued to
        the nodes, then queries are completed strictly in input order —
        results, per-query latencies and ranked output are bit-identical to
        the serial path.
        """
        if self.max_inflight_queries <= 1 or self.sharded_store is None:
            return super().run_batch(sqls, top_k=top_k)
        self._check_data_version()
        transport_before = self._cache_counters()
        accounting = {
            "plan_hits": 0,
            "plan_misses": 0,
            "membership_hits": 0,
            "membership_misses": 0,
            "candidate_hits": 0,
            "candidate_misses": 0,
        }
        pending: dict[tuple, int] = {}
        iterator = iter(sqls)
        window: deque[_PrefetchedQuery] = deque()
        exhausted = False
        results = []
        latencies: list[float] = []
        self._vector_memo = {}
        self._prefetched_pairs = {}
        started = now()
        try:
            while True:
                while not exhausted and len(window) < self.max_inflight_queries:
                    try:
                        sql = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    window.append(self._prefetch_query(sql, pending, accounting))
                if not window:
                    break
                item = window.popleft()
                query_started = now()
                self._absorb_prefetch(item)
                results.append(self.execute(item.sql, top_k=top_k))
                latencies.append(now() - query_started)
        finally:
            self._vector_memo = None
            self._prefetched_pairs = {}
        elapsed = now() - started
        self.stats.batch_queries += len(results)
        transport_after = self._cache_counters()
        cache_stats = dict(accounting)
        for name, value in transport_after.items():
            if name not in cache_stats:
                cache_stats[name] = value - transport_before.get(name, 0)
        return BatchResult(
            results=results,
            latencies=latencies,
            elapsed_seconds=elapsed,
            cache_stats=cache_stats,
        )

    def _prefetch_query(
        self, sql: str, pending: dict[tuple, int], accounting: dict[str, int]
    ) -> _PrefetchedQuery:
        """Plan one windowed query and issue its uncached degree fan-outs.

        Accounting mirrors what a serial execution would have counted at
        this point in the input order: a membership key already cached *or*
        already requested by an earlier batch query is a hit (serial would
        have found it cached by now), everything else is a miss and is
        requested exactly once.
        """
        self._check_data_version()
        version = self.database.data_version
        # A version bump between windowed queries orphans every pending
        # record at once (the caches they describe were cleared), so one
        # sentinel comparison suffices — all live entries share a version.
        if pending and next(iter(pending.values())) != version:
            pending.clear()
        plan_key = normalize_sql(sql)
        if plan_key in self.plan_cache:
            accounting["plan_hits"] += 1
        else:
            accounting["plan_misses"] += 1
        plan = self.plan(sql)
        if plan_key in self.candidate_cache:
            accounting["candidate_hits"] += 1
        else:
            accounting["candidate_misses"] += 1
        candidates = self._candidate_rows(plan)
        item = _PrefetchedQuery(sql=sql, data_version=version)
        processor = self.processor
        for predicate, interpretation in plan.interpretations.items():
            if (
                interpretation.method is InterpretationMethod.TEXT_RETRIEVAL
                or not interpretation.pairs
            ):
                self._prefetch_keys(
                    item,
                    candidates.unique_ids,
                    None,
                    predicate,
                    pending,
                    accounting,
                    compute=lambda missing, p=predicate: processor.retrieval_degrees(missing, p),
                )
            else:
                for pair in interpretation.pairs:
                    phrase = processor.phrase_for_pair(interpretation, pair.marker)
                    self._prefetch_keys(
                        item,
                        candidates.unique_ids,
                        pair.attribute,
                        phrase,
                        pending,
                        accounting,
                        compute=lambda missing, a=pair.attribute, p=phrase: (
                            processor.pair_degrees(missing, a, p)
                        ),
                    )
        return item

    def _prefetch_keys(
        self,
        item: _PrefetchedQuery,
        unique_ids: Sequence[Hashable],
        attribute: str | None,
        phrase: str,
        pending: dict[tuple, int],
        accounting: dict[str, int],
        compute,
    ) -> None:
        """Issue (or inline-compute) the uncached degrees of one predicate pair.

        Predicate pairs are deduplicated at two levels before any per-key
        work: the vector memo (an earlier batch query already *assembled*
        the pair's vector) and the prefetch record (an earlier windowed
        query already *issued or found cached* every key of the pair over
        the same candidate set).  Either way a serial execution would have
        found every key cached by the time this query ran, so the whole
        pair counts as hits.
        """
        pair_key = self._pair_signature(attribute, phrase, unique_ids)
        if self._memo_lookup(pair_key, unique_ids) is not None:
            accounting["membership_hits"] += len(unique_ids)
            return
        recorded = self._prefetched_pairs.get(pair_key)
        if recorded is not None and self._same_ids(recorded, unique_ids):
            accounting["membership_hits"] += len(unique_ids)
            return
        self._prefetched_pairs[pair_key] = unique_ids
        keys = [(entity_id, attribute, phrase) for entity_id in unique_ids]
        present = self.membership_cache.peek_many(keys, _PREFETCH_MISSING)
        missing_ids: list[Hashable] = []
        missing_keys: list[tuple] = []
        hits = 0
        for entity_id, key, value in zip(unique_ids, keys, present):
            if value is not _PREFETCH_MISSING or key in pending:
                hits += 1
            else:
                missing_ids.append(entity_id)
                missing_keys.append(key)
        accounting["membership_hits"] += hits
        accounting["membership_misses"] += len(missing_ids)
        if not missing_ids:
            return
        for key in missing_keys:
            pending[key] = item.data_version
        # The asynchronous node path is only correct where the serial path
        # would itself route through the columnar store: the marker-free
        # ablation (``use_markers=False``) and the scalar baseline
        # (``use_columnar=False``) must take the processor's own compute
        # path, exactly like ``processor.pair_degrees`` would.
        handle = None
        if attribute is not None and self.processor.use_markers and self.processor.use_columnar:
            handle = self.sharded_store.request_degrees(
                self.processor.membership, missing_ids, attribute, phrase
            )
        if handle is None:
            # No asynchronous path (text retrieval, or no columnar kernel):
            # compute inline — the exact computation the serial path runs —
            # and fill the cache immediately.
            values = compute(missing_ids)
            self.membership_cache.put_many(list(zip(missing_keys, values)))
            return
        # When the fan-out covers the whole candidate set (a cold pair),
        # its collected values *are* the pair's vector: remember enough to
        # pre-fill the vector memo at absorb time, sparing the first
        # per-entity walk too.
        memo_fill = pair_key if len(missing_ids) == len(unique_ids) else None
        item.handles.append((missing_keys, handle, memo_fill, unique_ids))

    def _absorb_prefetch(self, item: _PrefetchedQuery) -> None:
        """Land one windowed query's fan-out results in the membership cache.

        Values from a superseded ``data_version`` are discarded unfilled —
        the following ``execute`` recomputes against current data — and
        node-loss errors are swallowed for superseded requests only; for a
        current-version request they surface exactly as the serial path's
        :class:`~repro.serving.protocol.WorkerCrashedError` would.
        """
        for keys, handle, memo_fill, unique_ids in item.handles:
            stale = self.database.data_version != handle.data_version
            try:
                values = self.sharded_store.collect_degrees(handle)
            except RpcError:
                if stale:
                    continue
                raise
            if not stale:
                self.membership_cache.put_many(list(zip(keys, values)))
                if memo_fill is not None and self._vector_memo is not None:
                    self._vector_memo[memo_fill] = (list(unique_ids), values)

    # ----------------------------------------------------------- statistics
    def stats_snapshot(self) -> dict[str, object]:
        """Serving counters plus cluster fan-out and per-node statistics."""
        snapshot = super().stats_snapshot()
        snapshot["num_nodes"] = self.num_nodes
        snapshot["max_inflight_queries"] = self.max_inflight_queries
        if self.sharded_store is not None:
            snapshot["nodes"] = self.sharded_store.partition_stats()
        return snapshot


def start_local_node(
    membership: object,
    host: str = "127.0.0.1",
    port: int = 0,
    node_id: int = 0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    cache_size: int | None = DEFAULT_WORKER_CACHE_SIZE,
    data_dir: str | None = None,
) -> tuple[ShardNodeServer, "object"]:
    """Start a :class:`ShardNodeServer` on a daemon thread; returns (server, thread).

    The convenience entry point for examples and tests that want an
    in-process node reachable over real TCP: bind, serve in the
    background, read ``server.address``, and hand the address to
    :class:`ClusterQueryEngine` via ``addresses=[...]``.  Stop it with
    ``server.stop()`` (after closing the engine, so the node is not
    mid-request).
    """
    server = ShardNodeServer(
        node_id=node_id,
        membership=membership,
        max_frame_bytes=max_frame_bytes,
        cache_size=cache_size,
        data_dir=data_dir,
    )
    server.bind(host, port)
    thread = threading.Thread(
        target=server.serve_forever, name=f"repro-cluster-node-{node_id}", daemon=True
    )
    thread.start()
    return server, thread


def main(argv: Sequence[str] | None = None) -> int:
    """Serve one shard node over TCP from a persistent storage directory.

    ``python -m repro.serving.cluster --data-dir DIR`` boots the membership
    function from the directory's catalog (the persisted embedder drives
    :class:`~repro.core.membership.HeuristicMembership`), maps the column
    files, and serves until interrupted.  A coordinator whose
    ``data_version`` matches the catalog's never ships a hydrate frame to
    this node — the warm-restart path the storage tier exists for.
    """
    import argparse

    from repro.core.membership import HeuristicMembership

    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.cluster",
        description="Serve a cluster shard node from a persistent storage directory.",
    )
    parser.add_argument(
        "--data-dir",
        required=True,
        help="storage directory written by SubjectiveDatabase.save()",
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument("--port", type=int, default=0, help="listen port (0 = ephemeral)")
    parser.add_argument("--node-id", type=int, default=0, help="node id reported in stats")
    parser.add_argument(
        "--cache-size",
        type=int,
        default=DEFAULT_WORKER_CACHE_SIZE,
        help="per-slice degree-vector cache entries",
    )
    options = parser.parse_args(argv)
    database = SubjectiveDatabase.open(options.data_dir)
    membership = HeuristicMembership(embedder=database.phrase_embedder)
    server = ShardNodeServer(
        node_id=options.node_id,
        membership=membership,
        cache_size=options.cache_size,
        data_dir=options.data_dir,
    )
    host, port = server.bind(options.host, options.port)
    print(
        f"node {options.node_id} serving {options.data_dir} "
        f"(data_version {server.data_version}, local_store={server._local_store_fresh}) "
        f"on {host}:{port}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
