"""Entity-sharded serving: slice-partitioned columnar scoring with top-k merge.

Subjective-query evaluation is embarrassingly parallel over entities: every
scoring kernel of :mod:`repro.core.columnar` is row-independent, so any row
range of an attribute's column arrays can be scored on its own and the
results concatenated.  This module makes the shard the unit of placement:

* :func:`partition_bounds` — the one partitioning rule: K contiguous,
  exhaustive, disjoint row ranges whose sizes differ by at most one;
* :class:`ShardedColumnarStore` — partitions a
  :class:`~repro.core.columnar.ColumnarSummaryStore`'s E axis into K
  contiguous *slice views* (NumPy basic slices — no copies) and fans a
  predicate's uncached-degree computation out across them, serially or
  through a ``concurrent.futures`` executor.  Threads release the GIL
  inside the NumPy kernels; the process backend ships ``(attribute, start,
  stop)`` slice indices — never arrays — to forked workers that rebuild
  their columns from the inherited database;
* :func:`fuzzy_score_arrays` — the WHERE tree evaluated over degree
  *vectors* instead of row by row, using the fuzzy logic's array
  connectives (bit-identical elementwise to the scalar walk);
* :func:`merge_shard_topk` — per-shard top-k heaps merged into the global
  ranking under exactly the processor's ``(-score, str(entity_id))`` order
  with candidate position as the deterministic tie-break (the stable-sort
  order of the unsharded path);
* :class:`ShardedSubjectiveQueryEngine` — the serving front end wiring it
  together: the sharded store is installed as the processor's columnar
  store (so every degree the processor computes is shard-routed), the
  membership cache is partitioned per shard, and ranking runs per shard
  with a global merge.

Results are exactly — not approximately — those of the unsharded
:class:`~repro.serving.engine.SubjectiveQueryEngine`; the differential test
suite pins equality of rankings, scores and degrees for shard counts
{1, 2, 3, 7} on two domains.  Invalidation stays ``data_version``-driven:
one version bump drops shard slices, the base columns, and every membership
cache partition together.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from itertools import islice
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.core.columnar import (
    AttributeColumns,
    ColumnarSummaryStore,
    columnar_kernel,
    gather_degrees,
    gather_rows,
    plan_slice_requests,
    resolve_slice,
    scalar_fallback_scorer,
    slice_view,
)
from repro.core.database import SubjectiveDatabase
from repro.core.fuzzy import FuzzyLogic
from repro.core.interpreter import InterpretationMethod
from repro.core.processor import (
    QueryResult,
    RankedEntity,
    SubjectiveQueryProcessor,
)
from repro.engine.expressions import (
    AndExpression,
    BetweenExpression,
    ComparisonExpression,
    Expression,
    InExpression,
    NotExpression,
    OrExpression,
    SubjectivePredicate,
)
from repro.errors import ExecutionError
from repro.obs.metrics import MetricsRegistry, cell_property
from repro.obs.trace import span
from repro.serving.cache import PartitionedLRUCache
from repro.serving.engine import _MISSING, CandidateSet, SubjectiveQueryEngine
from repro.serving.plans import QueryPlan

BACKENDS = ("serial", "thread", "process")


# --------------------------------------------------------------------------
# Partitioning rule
# --------------------------------------------------------------------------

def default_num_shards() -> int:
    """A sensible shard count for this machine: one per core, at least one.

    The default for both :class:`ShardedColumnarStore` and
    :class:`ShardedSubjectiveQueryEngine` when ``num_shards`` is not given.
    """
    return max(1, os.cpu_count() or 1)


def partition_bounds(num_rows: int, num_shards: int) -> list[int]:
    """K+1 monotone bounds splitting ``range(num_rows)`` into K contiguous slices.

    Shard ``i`` owns rows ``[bounds[i], bounds[i+1])``.  The slices are
    disjoint, cover every row exactly once, and differ in size by at most
    one (the first ``num_rows % num_shards`` shards get the extra row).
    Shards beyond ``num_rows`` are empty, never dropped, so shard indexes
    are stable regardless of the row count.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if num_rows < 0:
        raise ValueError(f"num_rows must be non-negative, got {num_rows}")
    base, extra = divmod(num_rows, num_shards)
    bounds = [0]
    for index in range(num_shards):
        bounds.append(bounds[-1] + base + (1 if index < extra else 0))
    return bounds


@dataclass(frozen=True)
class ShardSlice:
    """One shard's contiguous row range of an attribute's columns (a view)."""

    index: int
    start: int
    stop: int
    columns: AttributeColumns

    @property
    def num_entities(self) -> int:
        """Number of entity rows the shard owns (``stop - start``)."""
        return self.stop - self.start


# --------------------------------------------------------------------------
# Execution backends
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardTask:
    """One shard's scoring work for a single predicate computation.

    ``rows`` is ``None`` for a full-slice kernel pass, or the slice-relative
    row indices for a gathered pass over a sparse subset of the slice (the
    base store's sparse-gather heuristic, applied per shard).
    """

    shard: ShardSlice
    rows: list[int] | None


class _SerialBackend:
    """Run shard tasks inline on the coordinating thread."""

    kind = "serial"

    def map_local(self, fn: Callable[[ShardTask], np.ndarray], tasks: Sequence[ShardTask]):
        """Score every task inline, in task order."""
        return [fn(task) for task in tasks]

    def invalidate(self) -> None:
        """No state to drop (tasks run inline on current data)."""

    def shutdown(self) -> None:
        """Nothing to shut down."""


class _ThreadBackend:
    """Fan shard tasks out over a thread pool.

    The kernels are NumPy-bound and release the GIL, so threads scale with
    cores without any data movement: every worker scores views into the
    parent's column arrays.  Actual concurrency is sized to the hardware:
    tasks are chunked into at most ``min(max_workers, cpu_count)`` groups
    (shard *placement* stays per-shard; only the executor refuses to
    oversubscribe), and a single-core host runs tasks inline — parallelism
    cannot help there, so the fan-out dispatch cost is not paid either.
    """

    kind = "thread"

    def __init__(self, max_workers: int) -> None:
        self.max_workers = max(1, max_workers)
        self.parallelism = max(1, min(self.max_workers, os.cpu_count() or 1))
        self._pool: ThreadPoolExecutor | None = None

    def map_local(self, fn: Callable[[ShardTask], np.ndarray], tasks: Sequence[ShardTask]):
        """Score tasks on the pool (inline when parallelism cannot help)."""
        if len(tasks) <= 1 or self.parallelism == 1:
            return [fn(task) for task in tasks]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="repro-shard",
            )
        if len(tasks) <= self.parallelism:
            return list(self._pool.map(fn, tasks))
        # More tasks than usable cores: strided chunks, one per worker, so
        # each task still runs exactly once and results keep task order.
        stride = self.parallelism

        def run_chunk(start: int) -> list[np.ndarray]:
            """Score every ``stride``-th task beginning at ``start``."""
            return [fn(task) for task in tasks[start::stride]]

        results: list[np.ndarray | None] = [None] * len(tasks)
        for start, chunk in enumerate(self._pool.map(run_chunk, range(stride))):
            results[start::stride] = chunk
        return results

    def invalidate(self) -> None:
        """No-op: threads hold no data-version state."""

    def shutdown(self) -> None:
        """Stop the thread pool (recreated lazily on the next fan-out)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# Registry of (database, membership) states visible to forked workers.  A
# forked child inherits the registry as of fork time; tasks carry the token
# of the state they need, so concurrently registered stores never collide.
_PROCESS_REGISTRY: dict[int, tuple[SubjectiveDatabase, object]] = {}
_PROCESS_TOKENS = itertools.count(1)
_CHILD_STORES: dict[int, ColumnarSummaryStore] = {}


def _process_score(payload: tuple) -> np.ndarray:
    """Score one shard task inside a forked worker.

    Only slice indices travel over the pipe; the worker rebuilds its column
    arrays (once, cached per token) from the database snapshot it inherited
    at fork time.  Deterministic construction makes the arrays — and hence
    the kernel results — identical to the parent's.
    """
    token, attribute, phrase, start, stop, rows = payload
    database, membership = _PROCESS_REGISTRY[token]
    store = _CHILD_STORES.get(token)
    if store is None:
        store = database.columnar_store()
        _CHILD_STORES[token] = store
    columns = store.columns(attribute)
    kernel = columnar_kernel(membership, database)
    return kernel(resolve_slice(columns, start, stop, rows), phrase)


class _ProcessBackend:
    """Fan shard tasks out over forked worker processes.

    Workers inherit the database at fork time and rebuild their own column
    arrays; tasks ship slice indices, not arrays.  Requires the ``fork``
    start method (the inherited-snapshot contract cannot hold under
    ``spawn``); invalidation recycles the pool so no worker ever serves a
    stale snapshot.
    """

    kind = "process"

    def __init__(self, max_workers: int) -> None:
        if multiprocessing.get_start_method(allow_none=False) != "fork":
            raise ExecutionError(
                "the process shard backend requires the 'fork' start method; "
                "use backend='thread' on this platform"
            )
        self.max_workers = max(1, max_workers)
        self._pool: ProcessPoolExecutor | None = None
        self._token: int | None = None

    def register(self, database: SubjectiveDatabase, membership: object) -> int:
        """Publish the state workers must inherit; returns its task token.

        Forked workers pin the registry as of fork time, so registering a
        *different* database or membership recycles the pool — the next
        fan-out re-forks with the new state instead of silently scoring
        with the stale snapshot.
        """
        if self._token is None:
            self._token = next(_PROCESS_TOKENS)
        current = _PROCESS_REGISTRY.get(self._token)
        if current is not None and (
            current[0] is not database or current[1] is not membership
        ):
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        _PROCESS_REGISTRY[self._token] = (database, membership)
        return self._token

    def map_payloads(self, payloads: Sequence[tuple]) -> list[np.ndarray]:
        """Score slice payloads on the forked pool, in payload order."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return list(self._pool.map(_process_score, payloads))

    def invalidate(self) -> None:
        """Recycle the pool: the data changed, so forked snapshots are stale.

        A fresh fork re-inherits the registry with the current data.
        """
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the forked pool and unpublish this backend's registry state."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._token is not None:
            _PROCESS_REGISTRY.pop(self._token, None)
            self._token = None


def _make_backend(name: str, max_workers: int):
    if name == "serial":
        return _SerialBackend()
    if name == "thread":
        return _ThreadBackend(max_workers)
    if name == "process":
        return _ProcessBackend(max_workers)
    raise ValueError(f"unknown shard backend {name!r}; expected one of {BACKENDS}")


# --------------------------------------------------------------------------
# The sharded store
# --------------------------------------------------------------------------

class ShardedColumnarStore:
    """K contiguous slice views over a columnar store, with fan-out scoring.

    Implements the same ``pair_degrees`` protocol as
    :class:`~repro.core.columnar.ColumnarSummaryStore`, so a
    :class:`~repro.core.processor.SubjectiveQueryProcessor` can route
    through it unchanged.  Degrees are exactly those of the base store: the
    kernels are row-independent, so scoring each slice view separately
    performs the same per-row arithmetic as one full pass.

    Invalidation is ``data_version``-driven like every other serving-layer
    cache: a version bump drops the shard slices *and* the base store's
    columns together (and recycles process-backend workers, whose forked
    snapshots are stale).
    """

    def __init__(
        self,
        database: SubjectiveDatabase,
        num_shards: int | None = None,
        backend: str = "serial",
        base: ColumnarSummaryStore | None = None,
        max_workers: int | None = None,
    ) -> None:
        if num_shards is None:
            num_shards = default_num_shards()
        if num_shards < 1:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.database = database
        self.num_shards = num_shards
        self.base = base if base is not None else database.columnar_store()
        self.backend = _make_backend(backend, max_workers or num_shards)
        self._slices: dict[str, list[ShardSlice] | None] = {}
        self._version = database.data_version
        # Counter cells in the store's registry; the public attributes are
        # value-read/cell-write properties (cell_property) over them, so
        # existing ``store.fanouts += 1`` call sites and value reads keep
        # their old semantics while the registry exports the live cells.
        self.metrics = MetricsRegistry()
        self._invalidations_cell = self.metrics.counter("invalidations")
        self._fanouts_cell = self.metrics.counter(
            "fanouts", help="Sharded kernel passes (one per predicate computation)"
        )
        self._shard_kernel_calls_cell = self.metrics.counter(
            "shard_kernel_calls", help="Individual per-slice kernel executions"
        )
        self._entities_scored_cell = self.metrics.counter(
            "entities_scored", help="Rows scored exactly on the bounded path"
        )
        self._entities_pruned_cell = self.metrics.counter(
            "entities_pruned", help="Rows dismissed on a bound alone"
        )

    invalidations = cell_property("_invalidations_cell")
    fanouts = cell_property("_fanouts_cell")
    shard_kernel_calls = cell_property("_shard_kernel_calls_cell")
    entities_scored = cell_property("_entities_scored_cell")
    entities_pruned = cell_property("_entities_pruned_cell")

    # ------------------------------------------------------------ lifecycle
    def invalidate(self) -> None:
        """Drop shard slices and base columns together; recycle stale workers."""
        self._slices.clear()
        self.base.invalidate()
        self.backend.invalidate()
        self._version = self.database.data_version
        self.invalidations += 1

    def _check_version(self) -> None:
        if self._version != self.database.data_version:
            self.invalidate()

    @property
    def data_version(self) -> int:
        """The database version the current slices were built against."""
        return self._version

    def close(self) -> None:
        """Shut down executor workers (idempotent)."""
        self.backend.shutdown()

    # ----------------------------------------------------------- partitions
    def columns(self, attribute: str) -> AttributeColumns | None:
        """The unpartitioned column arrays (delegates to the base store)."""
        self._check_version()
        return self.base.columns(attribute)

    def shard_slices(self, attribute: str) -> list[ShardSlice] | None:
        """The K contiguous slice views of one attribute (empty slices kept).

        ``None`` when the attribute has no columns.  Slices are NumPy basic
        slices of the base arrays — building them copies nothing, and they
        are cached per attribute until the data version moves.
        """
        self._check_version()
        if attribute not in self._slices:
            columns = self.base.columns(attribute)
            if columns is None:
                self._slices[attribute] = None
            else:
                bounds = partition_bounds(columns.num_entities, self.num_shards)
                self._slices[attribute] = [
                    ShardSlice(index, start, stop, slice_view(columns, start, stop))
                    for index, (start, stop) in enumerate(zip(bounds, bounds[1:]))
                ]
        return self._slices[attribute]

    # -------------------------------------------------------------- scoring
    def pair_degrees(
        self,
        membership: object,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
    ) -> list[float] | None:
        """Sharded analog of :meth:`ColumnarSummaryStore.pair_degrees`.

        Resident entities are grouped by shard and each shard's kernel runs
        over its slice view (gathered down to the requested rows when they
        are a sparse subset of the slice, mirroring the base store's
        heuristic per shard); the backend decides where the per-slice
        kernels execute.  Entities absent from the columns fall back to
        per-entity scalar scoring on the coordinating thread, exactly like
        the base store.  Returns ``None`` under the same conditions the
        base store does, so callers' fallback behaviour is unchanged.
        """
        self._check_version()
        kernel = columnar_kernel(membership, self.database)
        if kernel is None:
            return None
        if self.backend.kind == "thread" and self.backend.parallelism == 1:
            # The executor found no usable parallelism (single-core host):
            # per-slice dispatch would be pure overhead, so run the base
            # store's one-kernel pass — the kernels are row-independent, so
            # the arithmetic (and hence every degree) is identical.
            return self.base.pair_degrees(membership, entity_ids, attribute, phrase)
        columns = self.base.columns(attribute)
        if columns is None:
            return None
        rows = [columns.row_of.get(entity_id) for entity_id in entity_ids]
        resident = sorted({row for row in rows if row is not None})
        batch: np.ndarray | None = None
        if resident:
            batch = np.empty(columns.num_entities)
            tasks, scatters = self._plan_tasks(attribute, resident)
            embedder = getattr(membership, "embedder", None)
            if embedder is not None:
                # Warm the phrase-embedding memo once so concurrent shard
                # kernels all hit the cache instead of re-embedding.
                embedder.represent(phrase)
            results = self._run_tasks(membership, kernel, attribute, phrase, tasks)
            for scatter_rows, result in zip(scatters, results):
                batch[scatter_rows] = result
            self.fanouts += 1
            self.shard_kernel_calls += len(tasks)
        return gather_degrees(
            batch,
            rows,
            entity_ids,
            scalar_fallback_scorer(membership, self.database, attribute, phrase, columns),
        )

    def pair_degrees_bounded(
        self,
        membership: object,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
        threshold: float,
    ):
        """Threshold-aware analog of :meth:`pair_degrees` for top-k pruning.

        Delegates to the base store's
        :meth:`~repro.core.columnar.ColumnarSummaryStore.pair_degrees_bounded`
        regardless of backend: the bounded path exists to *avoid* kernel
        work on cold selective queries, so the fan-out machinery (whose
        value is parallelising full passes) would only add dispatch
        overhead around a mostly-skipped computation.  Returns the base
        store's ``(values, exact_mask, scored, pruned)`` — or ``None`` when
        the membership function has no bound support, sending the caller
        back to the exact sharded path.
        """
        self._check_version()
        result = self.base.pair_degrees_bounded(
            membership, entity_ids, attribute, phrase, threshold
        )
        if result is not None:
            _values, _exact, scored, pruned = result
            self.entities_scored += scored
            self.entities_pruned += pruned
        return result

    def pair_degree_envelope(
        self,
        membership: object,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
    ):
        """Bound envelope gather, delegated straight to the base store.

        Like :meth:`pair_degrees_bounded` this stays off the fan-out
        machinery: the envelope read is a cached array gather, far below
        any dispatch overhead.
        """
        self._check_version()
        return self.base.pair_degree_envelope(membership, entity_ids, attribute, phrase)

    def _plan_tasks(
        self, attribute: str, resident: list[int]
    ) -> tuple[list[ShardTask], list[object]]:
        """Group sorted resident rows by shard into kernel tasks plus scatter targets.

        Each task pairs a shard slice with the slice-relative rows to score
        (``None`` for a full-slice pass; the base store's sparse-gather
        heuristic is applied per shard).  Scatter targets place each task's
        result back into the store-wide degree array.  The grouping itself
        is :func:`repro.core.columnar.plan_slice_requests` — the same plan
        the RPC coordinator ships to shard-service workers.
        """
        slices = self.shard_slices(attribute)
        bounds = [shard.start for shard in slices] + [slices[-1].stop if slices else 0]
        tasks: list[ShardTask] = []
        scatters: list[object] = []
        for slice_id, _start, _stop, rows, scatter in plan_slice_requests(bounds, resident):
            tasks.append(ShardTask(shard=slices[slice_id], rows=rows))
            scatters.append(scatter)
        return tasks, scatters

    def _run_tasks(
        self,
        membership: object,
        kernel,
        attribute: str,
        phrase: str,
        tasks: list[ShardTask],
    ) -> list[np.ndarray]:
        if self.backend.kind == "process":
            token = self.backend.register(self.database, membership)
            payloads = [
                (token, attribute, phrase, task.shard.start, task.shard.stop, task.rows)
                for task in tasks
            ]
            return self.backend.map_payloads(payloads)

        def score(task: ShardTask) -> np.ndarray:
            """Run the kernel over one task's (possibly gathered) slice view."""
            view = task.shard.columns
            if task.rows is not None:
                view = gather_rows(view, task.rows)
            return kernel(view, phrase)

        return self.backend.map_local(score, tasks)

    # ------------------------------------------------------------ statistics
    def stats_snapshot(self) -> dict[str, object]:
        """Shard counters plus the wrapped base store's snapshot."""
        return {
            "num_shards": self.num_shards,
            "backend": self.backend.kind,
            "data_version": self._version,
            "invalidations": self.invalidations,
            "fanouts": self.fanouts,
            "shard_kernel_calls": self.shard_kernel_calls,
            "entities_scored": self.entities_scored,
            "entities_pruned": self.entities_pruned,
            "base": self.base.stats_snapshot(),
        }


# --------------------------------------------------------------------------
# Vectorized WHERE-tree scoring
# --------------------------------------------------------------------------

class _NotVectorizable(Exception):
    """Internal: the WHERE tree (or logic) has no exact array form."""


def fuzzy_score_arrays(
    where: Expression | None,
    rows: Sequence[dict],
    degree_vectors: dict[str, np.ndarray],
    logic: FuzzyLogic,
) -> np.ndarray | None:
    """Fuzzy scores of every candidate row, evaluated as degree vectors.

    The WHERE tree is walked once; connectives combine length-N degree
    vectors through the logic's array forms, which fold operands in the
    same order and with the same validation as the scalar connectives — so
    ``result[i]`` is bit-identical to ``where.fuzzy(rows[i], ...)``.
    Objective leaves stay crisp per-row evaluations (exact 0.0/1.0).

    Returns ``None`` when the logic provides no array connectives; callers
    then score row by row through the scalar path.
    """
    if not getattr(logic, "supports_arrays", False):
        return None
    if where is None:
        return np.ones(len(rows))
    try:
        return _eval_array(where, rows, degree_vectors, logic)
    except _NotVectorizable:
        return None


def _eval_array(
    node: Expression,
    rows: Sequence[dict],
    degree_vectors: dict[str, np.ndarray],
    logic: FuzzyLogic,
) -> np.ndarray:
    if isinstance(node, SubjectivePredicate):
        vector = degree_vectors.get(node.text)
        if vector is None:
            raise _NotVectorizable(node.text)
        return vector
    if isinstance(node, AndExpression):
        return logic.conjunction_arrays(
            [_eval_array(operand, rows, degree_vectors, logic) for operand in node.operands]
        )
    if isinstance(node, OrExpression):
        return logic.disjunction_arrays(
            [_eval_array(operand, rows, degree_vectors, logic) for operand in node.operands]
        )
    if isinstance(node, NotExpression):
        return logic.negation_array(_eval_array(node.operand, rows, degree_vectors, logic))
    if isinstance(node, (ComparisonExpression, InExpression, BetweenExpression)):
        # Crisp objective leaf whose ``fuzzy`` is exactly ``1.0 if
        # evaluate(row) else 0.0`` — evaluate once per row without the
        # scalar fuzzy-walk machinery.
        return np.fromiter(
            (1.0 if node.evaluate(row) else 0.0 for row in rows),
            dtype=float,
            count=len(rows),
        )
    # Any other node type (literal, column reference, future nodes):
    # evaluate its scalar fuzzy value row by row.  A per-row scorer keeps
    # unknown nested nodes correct too.
    return np.array(
        [
            node.fuzzy(row, _row_scorer(degree_vectors, index), logic)
            for index, row in enumerate(rows)
        ]
    )


def _row_scorer(degree_vectors: dict[str, np.ndarray], index: int):
    def scorer(predicate_text: str, _row: dict) -> float:
        """Scalar degree of one predicate for the row at ``index``."""
        vector = degree_vectors.get(predicate_text)
        if vector is None:
            raise _NotVectorizable(predicate_text)
        return float(vector[index])

    return scorer


# --------------------------------------------------------------------------
# Interval arithmetic over the WHERE tree (bound-based top-k pruning)
# --------------------------------------------------------------------------

def fuzzy_bound_arrays(
    where: Expression | None,
    rows: Sequence[dict],
    bound_vectors: "dict[str, tuple[np.ndarray, np.ndarray]]",
    logic: FuzzyLogic,
    prune_below: "float | None" = None,
) -> "tuple[np.ndarray, np.ndarray] | None":
    """``[lo, hi]`` envelope of :func:`fuzzy_score_arrays` per candidate row.

    The bound mirror of the vectorized WHERE walk: each subjective
    predicate contributes a ``(lo, hi)`` vector pair instead of one exact
    vector, and the connectives fold the lo and hi ends *separately*
    through the logic's array forms.  Both built-in logics are monotone
    nondecreasing in every operand (``supports_bounds``), so the folded
    ends bracket the exact score; where a predicate's interval is the
    degenerate ``[d, d]`` the folds reproduce the exact arithmetic
    operation for operation, making the envelope collapse to the exact
    score bit for bit.  Negation swaps the ends; crisp objective leaves
    stay exact 0/1 points.

    ``prune_below`` enables the AND short-circuit: while folding a
    conjunction, once every row's running upper bound has dropped below it
    the remaining operands are skipped — a t-norm can only lower the bound
    further, so the partial fold is still a valid upper bound (the lower
    end is relaxed to 0, keeping the interval sound).  The threshold is
    propagated into nested conjunctions only; OR and NOT operands are
    always folded fully.

    Returns ``None`` when the logic lacks array or bound support, or the
    tree holds a node the interval walk cannot bracket.
    """
    if not getattr(logic, "supports_arrays", False):
        return None
    if not getattr(logic, "supports_bounds", False):
        return None
    if where is None:
        ones = np.ones(len(rows))
        return ones, ones.copy()
    try:
        return _eval_bounds(where, rows, bound_vectors, logic, prune_below)
    except _NotVectorizable:
        return None


def _eval_bounds(
    node: Expression,
    rows: Sequence[dict],
    bound_vectors: "dict[str, tuple[np.ndarray, np.ndarray]]",
    logic: FuzzyLogic,
    prune_below: "float | None",
) -> "tuple[np.ndarray, np.ndarray]":
    if isinstance(node, SubjectivePredicate):
        interval = bound_vectors.get(node.text)
        if interval is None:
            raise _NotVectorizable(node.text)
        return interval
    if isinstance(node, AndExpression):
        lows: list[np.ndarray] = []
        highs: list[np.ndarray] = []
        short_circuited = False
        for position, operand in enumerate(node.operands):
            lo, hi = _eval_bounds(operand, rows, bound_vectors, logic, prune_below)
            lows.append(lo)
            highs.append(hi)
            if (
                prune_below is not None
                and position + 1 < len(node.operands)
                and float(np.max(logic.conjunction_arrays(highs), initial=0.0))
                < prune_below
            ):
                short_circuited = True
                break
        hi = logic.conjunction_arrays(highs)
        if short_circuited:
            # The skipped operands could only lower both ends further; 0 is
            # the universally sound floor, and hi stays a valid cap.
            return np.zeros(len(rows)), hi
        return logic.conjunction_arrays(lows), hi
    if isinstance(node, OrExpression):
        intervals = [
            _eval_bounds(operand, rows, bound_vectors, logic, None)
            for operand in node.operands
        ]
        return (
            logic.disjunction_arrays([lo for lo, _hi in intervals]),
            logic.disjunction_arrays([hi for _lo, hi in intervals]),
        )
    if isinstance(node, NotExpression):
        lo, hi = _eval_bounds(node.operand, rows, bound_vectors, logic, None)
        return logic.negation_array(hi), logic.negation_array(lo)
    if isinstance(node, (ComparisonExpression, InExpression, BetweenExpression)):
        crisp = np.fromiter(
            (1.0 if node.evaluate(row) else 0.0 for row in rows),
            dtype=float,
            count=len(rows),
        )
        return crisp, crisp.copy()
    raise _NotVectorizable(type(node).__name__)


def and_path_predicates(where: Expression | None) -> set[str]:
    """Subjective predicates reachable from the root through AND nodes only.

    Under a t-norm the query score can never exceed any single conjunct on
    such a path, so the running k-th score is a valid prune threshold for
    exactly these predicates; everything below an OR or NOT must be scored
    without one.
    """
    found: set[str] = set()

    def walk(node: Expression | None) -> None:
        if isinstance(node, SubjectivePredicate):
            found.add(node.text)
        elif isinstance(node, AndExpression):
            for operand in node.operands:
                walk(operand)

    walk(where)
    return found


def bounds_tree_supported(
    where: Expression | None, known_predicates: "set[str]"
) -> bool:
    """Whether every node of the WHERE tree has an exact interval form.

    The pruned ranking path refuses any tree it cannot bracket *before*
    doing any work, so a query with an exotic node falls back to the full
    path whole instead of mid-scan.
    """
    if where is None:
        return True
    if isinstance(where, SubjectivePredicate):
        return where.text in known_predicates
    if isinstance(where, (AndExpression, OrExpression)):
        return all(
            bounds_tree_supported(operand, known_predicates)
            for operand in where.operands
        )
    if isinstance(where, NotExpression):
        return bounds_tree_supported(where.operand, known_predicates)
    return isinstance(
        where, (ComparisonExpression, InExpression, BetweenExpression)
    )


# --------------------------------------------------------------------------
# Per-shard top-k merge
# --------------------------------------------------------------------------

def merge_shard_topk(
    scores: np.ndarray,
    row_entities: Sequence[Hashable],
    num_shards: int,
    limit: int,
) -> list[int]:
    """Global top-``limit`` candidate indices from per-shard top-k heaps.

    Candidate rows are partitioned into ``num_shards`` contiguous chunks;
    each chunk keeps a heap of its ``limit`` best rows, and the pre-sorted
    per-shard lists are merged lazily.  The key is the processor's ranking
    order — score descending, ``str(entity_id)`` ascending — with the
    global candidate position as final tie-break, which is exactly the
    order a stable global sort produces.  The property-based suite checks
    the merge against global sorting for random degree vectors with ties.
    """
    if limit <= 0:
        return []
    num_rows = len(row_entities)
    bounds = partition_bounds(num_rows, num_shards)

    def key(index: int) -> tuple[float, str, int]:
        """The processor's ranking sort key with position tie-break."""
        return (-scores[index], str(row_entities[index]), index)

    shard_heaps = [
        heapq.nsmallest(limit, range(start, stop), key=key)
        for start, stop in zip(bounds, bounds[1:])
        if stop > start
    ]
    return list(islice(heapq.merge(*shard_heaps, key=key), limit))


class _ReverseKey:
    """Max-heap adapter: inverts ``<`` so ``heapq`` keeps the *worst* kept row on top."""

    __slots__ = ("key", "payload")

    def __init__(self, key: tuple, payload: object) -> None:
        self.key = key
        self.payload = payload

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.key < self.key


class TopKThreshold:
    """Incremental top-k under the processor's ranking order, publishing a prune threshold.

    The streaming counterpart of :func:`merge_shard_topk`: rows are offered
    one at a time under the same ``(-score, str(entity_id), index)`` key,
    and once ``limit`` rows are held, :attr:`threshold` exposes the running
    k-th best score.  Any candidate whose score *upper bound* is strictly
    below that threshold can be dismissed unscored — it cannot displace a
    kept row even through the tie-break, because the threshold only rises
    as better rows arrive, so the final k-th score is at least the
    threshold the candidate was compared against.  Rows whose bound equals
    the threshold must still be offered (the string/index tie-break could
    admit them).  The property suite pins ``selected()`` against
    :func:`merge_shard_topk` on random scores with ties.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"limit must be positive, got {limit}")
        self.limit = limit
        self._heap: list[_ReverseKey] = []

    @property
    def threshold(self) -> float | None:
        """The current k-th best score, or ``None`` until ``limit`` rows are held."""
        if len(self._heap) < self.limit:
            return None
        return -self._heap[0].key[0]

    def offer(
        self, score: float, entity_id: Hashable, index: int, payload: object
    ) -> None:
        """Offer one row; kept only while it beats the current k-th row."""
        item = _ReverseKey((-score, str(entity_id), index), payload)
        if len(self._heap) < self.limit:
            heapq.heappush(self._heap, item)
        elif item.key < self._heap[0].key:
            heapq.heapreplace(self._heap, item)

    def selected(self) -> list[object]:
        """Payloads of the kept rows in final ranking order."""
        return [item.payload for item in sorted(self._heap, key=lambda kept: kept.key)]


# --------------------------------------------------------------------------
# The sharded serving engine
# --------------------------------------------------------------------------

class ShardedSubjectiveQueryEngine(SubjectiveQueryEngine):
    """Entity-sharded serving front end; results identical to the unsharded engine.

    Three layers become shard-aware:

    * **degrees** — the processor's columnar store is replaced by a
      :class:`ShardedColumnarStore`, so every uncached membership degree is
      computed per contiguous entity slice (optionally on an executor);
    * **membership cache** — partitioned per shard
      (:class:`~repro.serving.cache.PartitionedLRUCache`), all partitions
      invalidated together when :attr:`SubjectiveDatabase.data_version`
      moves;
    * **ranking** — each query's candidate rows are scored as degree
      vectors per shard (:func:`fuzzy_score_arrays`) and the per-shard
      top-k heaps are merged into the global ranking
      (:func:`merge_shard_topk`).  When the fuzzy logic has no exact array
      form, ranking transparently falls back to the unsharded scalar path —
      degrees stay shard-computed either way.

    Parameters mirror :class:`~repro.serving.engine.SubjectiveQueryEngine`
    plus ``num_shards`` (K contiguous slices of every attribute's E axis;
    defaults to :func:`default_num_shards` — one per core), ``backend``
    (``"serial"``, ``"thread"`` or ``"process"``), ``max_workers``
    (defaults to ``num_shards``) and ``prune_topk`` (bound-based top-k
    pruning, on by default).

    With ``prune_topk`` on, eligible top-k queries take a threshold-style
    pruned scan first (:meth:`_rank_pruned`): candidates are walked in
    chunks, each chunk's membership degrees are fetched through the
    store's bounded path with the running k-th score as prune threshold,
    and entities whose score *upper bound* cannot reach the threshold are
    dismissed without ever running a scoring kernel.  Survivor scores are
    bit-identical to the exact path (the bound envelope collapses to the
    exact arithmetic on fully-scored rows), so the ranking — scores,
    degrees, tie-breaks — equals the unpruned result exactly; the
    differential suite pins this at several shard counts.  Any
    ineligibility (no limit, retrieval predicates, duplicate candidate
    rows, a logic or membership function without bound support, an exotic
    WHERE node) falls back to the ordinary exact path for the whole query.
    """

    #: Backend names this engine accepts; the RPC coordinator overrides it.
    engine_backends = BACKENDS

    def __init__(
        self,
        database: SubjectiveDatabase | None = None,
        processor: SubjectiveQueryProcessor | None = None,
        num_shards: int | None = None,
        backend: str = "serial",
        max_workers: int | None = None,
        plan_cache_size: int | None = 256,
        membership_cache_size: int | None = 200_000,
        candidate_cache_size: int | None = 64,
        prune_topk: bool = True,
    ) -> None:
        if num_shards is None:
            num_shards = default_num_shards()
        if num_shards < 1:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if backend not in self.engine_backends:
            raise ValueError(
                f"unknown shard backend {backend!r}; expected one of {self.engine_backends}"
            )
        self.num_shards = num_shards
        self.backend = backend
        self.prune_topk = prune_topk
        # Candidate rows in the *first* bounded-scan chunk; each later
        # chunk is ``prune_chunk_growth`` times larger.  The first chunk
        # stays small so the threshold exists almost immediately; the
        # geometric growth keeps the per-chunk fixed cost logarithmic in
        # the candidate count.
        self.prune_chunk_size = 128
        self.prune_chunk_growth = 4
        super().__init__(
            database=database,
            processor=processor,
            plan_cache_size=plan_cache_size,
            membership_cache_size=membership_cache_size,
            candidate_cache_size=candidate_cache_size,
        )
        self.sharded_store: ShardedColumnarStore | None = None
        if self.processor.use_columnar:
            base = self.processor.columnar_store
            if isinstance(base, ShardedColumnarStore):
                self.sharded_store = base
            else:
                self.sharded_store = self._build_sharded_store(base, max_workers)
            # Install the sharded store so every degree the processor
            # computes — through this engine or directly — is shard-routed.
            self.processor.columnar_store = self.sharded_store
        self._register_store_metrics()

    def _register_store_metrics(self) -> None:
        """Adopt the installed store's instruments under ``store_*`` names.

        Gives the engine's :attr:`metrics` registry one unified view of
        coordinator-side serving counters *and* the store/fleet counters
        (fanouts, RPC requests, hydrations, …) — the cells stay owned and
        incremented by the store, exactly like the cache cells.
        """
        store = self.sharded_store
        store_metrics = getattr(store, "metrics", None)
        if store_metrics is None:
            return
        for name, instrument in store_metrics:
            self.metrics.register(f"store_{name}", instrument)

    def _build_sharded_store(self, base: ColumnarSummaryStore | None, max_workers: int | None):
        """The shard-routed store this engine installs on its processor.

        The in-process engine wraps the base columnar store in a
        :class:`ShardedColumnarStore`; the RPC coordinator overrides this to
        return an :class:`repro.serving.rpc.RpcShardStore` speaking the same
        ``pair_degrees`` protocol over shard-service workers.
        """
        return ShardedColumnarStore(
            self.database,
            num_shards=self.num_shards,
            backend=self.backend,
            base=base,
            max_workers=max_workers,
        )

    def _build_membership_cache(self, maxsize: int | None) -> PartitionedLRUCache:
        return PartitionedLRUCache(self.num_shards, maxsize)

    def close(self) -> None:
        """Shut down shard executor workers (idempotent)."""
        if self.sharded_store is not None:
            self.sharded_store.close()

    # -------------------------------------------------------------- ranking
    def _rank(
        self,
        plan: QueryPlan,
        candidates: CandidateSet,
        sql: str,
        top_k: int | None,
    ) -> QueryResult:
        # A logic without array connectives takes the unsharded scalar path
        # outright (degrees are still shard-computed through the installed
        # sharded store).
        if not getattr(self.processor.logic, "supports_arrays", False):
            return super()._rank(plan, candidates, sql=sql, top_k=top_k)
        if self.prune_topk and self._prune_enabled():
            pruned = self._rank_pruned(plan, candidates, sql=sql, top_k=top_k)
            if pruned is not None:
                return pruned
        unique_degrees = {
            predicate: self._interpretation_degree_vector(candidates.unique_ids, interpretation)
            for predicate, interpretation in plan.interpretations.items()
        }
        result = self._rank_sharded(plan, candidates, unique_degrees, sql=sql, top_k=top_k)
        if result is not None:
            return result
        # Scalar fallback (a WHERE node the array walk cannot serve):
        # identical path to the unsharded engine.
        degree_table = {
            predicate: dict(zip(candidates.unique_ids, degrees.tolist()))
            for predicate, degrees in unique_degrees.items()
        }
        return self.processor.rank_candidates(
            plan.statement,
            candidates.rows,
            plan.interpretations,
            degree_table=degree_table,
            sql=sql,
            top_k=top_k,
            row_entities=candidates.row_entities,
        )

    def _interpretation_degree_vector(
        self, unique_ids: Sequence[Hashable], interpretation
    ) -> np.ndarray:
        """Cached degrees of one interpreted predicate as a vector.

        Mirrors :meth:`SubjectiveQueryProcessor.interpretation_degrees`
        with the per-entity scalar combinator replaced by the fuzzy logic's
        array connectives — the same left-to-right fold over per-pair
        degree vectors, so every element is bit-identical to the scalar
        combination (the differential suite pins this).
        """
        if (
            interpretation.method is InterpretationMethod.TEXT_RETRIEVAL
            or not interpretation.pairs
        ):
            return np.asarray(
                self._cached_retrieval_degrees(unique_ids, interpretation.predicate),
                dtype=float,
            )
        per_pair = [
            np.asarray(
                self._cached_pair_degrees(
                    unique_ids,
                    pair.attribute,
                    self.processor.phrase_for_pair(interpretation, pair.marker),
                ),
                dtype=float,
            )
            for pair in interpretation.pairs
        ]
        logic = self.processor.logic
        combine = (
            logic.conjunction_arrays
            if interpretation.combinator == "and"
            else logic.disjunction_arrays
        )
        return combine(per_pair)

    def _rank_sharded(
        self,
        plan: QueryPlan,
        candidates: CandidateSet,
        unique_degrees: dict[str, np.ndarray],
        sql: str,
        top_k: int | None,
    ) -> QueryResult | None:
        statement = plan.statement
        rows = candidates.rows
        row_entities = candidates.row_entities
        if len(row_entities) == len(candidates.unique_ids):
            # No duplicate entities (the common, join-free case):
            # row_entities equals unique_ids element for element, so the
            # per-unique vectors already are the per-row vectors.
            degree_vectors = unique_degrees
        else:
            unique_index = {
                entity_id: position for position, entity_id in enumerate(candidates.unique_ids)
            }
            row_positions = np.fromiter(
                (unique_index[entity_id] for entity_id in row_entities),
                dtype=np.intp,
                count=len(row_entities),
            )
            degree_vectors = {
                predicate: degrees[row_positions] for predicate, degrees in unique_degrees.items()
            }
        scores = fuzzy_score_arrays(
            statement.where, rows, degree_vectors, self.processor.logic
        )
        if scores is None:
            return None
        limit = statement.limit or top_k or self.processor.top_k
        with span("merge", num_shards=self.num_shards, rows=len(row_entities)):
            selected = merge_shard_topk(scores, row_entities, self.num_shards, limit)
        entities = [
            RankedEntity(
                entity_id=row_entities[index],
                score=float(scores[index]),
                row=rows[index],
                predicate_degrees={
                    predicate: float(vector[index]) for predicate, vector in degree_vectors.items()
                },
            )
            for index in selected
        ]
        return QueryResult(sql=sql, entities=entities, interpretations=plan.interpretations)

    # -------------------------------------------------- bound-based pruning
    def _prune_enabled(self) -> bool:
        """Whether the pruned path may run right now (hook for subclasses).

        The cluster engine returns ``False`` while a concurrent batch is in
        flight — its prefetch pipeline already computes full exact vectors,
        so a threshold scan would only duplicate work.
        """
        return True

    def _rank_pruned(
        self,
        plan: QueryPlan,
        candidates: CandidateSet,
        sql: str,
        top_k: int | None,
    ) -> QueryResult | None:
        """Threshold-style pruned ranking; ``None`` when the query is ineligible.

        Candidates are scanned in chunks.  For each chunk the heap's
        running k-th score is the prune threshold ``T``: membership degrees
        are fetched through the store's bounded path (which skips kernels
        for rows and whole slices whose degree upper bound is below the
        per-predicate threshold), rows whose AND-path predicate bound falls
        below ``T`` are dropped from the remaining fetches, and rows whose
        final score upper bound is below ``T`` never reach the heap.  Every
        row that survives all of this has exclusively exact degrees, so its
        folded upper bound *is* its exact score — survivors are pushed
        without any second scoring pass, and the result is bit-identical to
        the unpruned ranking.
        """
        statement = plan.statement
        where = statement.where
        limit = statement.limit or top_k or self.processor.top_k
        row_entities = candidates.row_entities
        if not limit or limit < 1 or where is None:
            return None
        if len(row_entities) != len(candidates.unique_ids):
            return None  # duplicate entities (joins): row remap not worth bounding
        if len(row_entities) <= limit:
            return None  # every candidate is kept; nothing to prune
        logic = self.processor.logic
        if not getattr(logic, "supports_bounds", False):
            return None
        if not self.processor.use_markers or not self.processor.use_columnar:
            return None
        store = self.processor.columnar_store
        if store is None or not hasattr(store, "pair_degrees_bounded"):
            return None
        for interpretation in plan.interpretations.values():
            if (
                interpretation.method is InterpretationMethod.TEXT_RETRIEVAL
                or not interpretation.pairs
            ):
                return None  # retrieval degrees have no bound form
        if not bounds_tree_supported(where, set(plan.interpretations)):
            return None
        and_path = and_path_predicates(where)
        # AND-path predicates first: their bounds both narrow the alive set
        # and let the store skip slices, so they should see the threshold
        # before any unboundable work happens.
        ordered = sorted(
            (
                (text, interpretation, text in and_path)
                for text, interpretation in plan.interpretations.items()
            ),
            key=lambda entry: not entry[2],
        )
        rows = candidates.rows
        heap = TopKThreshold(limit)
        screen = getattr(store, "pair_degree_envelope", None)
        membership = self.processor.membership
        # Vectorized pre-screen out of the store's cached envelope: the
        # conjunction of the eligible AND-path predicate bounds caps the
        # query score under any t-norm, so it both *orders* the scan
        # (descending bound — the threshold-algorithm order, which fills
        # the heap with the likeliest winners first) and provides a sorted
        # stop condition: once the head of the remainder is below the k-th
        # score, no remaining candidate can qualify.  Rows dropped here
        # never cost any per-entity cache traffic.  Store layers without
        # local envelope access (RPC, cluster) skip this and instead ship
        # the threshold to the nodes.
        scan_bound: np.ndarray | None = None
        if screen is not None:
            cap_vectors: list[np.ndarray] = []
            for _text, interpretation, on_and_path in ordered:
                if not on_and_path:
                    break  # AND-path entries sort first
                if (
                    interpretation.combinator != "and"
                    and len(interpretation.pairs) > 1
                ):
                    continue
                pair_highs = []
                for pair in interpretation.pairs:
                    envelope = screen(
                        membership,
                        row_entities,
                        pair.attribute,
                        self.processor.phrase_for_pair(interpretation, pair.marker),
                    )
                    if envelope is None:
                        pair_highs = None
                        break
                    pair_highs.append(envelope[1])
                if pair_highs:
                    cap_vectors.extend(pair_highs)
            if cap_vectors:
                scan_bound = (
                    logic.conjunction_arrays(cap_vectors)
                    if len(cap_vectors) > 1
                    else cap_vectors[0]
                )
        if scan_bound is not None:
            order = np.argsort(-scan_bound, kind="stable")
            scan_bound = scan_bound[order]
            scan_positions = order.tolist()
            scan_ids = [row_entities[position] for position in scan_positions]
            scan_rows = [rows[position] for position in scan_positions]
        else:
            scan_positions = None
            scan_ids, scan_rows = row_entities, rows
        total = len(row_entities)
        # Chunks grow geometrically: the first (small) chunk seeds the
        # heap so a real threshold exists almost immediately, and the
        # growth keeps the per-chunk fixed cost of the bounded store
        # round-trips logarithmic in the candidate count.
        chunk_size = max(1, self.prune_chunk_size)
        chunk_start = 0
        while chunk_start < total:
            threshold = heap.threshold
            prune_threshold = threshold if threshold is not None else 0.0
            if (
                threshold is not None
                and scan_bound is not None
                and scan_bound[chunk_start] < prune_threshold
            ):
                # Descending bound order: everything from here on is
                # provably below the k-th score.
                self.entities_pruned += total - chunk_start
                break
            chunk_stop = min(chunk_start + chunk_size, total)
            chunk_ids = scan_ids[chunk_start:chunk_stop]
            chunk_rows = scan_rows[chunk_start:chunk_stop]
            size = chunk_stop - chunk_start
            alive = np.ones(size, dtype=bool)
            if threshold is not None and scan_bound is not None:
                alive = scan_bound[chunk_start:chunk_stop] >= prune_threshold
                dropped = size - int(np.count_nonzero(alive))
                if dropped:
                    self.entities_pruned += dropped
            bound_vectors: dict[str, tuple[np.ndarray, np.ndarray]] = {}
            for text, interpretation, on_and_path in ordered:
                alive_index = np.flatnonzero(alive)
                if alive_index.size == 0:
                    break
                alive_ids = [chunk_ids[position] for position in alive_index]
                # A pair-level threshold is sound only when the pair value
                # caps the predicate (t-norm combination, or a single pair)
                # *and* the predicate caps the query (AND path).
                pair_threshold = (
                    prune_threshold
                    if on_and_path
                    and (
                        interpretation.combinator == "and"
                        or len(interpretation.pairs) == 1
                    )
                    else 0.0
                )
                pair_lows: list[np.ndarray] = []
                pair_highs: list[np.ndarray] = []
                for pair in interpretation.pairs:
                    fetched = self._bounded_cached_pair_degrees(
                        alive_ids,
                        pair.attribute,
                        self.processor.phrase_for_pair(interpretation, pair.marker),
                        pair_threshold,
                    )
                    if fetched is None:
                        return None  # no bound support after all: full path
                    values, exact = fetched
                    hi = np.asarray(values, dtype=float)
                    pair_highs.append(hi)
                    pair_lows.append(np.where(exact, hi, 0.0))
                combine = (
                    logic.conjunction_arrays
                    if interpretation.combinator == "and"
                    else logic.disjunction_arrays
                )
                predicate_lo = combine(pair_lows)
                predicate_hi = combine(pair_highs)
                # Scatter into chunk-wide vectors; dead rows keep the
                # universally sound [0, 1] default (their values are never
                # read back — they cannot re-enter the alive set).
                lo_full = np.zeros(size)
                hi_full = np.ones(size)
                lo_full[alive_index] = predicate_lo
                hi_full[alive_index] = predicate_hi
                bound_vectors[text] = (lo_full, hi_full)
                if on_and_path:
                    # Under a t-norm the query score cannot exceed this
                    # predicate, so rows whose cap is already below the
                    # k-th score are out — skip them in later fetches.
                    alive[alive_index] = predicate_hi >= prune_threshold
            if alive.any():
                envelope = fuzzy_bound_arrays(
                    where, chunk_rows, bound_vectors, logic, prune_below=threshold
                )
                if envelope is None:
                    return None
                _lo_env, hi_env = envelope
                for position in np.flatnonzero(alive & (hi_env >= prune_threshold)):
                    index = int(position)
                    score = float(hi_env[index])
                    heap.offer(
                        score,
                        chunk_ids[index],
                        # The tie-break key is the *original* candidate
                        # position, so the ranking is identical however the
                        # scan happens to be ordered.
                        scan_positions[chunk_start + index]
                        if scan_positions is not None
                        else chunk_start + index,
                        payload=RankedEntity(
                            entity_id=chunk_ids[index],
                            score=score,
                            row=chunk_rows[index],
                            predicate_degrees={
                                text: float(vectors[1][index])
                                for text, vectors in bound_vectors.items()
                            },
                        ),
                    )
            chunk_start = chunk_stop
            chunk_size *= max(2, self.prune_chunk_growth)
        return QueryResult(
            sql=sql,
            entities=list(heap.selected()),
            interpretations=plan.interpretations,
        )

    def _bounded_cached_pair_degrees(
        self,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
        threshold: float,
    ) -> tuple[list[float], list[bool]] | None:
        """Membership degrees with per-row exactness, pruned below ``threshold``.

        The bounded twin of the base engine's ``_cached_pair_degrees``:
        cache hits are exact by construction (only exact degrees are ever
        cached), misses go through the store's bounded path, and of the
        returned values only the exact ones enter the cache — a pruned
        row's upper bound is *not* its degree and must be recomputed if a
        later query needs it.  Returns ``(values, exact_flags)`` aligned
        with ``entity_ids``, or ``None`` when the store or membership
        function cannot bound this phrase.
        """
        keys = [(entity_id, attribute, phrase) for entity_id in entity_ids]
        cached = self.membership_cache.get_many(keys, _MISSING)
        missing = [
            entity_id
            for entity_id, value in zip(entity_ids, cached)
            if value is _MISSING
        ]
        if not missing:
            return cached, [True] * len(cached)
        result = self.processor.columnar_store.pair_degrees_bounded(
            self.processor.membership, missing, attribute, phrase, threshold
        )
        if result is None:
            return None
        values, exact_mask, scored, pruned = result
        self.entities_scored += scored
        self.entities_pruned += pruned
        self.membership_cache.put_many(
            [
                ((entity_id, attribute, phrase), float(value))
                for entity_id, value, exact in zip(missing, values, exact_mask)
                if exact
            ]
        )
        filled_values = iter(values)
        filled_exact = iter(exact_mask)
        out_values: list[float] = []
        out_exact: list[bool] = []
        for value in cached:
            if value is _MISSING:
                out_values.append(float(next(filled_values)))
                out_exact.append(bool(next(filled_exact)))
            else:
                out_values.append(value)
                out_exact.append(True)
        return out_values, out_exact

    # ----------------------------------------------------------- statistics
    def _cache_counters(self) -> dict[str, int]:
        """Cache counters plus the installed store's transport counters.

        The hook that puts per-fleet RPC activity into ``run_batch``
        statistics: stores with a service boundary (the socketpair RPC
        store, the TCP cluster store) expose ``transport_counters()`` —
        request/byte/reconnect totals — and ``run_batch`` reports their
        batch-local deltas alongside the cache hit/miss deltas.
        """
        counters = super()._cache_counters()
        store = self.sharded_store
        transport = getattr(store, "transport_counters", None)
        if transport is not None:
            counters.update(transport())
        return counters

    def partition_stats(self) -> list[dict[str, object]]:
        """Per-partition serving statistics: one dict per shard/worker/node.

        For the in-process sharded engine these are the membership cache's
        per-shard partitions; engines whose store puts shards behind a
        service boundary override the *store* side — a store exposing its
        own ``partition_stats()`` (per-worker/per-node RPC counters:
        requests, bytes, cache hits, reconnects) takes precedence here, so
        operators see the fleet, not just the local cache.
        """
        store = self.sharded_store
        stats = getattr(store, "partition_stats", None)
        if stats is not None:
            return stats()
        return self.membership_cache.partition_stats()

    def stats_snapshot(self) -> dict[str, object]:
        """Serving counters plus shard count, backend and per-partition cache stats."""
        snapshot = super().stats_snapshot()
        snapshot["num_shards"] = self.num_shards
        snapshot["backend"] = self.backend
        snapshot["membership_cache_partitions"] = self.membership_cache.partition_stats()
        return snapshot
