"""A small LRU cache with hit/miss accounting.

Used by the serving engine for both the query-plan cache and the
membership-degree cache.  Not thread-safe; the serving engine is a
single-threaded front end (sharding across processes is the intended
scale-out path, see ROADMAP).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterator


@dataclass
class CacheStats:
    """Counters of one cache: lookups, hits, misses, evictions."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Bounded mapping evicting the least-recently-used entry on overflow.

    ``get`` refreshes recency; ``put`` inserts or refreshes.  A ``maxsize``
    of ``None`` disables eviction (unbounded cache).
    """

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError(f"maxsize must be positive or None, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: Hashable, default: object = None) -> object:
        """Look up ``key``, counting the hit/miss and refreshing recency."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return default

    def peek(self, key: Hashable, default: object = None) -> object:
        """Look up ``key`` without touching recency or counters."""
        return self._entries.get(key, default)

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if self.maxsize is not None and len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept; they describe the lifetime)."""
        self._entries.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[Hashable]:
        """Keys from least- to most-recently used."""
        return iter(self._entries.keys())
