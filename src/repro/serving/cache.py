"""LRU caches with hit/miss accounting.

:class:`LRUCache` backs the serving engine's query-plan, candidate and
membership-degree caches.  :class:`PartitionedLRUCache` splits one logical
cache into independent LRU partitions keyed by a router function — the
sharded serving engine partitions its membership cache so each shard's
degree entries live (and are evicted) in their own partition, while
invalidation stays ``data_version``-driven: the engine clears every
partition together whenever the database version moves, exactly like the
unsharded cache.

Individual caches are not thread-safe; the serving engines only touch them
from the coordinating thread (shard workers run pure NumPy kernels and
never see a cache).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator, Sequence

from repro.obs.metrics import Counter


class CacheStats:
    """Counters of one cache: lookups, hits, misses, evictions.

    Storage is a trio of live :class:`repro.obs.metrics.Counter` cells
    (:attr:`hits_cell` & co.) that a serving engine registers in its
    :class:`~repro.obs.MetricsRegistry`.  Attribute *reads* stay plain
    ``int`` value snapshots — ``before = cache.stats.hits`` must not
    alias a mutating cell — while attribute *writes* (``stats.hits += n``)
    land in the registered cell, so the registry and this legacy view can
    never disagree.
    """

    __slots__ = ("hits_cell", "misses_cell", "evictions_cell")

    def __init__(self, hits: int = 0, misses: int = 0, evictions: int = 0) -> None:
        self.hits_cell = Counter("cache_hits", value=int(hits))
        self.misses_cell = Counter("cache_misses", value=int(misses))
        self.evictions_cell = Counter("cache_evictions", value=int(evictions))

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return int(self.hits_cell)

    @hits.setter
    def hits(self, value: int) -> None:
        self.hits_cell.reset(int(value))

    @property
    def misses(self) -> int:
        """Lookups that fell through to recomputation."""
        return int(self.misses_cell)

    @misses.setter
    def misses(self, value: int) -> None:
        self.misses_cell.reset(int(value))

    @property
    def evictions(self) -> int:
        """Entries evicted to respect ``maxsize``."""
        return int(self.evictions_cell)

    @evictions.setter
    def evictions(self, value: int) -> None:
        self.evictions_cell.reset(int(value))

    @property
    def lookups(self) -> int:
        """Total lookups counted (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return (self.hits, self.misses, self.evictions) == (
            other.hits,
            other.misses,
            other.evictions,
        )

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )

    def as_dict(self) -> dict[str, float]:
        """The counters plus hit rate as one plain dict (for snapshots)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Bounded mapping evicting the least-recently-used entry on overflow.

    ``get`` refreshes recency; ``put`` inserts or refreshes.  A ``maxsize``
    of ``None`` disables eviction (unbounded cache).
    """

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError(f"maxsize must be positive or None, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: Hashable, default: object = None) -> object:
        """Look up ``key``, counting the hit/miss and refreshing recency."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return default

    def peek(self, key: Hashable, default: object = None) -> object:
        """Look up ``key`` without touching recency or counters."""
        return self._entries.get(key, default)

    def peek_many(self, keys: Sequence[Hashable], default: object = None) -> list[object]:
        """Batch :meth:`peek`: one value (or ``default``) per key, in order.

        No recency updates, no counters — the probe the concurrent batch
        coordinator uses to plan prefetches without perturbing the cache
        statistics a serial execution would have produced.
        """
        get = self._entries.get
        return [get(key, default) for key in keys]

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if self.maxsize is not None and len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get_many(self, keys: Sequence[Hashable], default: object = None) -> list[object]:
        """Batch :meth:`get`: one value (or ``default``) per key, in order.

        Counts hits/misses and refreshes recency exactly like per-key
        ``get`` calls, with the per-key call layering hoisted out — the
        serving engines look up hundreds of membership degrees per
        predicate, which makes the bookkeeping itself a hot path.
        """
        entries = self._entries
        move_to_end = entries.move_to_end
        hits = 0
        values: list[object] = []
        append = values.append
        for key in keys:
            if key in entries:
                move_to_end(key)
                hits += 1
                append(entries[key])
            else:
                append(default)
        self.stats.hits += hits
        self.stats.misses += len(values) - hits
        return values

    def put_many(self, items: Sequence[tuple[Hashable, object]]) -> None:
        """Batch :meth:`put`; final contents and counters equal per-key puts."""
        entries = self._entries
        for key, value in items:
            if key in entries:
                entries.move_to_end(key)
            entries[key] = value
        if self.maxsize is not None:
            while len(entries) > self.maxsize:
                entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept; they describe the lifetime)."""
        self._entries.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[Hashable]:
        """Keys from least- to most-recently used."""
        return iter(self._entries.keys())


def _default_router(key: Hashable) -> int:
    """Route a cache key by its first element (the entity id, by convention).

    The serving caches key membership degrees as ``(entity_id, attribute,
    phrase)`` tuples; routing on the entity id keeps all of one entity's
    degrees in one partition, which is the ownership unit the sharded
    engine cares about.  Non-tuple keys hash whole.
    """
    if isinstance(key, tuple) and key:
        return hash(key[0])
    return hash(key)


class PartitionedLRUCache:
    """One logical cache split into independent LRU partitions.

    ``maxsize`` bounds the *total* entry count; each partition gets an equal
    share (rounded up), so eviction pressure in one partition never evicts
    another partition's entries.  The interface mirrors :class:`LRUCache`
    (``get``/``put``/``peek``/``clear``/``len``/``in``); :attr:`stats`
    aggregates across partitions, and per-partition statistics stay
    available on the partitions themselves.
    """

    def __init__(
        self,
        num_partitions: int,
        maxsize: int | None = None,
        router: Callable[[Hashable], int] | None = None,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        per_partition = None
        if maxsize is not None:
            per_partition = -(-maxsize // num_partitions)  # ceil division
        self.partitions = [LRUCache(per_partition) for _ in range(num_partitions)]
        self._router = router or _default_router

    @property
    def num_partitions(self) -> int:
        """Number of independent LRU partitions."""
        return len(self.partitions)

    def partition_of(self, key: Hashable) -> LRUCache:
        """The partition owning ``key``."""
        return self.partitions[self._router(key) % len(self.partitions)]

    def get(self, key: Hashable, default: object = None) -> object:
        """Look up ``key`` in its partition (counts and recency as ``LRUCache.get``)."""
        return self.partition_of(key).get(key, default)

    def peek(self, key: Hashable, default: object = None) -> object:
        """Look up ``key`` without touching recency or counters."""
        return self.partition_of(key).peek(key, default)

    def peek_many(self, keys: Sequence[Hashable], default: object = None) -> list[object]:
        """Batch :meth:`peek` with the per-key partition routing inlined.

        No recency updates, no counters; values (or ``default``) come back
        in key order exactly like :meth:`get_many`.
        """
        partitions = self.partitions
        num = len(partitions)
        router = self._router
        default_routing = router is _default_router
        values: list[object] = []
        append = values.append
        for key in keys:
            if default_routing:
                index = hash(key[0] if isinstance(key, tuple) and key else key) % num
            else:
                index = router(key) % num
            append(partitions[index]._entries.get(key, default))
        return values

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh ``key`` in its partition (partition-local eviction)."""
        self.partition_of(key).put(key, value)

    def get_many(self, keys: Sequence[Hashable], default: object = None) -> list[object]:
        """Batch :meth:`get` with the per-key partition routing inlined.

        Equivalent to per-key ``get`` calls (same values, recency updates
        and per-partition counters); hit/miss counts are accumulated per
        partition and flushed once.
        """
        partitions = self.partitions
        num = len(partitions)
        router = self._router
        default_routing = router is _default_router
        hits = [0] * num
        misses = [0] * num
        values: list[object] = []
        append = values.append
        for key in keys:
            if default_routing:
                # Inlined _default_router: the per-key call layering is
                # measurable when batches span hundreds of entities.
                index = hash(key[0] if isinstance(key, tuple) and key else key) % num
            else:
                index = router(key) % num
            entries = partitions[index]._entries
            if key in entries:
                entries.move_to_end(key)
                hits[index] += 1
                append(entries[key])
            else:
                misses[index] += 1
                append(default)
        for index in range(num):
            if hits[index]:
                partitions[index].stats.hits += hits[index]
            if misses[index]:
                partitions[index].stats.misses += misses[index]
        return values

    def put_many(self, items: Sequence[tuple[Hashable, object]]) -> None:
        """Batch :meth:`put`: items grouped per partition, then batch-inserted."""
        num = len(self.partitions)
        router = self._router
        default_routing = router is _default_router
        grouped: list[list[tuple[Hashable, object]]] = [[] for _ in range(num)]
        for item in items:
            key = item[0]
            if default_routing:
                index = hash(key[0] if isinstance(key, tuple) and key else key) % num
            else:
                index = router(key) % num
            grouped[index].append(item)
        for partition, group in zip(self.partitions, grouped):
            if group:
                partition.put_many(group)

    def clear(self) -> None:
        """Drop every partition's entries together (one invalidation unit)."""
        for partition in self.partitions:
            partition.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self.partition_of(key)

    def __len__(self) -> int:
        return sum(len(partition) for partition in self.partitions)

    def keys(self) -> Iterator[Hashable]:
        """All keys, partition by partition (least- to most-recently used)."""
        for partition in self.partitions:
            yield from partition.keys()

    @property
    def stats(self) -> CacheStats:
        """Aggregate counters summed over all partitions (a fresh snapshot)."""
        return CacheStats(
            hits=sum(partition.stats.hits for partition in self.partitions),
            misses=sum(partition.stats.misses for partition in self.partitions),
            evictions=sum(partition.stats.evictions for partition in self.partitions),
        )

    def partition_stats(self) -> list[dict[str, float]]:
        """Per-partition counter dicts (``entries`` plus the hit statistics).

        One dict per partition, in partition order — the shard-local view
        the sharded engine's ``stats_snapshot`` and the shard-service
        ``stats()`` RPC report, so operators can spot a hot or cold shard.
        """
        return [
            {"entries": len(partition), **partition.stats.as_dict()}
            for partition in self.partitions
        ]
