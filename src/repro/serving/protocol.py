"""The shard-service wire protocol: one definition for every transport.

PR 4 introduced a length-prefixed binary frame protocol between the query
coordinator and shard workers over local socketpairs; the cluster transport
(:mod:`repro.serving.cluster`) speaks the very same frames over TCP.  This
module is the single home of everything both transports share, so the
socketpair and TCP paths can never drift apart:

* **framing** — :func:`send_frame` / :func:`recv_frame`: every message is a
  4-byte big-endian payload length followed by that many payload bytes,
  with frames above a configured ceiling refused on both ends *before* any
  allocation;
* **payload codec** — :class:`Reader` (sequential field reads over one
  payload) and the ``pack``/``encode`` helpers; all integers are
  big-endian, all arrays use the canonical big-endian wire dtypes, so the
  protocol is well-defined across machines and the f64 byte swap is
  lossless (degree bits survive the round trip);
* **request/response constants** — the one-byte opcodes and statuses used
  by every shard service (``score``, ``invalidate``, ``stats``,
  ``shutdown``, plus the cluster-only ``hello``, ``hydrate`` and
  ``hydrate delta``, plus the client-facing gateway ``query`` and
  ``gateway stats``);
* **handshake** — the versioned ``hello`` exchange of the TCP transport: a
  connecting coordinator announces its protocol version and
  ``data_version``; the node acknowledges with its own version, the
  version of the snapshot it is hydrated against, and the slice ids it
  owns.  Version skew is a typed :class:`HandshakeError`, never a hang or
  a silently misinterpreted stream;
* **errors** — the transport error hierarchy (:class:`RpcError`,
  :class:`FrameTooLargeError`, :class:`WorkerCrashedError`,
  :class:`HandshakeError`) shared by all shard-service layers.

:mod:`repro.serving.rpc` re-exports all of this under its original names,
so code (and pickles of it) written against PR 4 keeps working unchanged.
"""

from __future__ import annotations

import socket
import struct
from typing import Sequence

import numpy as np

from repro.errors import ExecutionError

#: Version of the frame/handshake protocol this build speaks.  Bumped on
#: any wire-visible change; the ``hello`` handshake negotiates (and
#: refuses unknown versions) — see :data:`SUPPORTED_PROTOCOL_VERSIONS`.
#: Version 2 added the ``score bounded`` opcode (threshold-pruned scoring
#: with a per-row exactness mask in the response).  Version 3 added the
#: ``hydrate delta`` opcode and the snapshot container's flags byte
#: (compressed / f32-quantized / delta hydration frames).  Version 4 added
#: the ``local_store`` flag to the hello acknowledgement: a node backed by
#: a persistent data directory (``repro.storage``) advertises that it can
#: hydrate slices from local disk, so a coordinator at the same
#: ``data_version`` skips the ``hydrate`` snapshot frames entirely.
#: Version 5 added the optional trailing **trace field** on ``score`` /
#: ``score bounded`` / gateway ``query`` requests (distributed tracing,
#: :mod:`repro.obs`) and the ``traces`` opcode for querying a peer's span
#: ring buffer.
PROTOCOL_VERSION = 5

#: Protocol versions this build can interoperate with.  The hello
#: handshake negotiates ``min(coordinator, node)``: a v5 coordinator
#: talking to a v4 node (or vice versa) simply never sends trace fields
#: or ``traces`` requests on that connection, and versions outside this
#: set stay a typed :class:`HandshakeError`.
SUPPORTED_PROTOCOL_VERSIONS = frozenset({4, 5})

#: Lowest negotiated version at which trace fields / ``traces`` requests
#: may be sent on a connection.
TRACE_PROTOCOL_VERSION = 5

#: Default ceiling on one frame's payload size (requests and responses).
#: Generous for degree vectors (8 bytes per entity) while still refusing a
#: corrupt or hostile length prefix before allocating anything.  Column
#: snapshots travel in ``hydrate`` frames, so cluster deployments with very
#: large attribute slices may need to raise it.
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

OP_SCORE = 1
OP_INVALIDATE = 2
OP_STATS = 3
OP_SHUTDOWN = 4
OP_HELLO = 5
OP_HYDRATE = 6
OP_QUERY = 7
OP_GATEWAY_STATS = 8
OP_SCORE_BOUNDED = 9
OP_HYDRATE_DELTA = 10
OP_TRACES = 11

STATUS_OK = 0
STATUS_ERROR = 1
STATUS_OVERLOADED = 2

_U8 = struct.Struct("!B")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_HEADER = _U32

#: Canonical wire dtypes: big-endian, so the protocol stays well-defined
#: across machines.  The byte swap is lossless, so degree bits survive the
#: round trip.
WIRE_F64 = ">f8"
WIRE_U32 = ">u4"


class RpcError(ExecutionError):
    """A shard-service RPC failed (transport fault or worker-side error)."""


class FrameTooLargeError(RpcError):
    """A frame exceeded the configured maximum payload size."""


class WorkerCrashedError(RpcError):
    """A shard worker/node died (or closed its socket) mid-request."""


class HandshakeError(RpcError):
    """The versioned ``hello`` handshake failed (skew or a malformed reply)."""


class GatewayOverloadedError(RpcError):
    """The gateway refused a request under admission control (typed, retryable).

    Transported as a :data:`STATUS_OVERLOADED` response frame: the request
    was never admitted, no partial work happened, and the connection stays
    usable — the client may retry after backing off.
    """


# --------------------------------------------------------------------------
# Frame transport
# --------------------------------------------------------------------------

def send_frame(sock: socket.socket, payload: bytes, max_frame_bytes: int) -> None:
    """Write one length-prefixed frame, refusing oversized payloads locally.

    The send-side check means a misconfigured caller fails fast instead of
    making the peer drop the connection after reading the length prefix.
    """
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {max_frame_bytes} bytes)"
        )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def frame_bytes(payload: bytes, max_frame_bytes: int) -> bytes:
    """``payload`` as one wire-ready frame (header + payload), size-checked.

    The buffered cluster transport appends frames to per-node output
    buffers instead of writing them to a socket immediately;
    this is its :func:`send_frame` analog.
    """
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"refusing to queue a {len(payload)}-byte frame "
            f"(limit {max_frame_bytes} bytes)"
        )
    return _HEADER.pack(len(payload)) + payload


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """``count`` bytes from ``sock``; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise RpcError("connection closed mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


def recv_frame(sock: socket.socket, max_frame_bytes: int) -> bytes | None:
    """Read one length-prefixed frame; ``None`` on clean EOF between frames.

    A length prefix above ``max_frame_bytes`` raises
    :class:`FrameTooLargeError` *before* any payload allocation — the
    stream cannot be resynchronised afterwards, so the caller must close
    the connection.  EOF in the middle of a frame raises :class:`RpcError`.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"peer announced a {length}-byte frame (limit {max_frame_bytes} bytes)"
        )
    if length == 0:
        return b""
    payload = _recv_exact(sock, length)
    if payload is None:
        raise RpcError("connection closed mid-frame")
    return payload


# --------------------------------------------------------------------------
# Payload codec
# --------------------------------------------------------------------------

def pack_str(text: str) -> bytes:
    """A UTF-8 string field: 4-byte big-endian length + bytes."""
    data = text.encode("utf-8")
    return _U32.pack(len(data)) + data


class Reader:
    """Sequential field reader over one frame payload."""

    def __init__(self, payload: bytes) -> None:
        self._view = memoryview(payload)
        self._offset = 0

    def _take(self, count: int) -> memoryview:
        start, end = self._offset, self._offset + count
        if end > len(self._view):
            raise RpcError("truncated frame payload")
        self._offset = end
        return self._view[start:end]

    @property
    def remaining(self) -> int:
        """Bytes left to read in the payload."""
        return len(self._view) - self._offset

    def read_u8(self) -> int:
        """One unsigned byte."""
        return _U8.unpack(self._take(_U8.size))[0]

    def read_u32(self) -> int:
        """One big-endian unsigned 32-bit integer."""
        return _U32.unpack(self._take(_U32.size))[0]

    def read_u64(self) -> int:
        """One big-endian unsigned 64-bit integer."""
        return _U64.unpack(self._take(_U64.size))[0]

    def read_str(self) -> str:
        """One length-prefixed UTF-8 string."""
        return bytes(self._take(self.read_u32())).decode("utf-8")

    def read_bytes(self) -> bytes:
        """One length-prefixed opaque byte field."""
        return bytes(self._take(self.read_u32()))

    def read_rest(self) -> bytes:
        """Every byte left in the payload (may be empty)."""
        offset = self._offset
        self._offset = len(self._view)
        return bytes(self._view[offset:])

    def read_raw(self, count: int) -> bytes:
        """``count`` raw bytes (for fixed-size fields without a length prefix)."""
        return bytes(self._take(count))

    def read_u32_array(self, count: int) -> list[int]:
        """``count`` big-endian u32 values as a plain int list."""
        data = self._take(4 * count)
        return np.frombuffer(data, dtype=WIRE_U32).astype(np.intp).tolist()

    def read_f64_array(self, count: int) -> np.ndarray:
        """``count`` big-endian f64 values as a native float64 array."""
        data = self._take(8 * count)
        return np.frombuffer(data, dtype=WIRE_F64).astype(np.float64)


def pack_trace_field(trace: tuple[int, int] | None) -> bytes:
    """The optional trailing trace field: ``(trace_id, span_id)`` or absent.

    Protocol v5.  Encoded as a presence byte plus two u64 ids; ``None``
    encodes to **zero bytes** — which is exactly what a v4 frame looks
    like, so receivers detect the field purely from leftover payload
    (:func:`read_trace_field`) and v4 peers never see it at all.
    """
    if trace is None:
        return b""
    trace_id, span_id = trace
    return _U8.pack(1) + _U64.pack(trace_id) + _U64.pack(span_id)


def read_trace_field(reader: Reader) -> tuple[int, int] | None:
    """Decode the optional trailing trace field; ``None`` when absent.

    Must be called after every fixed field of the request has been read:
    the field is detected by payload remaining, so a v4 frame (nothing
    left) and an explicit absent marker both return ``None``.
    """
    if reader.remaining == 0:
        return None
    if not reader.read_u8():
        return None
    return reader.read_u64(), reader.read_u64()


def encode_score_request(
    slice_id: int,
    attribute: str,
    phrase: str,
    start: int,
    stop: int,
    rows: Sequence[int] | None,
    trace: tuple[int, int] | None = None,
) -> bytes:
    """The ``score`` request frame: one slice's scoring work, indices only.

    ``rows`` (slice-relative, ``None`` for a full-slice pass) mirrors the
    in-process sparse-gather heuristic.  Arrays never travel — the worker
    resolves ``(attribute, start, stop, rows)`` against its own rebuilt or
    hydrated columns, exactly like the PR 3 process backend's payloads.
    ``trace`` optionally appends the v5 trace field (see
    :func:`pack_trace_field`); only pass it on connections negotiated at
    :data:`TRACE_PROTOCOL_VERSION` or above.
    """
    parts = [
        _U8.pack(OP_SCORE),
        _U32.pack(slice_id),
        pack_str(attribute),
        pack_str(phrase),
        _U32.pack(start),
        _U32.pack(stop),
    ]
    if rows is None:
        parts.append(_U8.pack(0))
    else:
        parts.append(_U8.pack(1))
        parts.append(_U32.pack(len(rows)))
        parts.append(np.asarray(rows, dtype=WIRE_U32).tobytes())
    parts.append(pack_trace_field(trace))
    return b"".join(parts)


_F64 = struct.Struct("!d")


def encode_score_bounded_request(
    slice_id: int,
    attribute: str,
    phrase: str,
    start: int,
    stop: int,
    rows: Sequence[int] | None,
    threshold: float,
    trace: tuple[int, int] | None = None,
) -> bytes:
    """The ``score bounded`` request: a score request plus a prune threshold.

    Identical field layout to :func:`encode_score_request` (so workers
    resolve the slice and rows the same way) with one trailing big-endian
    f64: the coordinator's current k-th best score.  The worker may answer
    any row with its degree *upper bound* instead of its exact degree as
    long as that bound is below the threshold — the response's exactness
    mask says which is which.  ``trace`` optionally appends the v5 trace
    field after the threshold.
    """
    parts = [
        _U8.pack(OP_SCORE_BOUNDED),
        _U32.pack(slice_id),
        pack_str(attribute),
        pack_str(phrase),
        _U32.pack(start),
        _U32.pack(stop),
    ]
    if rows is None:
        parts.append(_U8.pack(0))
    else:
        parts.append(_U8.pack(1))
        parts.append(_U32.pack(len(rows)))
        parts.append(np.asarray(rows, dtype=WIRE_U32).tobytes())
    parts.append(_F64.pack(threshold))
    parts.append(pack_trace_field(trace))
    return b"".join(parts)


def encode_score_bounded_response(
    values: np.ndarray, exact_mask: np.ndarray, scored: int, pruned: int
) -> bytes:
    """The ``score bounded`` response: values, per-row exactness, counters.

    ``values`` holds exact degrees where ``exact_mask`` is set and degree
    upper bounds elsewhere; ``scored``/``pruned`` are the worker-side row
    counts behind the mask, carried explicitly so coordinators aggregate
    counters without re-deriving them.
    """
    return (
        _U8.pack(STATUS_OK)
        + _U32.pack(len(values))
        + np.asarray(values, dtype=WIRE_F64).tobytes()
        + np.asarray(exact_mask, dtype=np.uint8).tobytes()
        + _U32.pack(scored)
        + _U32.pack(pruned)
    )


def read_score_bounded_response(
    reader: Reader,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Decode a ``score bounded`` response body (after its status byte).

    Returns ``(values, exact_mask, scored, pruned)`` with the mask as a
    boolean array aligned with ``values``.
    """
    count = reader.read_u32()
    values = reader.read_f64_array(count)
    exact_mask = np.frombuffer(reader.read_raw(count), dtype=np.uint8).astype(bool)
    scored = reader.read_u32()
    pruned = reader.read_u32()
    return values, exact_mask, scored, pruned


def encode_error(message: str) -> bytes:
    """An error response frame transporting ``message`` to the peer."""
    return _U8.pack(STATUS_ERROR) + pack_str(message)


def encode_invalidate_request(data_version: int) -> bytes:
    """The ``invalidate`` request frame carrying the caller's data version."""
    return _U8.pack(OP_INVALIDATE) + _U64.pack(data_version)


def encode_hydrate_request(snapshot_bytes: bytes) -> bytes:
    """The ``hydrate`` request frame shipping one packed column snapshot.

    The snapshot (:class:`repro.core.columnar.ColumnSnapshot`) is
    self-describing — attribute, slice id, row range, data version and a
    checksum all live inside ``snapshot_bytes`` — so the frame is just the
    opcode plus the opaque payload.
    """
    return _U8.pack(OP_HYDRATE) + snapshot_bytes


def encode_hydrate_delta_request(delta_bytes: bytes) -> bytes:
    """The ``hydrate delta`` request frame shipping one packed snapshot delta.

    The delta (:class:`repro.core.columnar.SnapshotDelta`) is
    self-describing exactly like a full snapshot — base version, new
    version, slice identity, changed rows and a checksum all live inside
    ``delta_bytes`` (compression too: it rides in the snapshot container's
    flags byte) — so the frame is just the opcode plus the opaque payload.
    A node that no longer holds the delta's base responds with a
    transported error and the coordinator falls back to a full snapshot.
    """
    return _U8.pack(OP_HYDRATE_DELTA) + delta_bytes


# --------------------------------------------------------------------------
# The versioned hello handshake (TCP transport)
# --------------------------------------------------------------------------

def encode_hello(protocol_version: int, data_version: int) -> bytes:
    """The coordinator's ``hello``: its protocol version and data version.

    The first frame on every new TCP connection.  The node refuses any
    other opcode first, and refuses a protocol version other than its own
    with a transported error — so skew is always a typed failure.
    """
    return _U8.pack(OP_HELLO) + _U32.pack(protocol_version) + _U64.pack(data_version)


def encode_hello_ack(
    protocol_version: int,
    data_version: int,
    owned_slice_ids: Sequence[int],
    local_store: bool = False,
) -> bytes:
    """The node's ``hello`` acknowledgement.

    Carries the node's protocol version, the ``data_version`` of the
    snapshot its hydrated slices were packed from (0 before any
    hydration), the slice ids it currently owns, and a ``local_store``
    flag advertising that the node can hydrate slices from a local
    persistent data directory at that ``data_version`` — a coordinator
    holding the same version then skips shipping snapshot frames.
    """
    return (
        _U8.pack(STATUS_OK)
        + _U32.pack(protocol_version)
        + _U64.pack(data_version)
        + _U32.pack(len(owned_slice_ids))
        + np.asarray(list(owned_slice_ids), dtype=WIRE_U32).tobytes()
        + _U8.pack(1 if local_store else 0)
    )


# --------------------------------------------------------------------------
# The gateway request/response codec (client-facing front door)
# --------------------------------------------------------------------------
#
# Unlike the strictly sequential shard-node exchanges, gateway clients may
# pipeline: several requests can be outstanding on one connection and the
# gateway answers them as they complete, not in arrival order.  Every
# gateway frame therefore carries a client-chosen ``request_id`` (u32),
# echoed verbatim in the response, so replies match requests without any
# ordering assumption.


def encode_gateway_query(
    request_id: int,
    sql: str,
    top_k: int | None = None,
    trace: tuple[int, int] | None = None,
) -> bytes:
    """The gateway ``query`` request frame: one SQL string plus an optional top-k.

    ``trace`` optionally appends the v5 trace field so a client carrying
    its own trace context can parent the gateway's spans on it.
    """
    parts = [_U8.pack(OP_QUERY), _U32.pack(request_id), pack_str(sql)]
    if top_k is None:
        parts.append(_U8.pack(0))
    else:
        parts.append(_U8.pack(1))
        parts.append(_U32.pack(top_k))
    parts.append(pack_trace_field(trace))
    return b"".join(parts)


def encode_traces_request(trace_id: int = 0, limit: int = 0) -> bytes:
    """The shard-service ``traces`` request: query a peer's span buffer.

    ``trace_id`` filters to one trace (0 = all buffered spans); ``limit``
    keeps only the newest N matches (0 = no limit).  The response is a
    :data:`STATUS_OK` byte plus one string field holding a JSON array of
    span dicts (:meth:`repro.obs.TraceStore.to_json`).  Protocol v5 —
    only send on connections negotiated at that version.
    """
    return _U8.pack(OP_TRACES) + _U64.pack(trace_id) + _U32.pack(limit)


def encode_gateway_traces_request(request_id: int, trace_id: int = 0, limit: int = 0) -> bytes:
    """The gateway ``traces`` request (same opcode, gateway framing).

    Gateway frames always carry the client's ``request_id`` after the
    opcode; the filter fields match :func:`encode_traces_request` and the
    response is a standard gateway response whose JSON body is the span
    array.
    """
    return _U8.pack(OP_TRACES) + _U32.pack(request_id) + _U64.pack(trace_id) + _U32.pack(limit)


def encode_gateway_stats_request(request_id: int) -> bytes:
    """The gateway ``stats`` request frame (gateway counters + engine stats)."""
    return _U8.pack(OP_GATEWAY_STATS) + _U32.pack(request_id)


def encode_gateway_response(request_id: int, body: str) -> bytes:
    """A successful gateway response: echoed request id plus a JSON body."""
    return _U8.pack(STATUS_OK) + _U32.pack(request_id) + pack_str(body)


def encode_gateway_error(request_id: int, message: str) -> bytes:
    """A failed gateway response transporting ``message`` to the client."""
    return _U8.pack(STATUS_ERROR) + _U32.pack(request_id) + pack_str(message)


def encode_gateway_overload(request_id: int, message: str) -> bytes:
    """A typed admission-control rejection (the request was never admitted)."""
    return _U8.pack(STATUS_OVERLOADED) + _U32.pack(request_id) + pack_str(message)


def read_gateway_response(payload: bytes) -> tuple[int, str]:
    """Decode one gateway response into ``(request_id, json_body)``.

    A transported gateway-side failure raises :class:`RpcError`; a typed
    admission-control rejection raises :class:`GatewayOverloadedError`.
    Both carry the echoed request id on the exception as ``request_id`` so
    pipelining clients can resolve the right outstanding call.
    """
    reader = Reader(payload)
    status = reader.read_u8()
    request_id = reader.read_u32()
    message = reader.read_str()
    if status == STATUS_OK:
        return request_id, message
    if status == STATUS_OVERLOADED:
        error: RpcError = GatewayOverloadedError(message)
    else:
        error = RpcError(message)
    error.request_id = request_id
    raise error


def read_hello_ack(payload: bytes) -> tuple[int, int, list[int], bool]:
    """Decode a ``hello`` acknowledgement; typed errors, never a hang.

    Returns ``(protocol_version, data_version, owned_slice_ids,
    local_store)``.  The acknowledged version may be any member of
    :data:`SUPPORTED_PROTOCOL_VERSIONS` — the connection then runs at
    ``min(PROTOCOL_VERSION, acked)``, which is how a v5 coordinator
    negotiates trace fields *off* against a v4 node.  A transported
    node-side error or an unsupported version raises
    :class:`HandshakeError`; a malformed (truncated) acknowledgement does
    too.
    """
    try:
        reader = Reader(payload)
        status = reader.read_u8()
        if status != STATUS_OK:
            raise HandshakeError(f"node refused the handshake: {reader.read_str()}")
        version = reader.read_u32()
        if version not in SUPPORTED_PROTOCOL_VERSIONS:
            raise HandshakeError(
                f"protocol version mismatch: node speaks {version}, "
                f"coordinator supports {sorted(SUPPORTED_PROTOCOL_VERSIONS)}"
            )
        data_version = reader.read_u64()
        owned = reader.read_u32_array(reader.read_u32())
        local_store = bool(reader.read_u8())
    except HandshakeError:
        raise
    except RpcError as error:
        raise HandshakeError(f"malformed hello acknowledgement ({error})") from error
    return version, data_version, owned, local_store
