"""Serving layer: batched subjective-query execution with caches.

The core :class:`repro.core.SubjectiveQueryProcessor` reproduces the paper's
pipeline faithfully but treats every query as independent: each call
re-parses the SQL, re-interprets every subjective predicate, and scores each
candidate entity from scratch.  This package amortises that work across a
query stream, which is what a production deployment serving repeated and
overlapping queries needs:

* :class:`LRUCache` / :class:`PartitionedLRUCache` — the bounded cache
  primitives shared by the layers below;
* :func:`normalize_sql` / :class:`QueryPlan` — normalised-SQL keyed plans
  bundling the parsed statement with its predicate interpretations;
* :class:`SubjectiveQueryEngine` — the serving front end: an LRU plan cache,
  a per-database membership-degree cache invalidated on ingest, batch
  (vectorized) degree computation over candidate entities, a ``run_batch()``
  API, and cache/latency statistics;
* :class:`ShardedSubjectiveQueryEngine` / :class:`ShardedColumnarStore` —
  the entity-sharded scale-out tier: K contiguous slice views per
  attribute, per-slice kernel fan-out (serial/thread/process backends), a
  per-shard membership-cache partition, vectorized WHERE-tree scoring and
  per-shard top-k merge;
* :class:`CoordinatorQueryEngine` / :class:`RpcShardStore`
  (:mod:`repro.serving.rpc`) — the disaggregated tier: long-lived shard
  worker processes serving a length-prefixed binary ``score`` protocol
  over local sockets, a coordinator that fans WHERE-tree scoring out and
  merges per-shard top-k heaps, same caches, same invalidation unit;
* :class:`ClusterQueryEngine` / :class:`ClusterShardStore` /
  :class:`ShardNodeServer` (:mod:`repro.serving.cluster`) — the
  multi-node tier: shard nodes listening on **TCP** (same frame protocol,
  shared in :mod:`repro.serving.protocol`), hydrated from shipped
  :class:`~repro.core.columnar.ColumnSnapshot` bytes instead of fork, a
  versioned ``hello`` handshake, pipelined per-node request queues, and a
  concurrent ``run_batch`` that overlaps independent queries' fan-outs;
* :class:`ServingGateway` / :class:`AsyncGatewayClient` / :class:`GatewayClient`
  (:mod:`repro.serving.gateway`) — the client-facing front door: an
  ``asyncio`` server that coalesces identical in-flight requests, folds
  concurrent arrivals into ``run_batch`` micro-batches, enforces typed
  admission control (:class:`AdmissionController`), and answers a live
  ``stats`` opcode even while the engine is saturated.

Every engine produces results identical to the wrapped processor — caches
only short-circuit recomputation of values the processor would have
produced, and sharded, RPC, cluster or gateway execution reorders work,
never arithmetic.  ``docs/ARCHITECTURE.md`` documents all six layers, the
cache hierarchy, and the ``data_version`` invalidation contract in one
place.
"""

from repro.serving.cache import CacheStats, LRUCache, PartitionedLRUCache
from repro.serving.cluster import (
    ClusterQueryEngine,
    ClusterShardStore,
    ShardNodeServer,
    start_local_node,
)
from repro.serving.engine import (
    BatchResult,
    ServingStats,
    SubjectiveQueryEngine,
)
from repro.serving.gateway import (
    AdmissionController,
    AsyncGatewayClient,
    GatewayClient,
    GatewayHandle,
    GatewayReply,
    ServingGateway,
    coalescing_key,
    start_gateway,
)
from repro.serving.plans import QueryPlan, normalize_sql
from repro.serving.protocol import (
    OP_TRACES,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    TRACE_PROTOCOL_VERSION,
    FrameTooLargeError,
    GatewayOverloadedError,
    HandshakeError,
    RpcError,
    WorkerCrashedError,
)
from repro.serving.rpc import (
    CoordinatorQueryEngine,
    RpcShardStore,
    ShardServiceClient,
    ShardServiceWorker,
)
from repro.serving.sharded import (
    ShardedColumnarStore,
    ShardedSubjectiveQueryEngine,
    default_num_shards,
    merge_shard_topk,
    partition_bounds,
)

__all__ = [
    "AdmissionController",
    "AsyncGatewayClient",
    "BatchResult",
    "CacheStats",
    "ClusterQueryEngine",
    "ClusterShardStore",
    "CoordinatorQueryEngine",
    "FrameTooLargeError",
    "GatewayClient",
    "GatewayHandle",
    "GatewayOverloadedError",
    "GatewayReply",
    "HandshakeError",
    "LRUCache",
    "OP_TRACES",
    "PROTOCOL_VERSION",
    "PartitionedLRUCache",
    "QueryPlan",
    "RpcError",
    "RpcShardStore",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "ServingGateway",
    "ServingStats",
    "ShardNodeServer",
    "ShardServiceClient",
    "ShardServiceWorker",
    "ShardedColumnarStore",
    "ShardedSubjectiveQueryEngine",
    "SubjectiveQueryEngine",
    "TRACE_PROTOCOL_VERSION",
    "WorkerCrashedError",
    "coalescing_key",
    "default_num_shards",
    "merge_shard_topk",
    "normalize_sql",
    "partition_bounds",
    "start_gateway",
    "start_local_node",
]
