"""The subjective-query serving engine.

:class:`SubjectiveQueryEngine` wraps a :class:`SubjectiveQueryProcessor`
with the amortisation layers a query-serving deployment needs:

* a **plan cache** — an LRU over :func:`normalize_sql` keys holding the
  parsed statement and the predicate interpretations, so repeated (or
  reformatted) queries skip parsing and interpretation entirely;
* a **candidate cache** — objective pre-filter results per plan, so warm
  queries skip the table scan/join/filter;
* a **membership cache** — ``(entity_id, attribute, phrase) → degree`` (and
  ``(entity_id, None, predicate)`` for the text-retrieval fallback), shared
  across all queries touching the same predicate/entity combinations;
* **columnar batch scoring** — uncached degrees are computed for all missing
  entities of a predicate in one :meth:`SubjectiveQueryProcessor.pair_degrees`
  call, which routes through the processor's
  :class:`repro.core.columnar.ColumnarSummaryStore`: a handful of NumPy
  kernel calls over dense per-attribute summary arrays, never
  entity-by-entity Python loops.

Every cache snapshots :attr:`SubjectiveDatabase.data_version`; any ingest
(entities, reviews, extractions, summaries, index rebuilds) moves the
version and the next query drops all cached state — including the columnar
store's built column arrays.  Results are therefore
always identical to running the wrapped processor directly — the test suite
asserts equality and the throughput benchmark measures the speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.database import SubjectiveDatabase
from repro.core.processor import QueryResult, SubjectiveQueryProcessor
from repro.serving.cache import LRUCache
from repro.serving.plans import QueryPlan, normalize_sql

_MISSING = object()


@dataclass(frozen=True)
class CandidateSet:
    """Cached objective pre-filter result plus its derived entity-id views.

    Row → entity-id resolution and deduplication are as data-version-stable
    as the rows themselves, so they are computed once per plan and cached
    together instead of being re-derived on every warm execution.
    """

    rows: list[dict]
    row_entities: list[Hashable]
    unique_ids: list[Hashable]


@dataclass
class ServingStats:
    """Aggregate serving counters (cache counters live on the caches)."""

    queries: int = 0
    batch_queries: int = 0
    invalidations: int = 0
    total_seconds: float = 0.0

    @property
    def mean_latency(self) -> float:
        """Mean seconds per query served (0.0 before the first query)."""
        if self.queries == 0:
            return 0.0
        return self.total_seconds / self.queries


@dataclass
class BatchResult:
    """Results of one :meth:`SubjectiveQueryEngine.run_batch` call."""

    results: list[QueryResult]
    latencies: list[float]
    elapsed_seconds: float
    cache_stats: dict[str, int] = field(default_factory=dict)

    @property
    def queries_per_second(self) -> float:
        """Batch throughput over wall-clock time (0.0 for an empty batch)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.results) / self.elapsed_seconds

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class SubjectiveQueryEngine:
    """Cached, batched serving front end over a subjective database.

    Parameters
    ----------
    database:
        The database to serve; a default processor is built over it.
        Ignored when ``processor`` is given.
    processor:
        An explicitly configured processor to wrap (custom membership
        function, fuzzy logic, thresholds, ...).
    plan_cache_size:
        Maximum cached query plans (normalised-SQL keyed LRU).
    membership_cache_size:
        Maximum cached membership degrees; sized generously by default since
        entries are tiny and recomputation is the dominant query cost.
    candidate_cache_size:
        Maximum cached objective candidate-row lists, keyed per plan.
        Cached rows are shared between results of repeated queries and must
        be treated as read-only by callers.
    """

    def __init__(
        self,
        database: SubjectiveDatabase | None = None,
        processor: SubjectiveQueryProcessor | None = None,
        plan_cache_size: int | None = 256,
        membership_cache_size: int | None = 200_000,
        candidate_cache_size: int | None = 64,
    ) -> None:
        if processor is None:
            if database is None:
                raise ValueError("SubjectiveQueryEngine needs a database or a processor")
            processor = SubjectiveQueryProcessor(database)
        self.processor = processor
        self.database = processor.database
        self.plan_cache = LRUCache(plan_cache_size)
        self.membership_cache = self._build_membership_cache(membership_cache_size)
        self.candidate_cache = LRUCache(candidate_cache_size)
        self.stats = ServingStats()
        # The counter family the bound-based top-k planner reports at every
        # layer: entities scored exactly by a kernel vs. entities dismissed
        # on a bound alone.  The base engine never prunes, so its pruned
        # count stays 0 — but layer 1 reporting the same names keeps
        # run_batch() cache stats comparable across the whole stack.
        self.entities_scored = 0
        self.entities_pruned = 0
        self._data_version = self.database.data_version

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release executor or worker resources held by the engine.

        The base engine holds none, so this is a no-op; the sharded engine
        shuts down its executor pool here and the RPC coordinator shuts
        down its shard-service worker processes.  Always idempotent, so
        ``finally: engine.close()`` (or the context-manager form) is safe
        for every engine flavour.
        """

    def __enter__(self) -> "SubjectiveQueryEngine":
        """Enter a ``with`` block; the engine closes itself on exit."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Close the engine when the ``with`` block exits."""
        self.close()

    def _build_membership_cache(self, maxsize: int | None):
        """The membership-degree cache; subclasses may partition it.

        The sharded engine returns a
        :class:`repro.serving.cache.PartitionedLRUCache` with one partition
        per shard here; everything else about cache handling (lookup keys,
        miss batching, ``data_version`` invalidation) is shared.
        """
        return LRUCache(maxsize)

    # ------------------------------------------------------------ invalidation
    def invalidate(self) -> None:
        """Drop every cache (called automatically when the database changes)."""
        self.plan_cache.clear()
        self.membership_cache.clear()
        self.candidate_cache.clear()
        self.processor.interpreter.invalidate()
        if self.processor.columnar_store is not None:
            self.processor.columnar_store.invalidate()
        self.stats.invalidations += 1
        self._data_version = self.database.data_version

    def _check_data_version(self) -> None:
        if self.database.data_version != self._data_version:
            self.invalidate()

    # ------------------------------------------------------------------ plans
    def plan(self, sql: str) -> QueryPlan:
        """The cached (or freshly built) plan for one SQL string."""
        self._check_data_version()
        key = normalize_sql(sql)
        plan = self.plan_cache.get(key)
        if plan is not None and plan.data_version != self._data_version:
            # Defensive: a plan that survived an invalidation is stale.
            plan = None
        if plan is None:
            statement = self.processor.prepare_statement(sql)
            interpretations = self.processor.interpret_predicates(statement)
            plan = QueryPlan(
                normalized_sql=key,
                statement=statement,
                interpretations=interpretations,
                data_version=self._data_version,
            )
            self.plan_cache.put(key, plan)
        return plan

    # -------------------------------------------------------------- execution
    def execute(self, sql: str, top_k: int | None = None) -> QueryResult:
        """Serve one query through the caches; identical to processor output."""
        self._check_data_version()
        started = time.perf_counter()
        plan = self.plan(sql)
        candidates = self._candidate_rows(plan)
        result = self._rank(plan, candidates, sql=sql, top_k=top_k)
        self.stats.queries += 1
        self.stats.total_seconds += time.perf_counter() - started
        return result

    def run_batch(self, sqls: Sequence[str], top_k: int | None = None) -> BatchResult:
        """Execute many queries with shared plans, candidates and degrees.

        Sharing happens through the caches: the first query touching a
        (predicate, entity) combination pays for its batch scoring, every
        later query in the batch reuses the degrees.  Returns the ranked
        results in input order plus per-query latencies and the cache
        activity the batch generated.
        """
        self._check_data_version()
        before = self._cache_counters()
        results: list[QueryResult] = []
        latencies: list[float] = []
        started = time.perf_counter()
        for sql in sqls:
            query_started = time.perf_counter()
            results.append(self.execute(sql, top_k=top_k))
            latencies.append(time.perf_counter() - query_started)
        elapsed = time.perf_counter() - started
        self.stats.batch_queries += len(results)
        after = self._cache_counters()
        delta = {name: after[name] - before[name] for name in after}
        return BatchResult(
            results=results,
            latencies=latencies,
            elapsed_seconds=elapsed,
            cache_stats=delta,
        )

    # -------------------------------------------------------------- internals
    def _candidate_rows(self, plan: QueryPlan) -> CandidateSet:
        candidates = self.candidate_cache.get(plan.normalized_sql)
        if candidates is None:
            rows = self.processor.candidate_rows(plan.statement)
            row_entities = self.processor.entity_ids_of(rows, plan.statement.alias)
            candidates = CandidateSet(
                rows=rows,
                row_entities=row_entities,
                unique_ids=list(dict.fromkeys(row_entities)),
            )
            self.candidate_cache.put(plan.normalized_sql, candidates)
        return candidates

    def _rank(
        self,
        plan: QueryPlan,
        candidates: CandidateSet,
        sql: str,
        top_k: int | None,
    ) -> QueryResult:
        degree_table: dict[str, dict[Hashable, float]] = {}
        for predicate, interpretation in plan.interpretations.items():
            degrees = self.processor.interpretation_degrees(
                candidates.unique_ids,
                interpretation,
                pair_scorer=self._cached_pair_degrees,
                retrieval_scorer=self._cached_retrieval_degrees,
            )
            degree_table[predicate] = dict(zip(candidates.unique_ids, degrees))
        return self.processor.rank_candidates(
            plan.statement,
            candidates.rows,
            plan.interpretations,
            degree_table=degree_table,
            sql=sql,
            top_k=top_k,
            row_entities=candidates.row_entities,
        )

    def _cached_degrees(
        self,
        entity_ids: Sequence[Hashable],
        attribute: str | None,
        phrase: str,
        compute,
    ) -> list[float]:
        """Serve degrees from the membership cache, batch-computing the misses."""
        cached = self.membership_cache.get_many(
            [(entity_id, attribute, phrase) for entity_id in entity_ids], _MISSING
        )
        missing = [
            entity_id for entity_id, value in zip(entity_ids, cached) if value is _MISSING
        ]
        if not missing:
            return cached
        computed = compute(missing)
        self.entities_scored += len(missing)
        self.membership_cache.put_many(
            [
                ((entity_id, attribute, phrase), degree)
                for entity_id, degree in zip(missing, computed)
            ]
        )
        filled = iter(computed)
        return [next(filled) if value is _MISSING else value for value in cached]

    def _cached_pair_degrees(
        self,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
    ) -> list[float]:
        return self._cached_degrees(
            entity_ids,
            attribute,
            phrase,
            lambda missing: self.processor.pair_degrees(missing, attribute, phrase),
        )

    def _cached_retrieval_degrees(
        self,
        entity_ids: Sequence[Hashable],
        predicate: str,
    ) -> list[float]:
        # Text-retrieval degrees have no attribute; None keeps the key space
        # disjoint from pair degrees.
        return self._cached_degrees(
            entity_ids,
            None,
            predicate,
            lambda missing: self.processor.retrieval_degrees(missing, predicate),
        )

    def _cache_counters(self) -> dict[str, int]:
        return {
            "plan_hits": self.plan_cache.stats.hits,
            "plan_misses": self.plan_cache.stats.misses,
            "membership_hits": self.membership_cache.stats.hits,
            "membership_misses": self.membership_cache.stats.misses,
            "candidate_hits": self.candidate_cache.stats.hits,
            "candidate_misses": self.candidate_cache.stats.misses,
            "entities_scored": self.entities_scored,
            "entities_pruned": self.entities_pruned,
        }

    def stats_snapshot(self) -> dict[str, object]:
        """One dict with serving counters and per-cache hit statistics."""
        return {
            "queries": self.stats.queries,
            "batch_queries": self.stats.batch_queries,
            "invalidations": self.stats.invalidations,
            "total_seconds": self.stats.total_seconds,
            "mean_latency": self.stats.mean_latency,
            "entities_scored": self.entities_scored,
            "entities_pruned": self.entities_pruned,
            "plan_cache": self.plan_cache.stats.as_dict(),
            "membership_cache": self.membership_cache.stats.as_dict(),
            "candidate_cache": self.candidate_cache.stats.as_dict(),
            "columnar_store": (
                self.processor.columnar_store.stats_snapshot()
                if self.processor.columnar_store is not None
                else None
            ),
        }
