"""The subjective-query serving engine.

:class:`SubjectiveQueryEngine` wraps a :class:`SubjectiveQueryProcessor`
with the amortisation layers a query-serving deployment needs:

* a **plan cache** — an LRU over :func:`normalize_sql` keys holding the
  parsed statement and the predicate interpretations, so repeated (or
  reformatted) queries skip parsing and interpretation entirely;
* a **candidate cache** — objective pre-filter results per plan, so warm
  queries skip the table scan/join/filter;
* a **membership cache** — ``(entity_id, attribute, phrase) → degree`` (and
  ``(entity_id, None, predicate)`` for the text-retrieval fallback), shared
  across all queries touching the same predicate/entity combinations;
* **columnar batch scoring** — uncached degrees are computed for all missing
  entities of a predicate in one :meth:`SubjectiveQueryProcessor.pair_degrees`
  call, which routes through the processor's
  :class:`repro.core.columnar.ColumnarSummaryStore`: a handful of NumPy
  kernel calls over dense per-attribute summary arrays, never
  entity-by-entity Python loops.

Every cache snapshots :attr:`SubjectiveDatabase.data_version`; any ingest
(entities, reviews, extractions, summaries, index rebuilds) moves the
version and the next query drops all cached state — including the columnar
store's built column arrays.  Results are therefore
always identical to running the wrapped processor directly — the test suite
asserts equality and the throughput benchmark measures the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.database import SubjectiveDatabase
from repro.core.processor import QueryResult, SubjectiveQueryProcessor
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.slowlog import SlowQueryLog, global_slow_query_log
from repro.obs.trace import span
from repro.serving.cache import LRUCache
from repro.serving.plans import QueryPlan, normalize_sql
from repro.utils.timing import now

_MISSING = object()


@dataclass(frozen=True)
class CandidateSet:
    """Cached objective pre-filter result plus its derived entity-id views.

    Row → entity-id resolution and deduplication are as data-version-stable
    as the rows themselves, so they are computed once per plan and cached
    together instead of being re-derived on every warm execution.
    """

    rows: list[dict]
    row_entities: list[Hashable]
    unique_ids: list[Hashable]


class ServingStats:
    """Aggregate serving counters (cache counters live on the caches).

    Storage is a set of live :class:`repro.obs.metrics.Counter` cells
    (``*_cell`` attributes) the engine registers in its
    :class:`~repro.obs.MetricsRegistry`.  Attribute reads are plain
    value snapshots; writes (``stats.queries += 1``) land in the
    registered cell — the registry and this legacy view share storage.
    """

    __slots__ = (
        "queries_cell",
        "batch_queries_cell",
        "invalidations_cell",
        "total_seconds_cell",
    )

    def __init__(
        self,
        queries: int = 0,
        batch_queries: int = 0,
        invalidations: int = 0,
        total_seconds: float = 0.0,
    ) -> None:
        self.queries_cell = Counter("queries", value=int(queries))
        self.batch_queries_cell = Counter("batch_queries", value=int(batch_queries))
        self.invalidations_cell = Counter("invalidations", value=int(invalidations))
        self.total_seconds_cell = Counter("total_seconds", value=float(total_seconds))

    @property
    def queries(self) -> int:
        """Queries served through :meth:`SubjectiveQueryEngine.execute`."""
        return int(self.queries_cell)

    @queries.setter
    def queries(self, value: int) -> None:
        self.queries_cell.reset(int(value))

    @property
    def batch_queries(self) -> int:
        """Queries served inside :meth:`SubjectiveQueryEngine.run_batch` calls."""
        return int(self.batch_queries_cell)

    @batch_queries.setter
    def batch_queries(self, value: int) -> None:
        self.batch_queries_cell.reset(int(value))

    @property
    def invalidations(self) -> int:
        """Whole-cache invalidations triggered by ``data_version`` moves."""
        return int(self.invalidations_cell)

    @invalidations.setter
    def invalidations(self, value: int) -> None:
        self.invalidations_cell.reset(int(value))

    @property
    def total_seconds(self) -> float:
        """Total wall-clock seconds spent serving queries."""
        return float(self.total_seconds_cell)

    @total_seconds.setter
    def total_seconds(self, value: float) -> None:
        self.total_seconds_cell.reset(float(value))

    def __repr__(self) -> str:
        return (
            f"ServingStats(queries={self.queries}, batch_queries={self.batch_queries}, "
            f"invalidations={self.invalidations}, total_seconds={self.total_seconds})"
        )

    @property
    def mean_latency(self) -> float:
        """Mean seconds per query served (0.0 before the first query)."""
        if self.queries == 0:
            return 0.0
        return self.total_seconds / self.queries


@dataclass
class BatchResult:
    """Results of one :meth:`SubjectiveQueryEngine.run_batch` call."""

    results: list[QueryResult]
    latencies: list[float]
    elapsed_seconds: float
    cache_stats: dict[str, int] = field(default_factory=dict)

    @property
    def queries_per_second(self) -> float:
        """Batch throughput over wall-clock time (0.0 for an empty batch)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.results) / self.elapsed_seconds

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class SubjectiveQueryEngine:
    """Cached, batched serving front end over a subjective database.

    Parameters
    ----------
    database:
        The database to serve; a default processor is built over it.
        Ignored when ``processor`` is given.
    processor:
        An explicitly configured processor to wrap (custom membership
        function, fuzzy logic, thresholds, ...).
    plan_cache_size:
        Maximum cached query plans (normalised-SQL keyed LRU).
    membership_cache_size:
        Maximum cached membership degrees; sized generously by default since
        entries are tiny and recomputation is the dominant query cost.
    candidate_cache_size:
        Maximum cached objective candidate-row lists, keyed per plan.
        Cached rows are shared between results of repeated queries and must
        be treated as read-only by callers.
    """

    def __init__(
        self,
        database: SubjectiveDatabase | None = None,
        processor: SubjectiveQueryProcessor | None = None,
        plan_cache_size: int | None = 256,
        membership_cache_size: int | None = 200_000,
        candidate_cache_size: int | None = 64,
    ) -> None:
        if processor is None:
            if database is None:
                raise ValueError("SubjectiveQueryEngine needs a database or a processor")
            processor = SubjectiveQueryProcessor(database)
        self.processor = processor
        self.database = processor.database
        self.plan_cache = LRUCache(plan_cache_size)
        self.membership_cache = self._build_membership_cache(membership_cache_size)
        self.candidate_cache = LRUCache(candidate_cache_size)
        self.stats = ServingStats()
        # One registry per engine: every serving counter below is (or is
        # viewed by) an instrument in it, and the legacy dict-returning
        # APIs (_cache_counters, stats_snapshot) are thin views over the
        # same cells.
        self.metrics = MetricsRegistry()
        self.metrics.register("queries", self.stats.queries_cell)
        self.metrics.register("batch_queries", self.stats.batch_queries_cell)
        self.metrics.register("invalidations", self.stats.invalidations_cell)
        self.metrics.register("total_seconds", self.stats.total_seconds_cell)
        self.metrics.register("plan_cache_hits", self.plan_cache.stats.hits_cell)
        self.metrics.register("plan_cache_misses", self.plan_cache.stats.misses_cell)
        self.metrics.register("plan_cache_evictions", self.plan_cache.stats.evictions_cell)
        self.metrics.register("candidate_cache_hits", self.candidate_cache.stats.hits_cell)
        self.metrics.register("candidate_cache_misses", self.candidate_cache.stats.misses_cell)
        self.metrics.register(
            "candidate_cache_evictions", self.candidate_cache.stats.evictions_cell
        )
        # The membership cache may be partitioned (its aggregate stats are
        # computed, not a single cell), so it is exported as collect-time
        # views instead of registered cells.
        self.metrics.func_gauge(
            "membership_cache_hits", lambda: int(self.membership_cache.stats.hits)
        )
        self.metrics.func_gauge(
            "membership_cache_misses", lambda: int(self.membership_cache.stats.misses)
        )
        self.metrics.func_gauge(
            "membership_cache_evictions", lambda: int(self.membership_cache.stats.evictions)
        )
        self.latency_histogram = self.metrics.histogram(
            "query_latency_seconds", help="Per-query serving latency"
        )
        # The counter family the bound-based top-k planner reports at every
        # layer: entities scored exactly by a kernel vs. entities dismissed
        # on a bound alone.  The base engine never prunes, so its pruned
        # count stays 0 — but layer 1 reporting the same names keeps
        # run_batch() cache stats comparable across the whole stack.
        # Exposed as properties over registry cells so harness code that
        # assigns ``engine.entities_scored = 0`` resets the registered
        # cell instead of orphaning it.
        self._entities_scored_cell = self.metrics.counter("entities_scored")
        self._entities_pruned_cell = self.metrics.counter("entities_pruned")
        self.slow_query_log: SlowQueryLog = global_slow_query_log()
        self._data_version = self.database.data_version

    # ----------------------------------------------------- pruning counters
    @property
    def entities_scored(self) -> int:
        """Entities scored exactly by a kernel (reads the registry cell)."""
        return int(self._entities_scored_cell)

    @entities_scored.setter
    def entities_scored(self, value: int) -> None:
        self._entities_scored_cell.reset(int(value))

    @property
    def entities_pruned(self) -> int:
        """Entities dismissed on a bound alone (reads the registry cell)."""
        return int(self._entities_pruned_cell)

    @entities_pruned.setter
    def entities_pruned(self, value: int) -> None:
        self._entities_pruned_cell.reset(int(value))

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release executor or worker resources held by the engine.

        The base engine holds none, so this is a no-op; the sharded engine
        shuts down its executor pool here and the RPC coordinator shuts
        down its shard-service worker processes.  Always idempotent, so
        ``finally: engine.close()`` (or the context-manager form) is safe
        for every engine flavour.
        """

    def __enter__(self) -> "SubjectiveQueryEngine":
        """Enter a ``with`` block; the engine closes itself on exit."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Close the engine when the ``with`` block exits."""
        self.close()

    def _build_membership_cache(self, maxsize: int | None):
        """The membership-degree cache; subclasses may partition it.

        The sharded engine returns a
        :class:`repro.serving.cache.PartitionedLRUCache` with one partition
        per shard here; everything else about cache handling (lookup keys,
        miss batching, ``data_version`` invalidation) is shared.
        """
        return LRUCache(maxsize)

    # ------------------------------------------------------------ invalidation
    def invalidate(self) -> None:
        """Drop every cache (called automatically when the database changes)."""
        self.plan_cache.clear()
        self.membership_cache.clear()
        self.candidate_cache.clear()
        self.processor.interpreter.invalidate()
        if self.processor.columnar_store is not None:
            self.processor.columnar_store.invalidate()
        self.stats.invalidations += 1
        self._data_version = self.database.data_version

    def _check_data_version(self) -> None:
        if self.database.data_version != self._data_version:
            self.invalidate()

    # ------------------------------------------------------------------ plans
    def plan(self, sql: str) -> QueryPlan:
        """The cached (or freshly built) plan for one SQL string."""
        self._check_data_version()
        key = normalize_sql(sql)
        plan = self.plan_cache.get(key)
        if plan is not None and plan.data_version != self._data_version:
            # Defensive: a plan that survived an invalidation is stale.
            plan = None
        if plan is None:
            statement = self.processor.prepare_statement(sql)
            interpretations = self.processor.interpret_predicates(statement)
            plan = QueryPlan(
                normalized_sql=key,
                statement=statement,
                interpretations=interpretations,
                data_version=self._data_version,
            )
            self.plan_cache.put(key, plan)
        return plan

    # -------------------------------------------------------------- execution
    def execute(self, sql: str, top_k: int | None = None) -> QueryResult:
        """Serve one query through the caches; identical to processor output.

        When tracing is enabled (:func:`repro.obs.enable_tracing`) the
        query runs under a ``query`` span with ``plan`` / ``candidates``
        / ``score`` child spans — remote fan-out performed inside the
        score stage stamps its frames with that span's context.  Queries
        at or above the slow-query threshold are captured into
        :attr:`slow_query_log` with their span tree and pruning deltas.
        """
        self._check_data_version()
        slow_threshold = self.slow_query_log.threshold_seconds
        scored_before = pruned_before = 0
        if slow_threshold is not None:
            scored_before = int(self._entities_scored_cell)
            pruned_before = int(self._entities_pruned_cell)
        started = now()
        with span("query", sql=sql) as handle:
            with span("plan"):
                plan = self.plan(sql)
            with span("candidates"):
                candidates = self._candidate_rows(plan)
            with span("score"):
                result = self._rank(plan, candidates, sql=sql, top_k=top_k)
        elapsed = now() - started
        self.stats.queries += 1
        self.stats.total_seconds += elapsed
        self.latency_histogram.observe(elapsed)
        if slow_threshold is not None and elapsed >= slow_threshold:
            self.slow_query_log.maybe_record(
                sql=sql,
                seconds=elapsed,
                trace_id=handle.context.trace_id if handle is not None else 0,
                entities_scored=int(self._entities_scored_cell) - scored_before,
                entities_pruned=int(self._entities_pruned_cell) - pruned_before,
            )
        return result

    def run_batch(self, sqls: Sequence[str], top_k: int | None = None) -> BatchResult:
        """Execute many queries with shared plans, candidates and degrees.

        Sharing happens through the caches: the first query touching a
        (predicate, entity) combination pays for its batch scoring, every
        later query in the batch reuses the degrees.  Returns the ranked
        results in input order plus per-query latencies and the cache
        activity the batch generated.
        """
        self._check_data_version()
        before = self._cache_counters()
        results: list[QueryResult] = []
        latencies: list[float] = []
        started = now()
        for sql in sqls:
            query_started = now()
            results.append(self.execute(sql, top_k=top_k))
            latencies.append(now() - query_started)
        elapsed = now() - started
        self.stats.batch_queries += len(results)
        after = self._cache_counters()
        delta = {name: after[name] - before[name] for name in after}
        return BatchResult(
            results=results,
            latencies=latencies,
            elapsed_seconds=elapsed,
            cache_stats=delta,
        )

    # -------------------------------------------------------------- internals
    def _candidate_rows(self, plan: QueryPlan) -> CandidateSet:
        candidates = self.candidate_cache.get(plan.normalized_sql)
        if candidates is None:
            rows = self.processor.candidate_rows(plan.statement)
            row_entities = self.processor.entity_ids_of(rows, plan.statement.alias)
            candidates = CandidateSet(
                rows=rows,
                row_entities=row_entities,
                unique_ids=list(dict.fromkeys(row_entities)),
            )
            self.candidate_cache.put(plan.normalized_sql, candidates)
        return candidates

    def _rank(
        self,
        plan: QueryPlan,
        candidates: CandidateSet,
        sql: str,
        top_k: int | None,
    ) -> QueryResult:
        degree_table: dict[str, dict[Hashable, float]] = {}
        for predicate, interpretation in plan.interpretations.items():
            degrees = self.processor.interpretation_degrees(
                candidates.unique_ids,
                interpretation,
                pair_scorer=self._cached_pair_degrees,
                retrieval_scorer=self._cached_retrieval_degrees,
            )
            degree_table[predicate] = dict(zip(candidates.unique_ids, degrees))
        return self.processor.rank_candidates(
            plan.statement,
            candidates.rows,
            plan.interpretations,
            degree_table=degree_table,
            sql=sql,
            top_k=top_k,
            row_entities=candidates.row_entities,
        )

    def _cached_degrees(
        self,
        entity_ids: Sequence[Hashable],
        attribute: str | None,
        phrase: str,
        compute,
    ) -> list[float]:
        """Serve degrees from the membership cache, batch-computing the misses."""
        cached = self.membership_cache.get_many(
            [(entity_id, attribute, phrase) for entity_id in entity_ids], _MISSING
        )
        missing = [
            entity_id for entity_id, value in zip(entity_ids, cached) if value is _MISSING
        ]
        if not missing:
            return cached
        computed = compute(missing)
        self.entities_scored += len(missing)
        self.membership_cache.put_many(
            [
                ((entity_id, attribute, phrase), degree)
                for entity_id, degree in zip(missing, computed)
            ]
        )
        filled = iter(computed)
        return [next(filled) if value is _MISSING else value for value in cached]

    def _cached_pair_degrees(
        self,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
    ) -> list[float]:
        return self._cached_degrees(
            entity_ids,
            attribute,
            phrase,
            lambda missing: self.processor.pair_degrees(missing, attribute, phrase),
        )

    def _cached_retrieval_degrees(
        self,
        entity_ids: Sequence[Hashable],
        predicate: str,
    ) -> list[float]:
        # Text-retrieval degrees have no attribute; None keeps the key space
        # disjoint from pair degrees.
        return self._cached_degrees(
            entity_ids,
            None,
            predicate,
            lambda missing: self.processor.retrieval_degrees(missing, predicate),
        )

    def _cache_counters(self) -> dict[str, int]:
        # Values are snapshotted to plain ints — the counters are live
        # registry cells, and run_batch subtracts a before-dict from an
        # after-dict (two references to one mutating cell would always
        # subtract to zero).
        return {
            "plan_hits": int(self.plan_cache.stats.hits),
            "plan_misses": int(self.plan_cache.stats.misses),
            "membership_hits": int(self.membership_cache.stats.hits),
            "membership_misses": int(self.membership_cache.stats.misses),
            "candidate_hits": int(self.candidate_cache.stats.hits),
            "candidate_misses": int(self.candidate_cache.stats.misses),
            "entities_scored": int(self._entities_scored_cell),
            "entities_pruned": int(self._entities_pruned_cell),
        }

    def stats_snapshot(self) -> dict[str, object]:
        """One dict with serving counters and per-cache hit statistics.

        A thin plain-value view over the engine's :attr:`metrics`
        registry cells — always ``json.dumps``-safe (the worker/node
        stats handlers ship it over the wire verbatim).
        """
        return {
            "queries": int(self.stats.queries),
            "batch_queries": int(self.stats.batch_queries),
            "invalidations": int(self.stats.invalidations),
            "total_seconds": float(self.stats.total_seconds),
            "mean_latency": self.stats.mean_latency,
            "entities_scored": int(self._entities_scored_cell),
            "entities_pruned": int(self._entities_pruned_cell),
            "plan_cache": self.plan_cache.stats.as_dict(),
            "membership_cache": self.membership_cache.stats.as_dict(),
            "candidate_cache": self.candidate_cache.stats.as_dict(),
            "columnar_store": (
                self.processor.columnar_store.stats_snapshot()
                if self.processor.columnar_store is not None
                else None
            ),
        }
