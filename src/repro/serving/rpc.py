"""Shard-service RPC: worker processes scoring slices, a coordinator merging.

PR 3 made the contiguous entity slice the unit of placement but kept every
shard in one process.  This module moves the shards behind a service
boundary — the deployment shape of a disaggregated, coordinator/worker
query engine — while pinning the same exact-equality contract as every
other serving layer:

* **Frame protocol** — a small length-prefixed binary protocol over local
  stream sockets: every message is a 4-byte big-endian length followed by
  that many payload bytes (:func:`send_frame` / :func:`recv_frame`), with
  oversized frames rejected on both ends before any allocation.  Requests
  carry a one-byte opcode — ``score``, ``invalidate``, ``stats``,
  ``shutdown`` — and responses a one-byte status (OK or a transported
  error message);
* :class:`ShardServiceWorker` — the server side: a long-lived worker
  process owning a set of contiguous entity slices.  ``score(attribute,
  phrase, slice_id, start, stop[, rows])`` resolves the shipped indices
  against the worker's own deterministic rebuild of the column arrays
  (:func:`repro.core.columnar.resolve_slice` — exactly the PR 3 process
  backend's inherited-snapshot model) and returns the slice's degree
  vector; results are memoised in a per-slice
  :class:`~repro.serving.cache.PartitionedLRUCache` that ``invalidate``
  drops;
* :class:`ShardServiceClient` — the coordinator's per-worker handle:
  pipelined request writes, typed response reads, and clean
  :class:`WorkerCrashedError` surfacing when a worker dies mid-request;
* :class:`RpcShardStore` — implements the same ``pair_degrees`` protocol
  as :class:`~repro.serving.sharded.ShardedColumnarStore`, so the query
  processor routes through it unchanged: resident rows are grouped into
  per-slice score requests (:func:`repro.core.columnar.plan_slice_requests`
  — the identical plan the in-process store executes), requests are
  written to every involved worker before any response is read (workers
  compute concurrently), and the returned vectors are scattered back into
  one store-wide degree array;
* :class:`CoordinatorQueryEngine` — the serving front end: plans once
  through the inherited plan cache, fans WHERE-tree scoring out to the
  workers through the installed :class:`RpcShardStore`, and merges
  per-shard top-k heaps under the exact existing ``(-score,
  str(entity_id), position)`` stable order (all of
  :class:`~repro.serving.sharded.ShardedSubjectiveQueryEngine`'s ranking
  machinery is reused verbatim — only the degree transport changed).

Workers are forked, so they inherit the database snapshot of the moment
they were spawned; ingest in the coordinator process can never reach them.
The coordinator therefore honors :attr:`SubjectiveDatabase.data_version`
the same way the process shard backend does: a version bump tears the
worker fleet down and the next query re-forks it over the current data —
one invalidation unit with the engine caches and the base column arrays.
The ``invalidate`` RPC drops worker-side degree caches *within* a
snapshot's lifetime (used by benchmarks and by deployments that recycle
caches without re-forking); it reports the worker's snapshot version so
the coordinator can detect skew.

Because worker slices are rebuilt deterministically from the same snapshot
the coordinator's own base store reads, every shipped kernel result is
bit-identical to an in-process pass — the differential suite pins
rankings, scores and degrees of :class:`CoordinatorQueryEngine` exactly
equal to the unsharded engine across worker counts {1, 2, 4}.

The frame codec, opcodes and error types now live in
:mod:`repro.serving.protocol` (one definition shared with the TCP cluster
transport of :mod:`repro.serving.cluster`); this module re-exports them
under their original names for backwards compatibility.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
from typing import Hashable, Sequence

import numpy as np

from repro.core.columnar import (
    AttributeColumns,
    ColumnarSummaryStore,
    bounded_pair_degrees,
    columnar_kernel,
    gather_degrees,
    plan_slice_requests,
    resolve_slice,
    scalar_fallback_scorer,
)
from repro.core.database import SubjectiveDatabase
from repro.core.processor import SubjectiveQueryProcessor
from repro.errors import ExecutionError
from repro.serving.cache import PartitionedLRUCache
from repro.serving.protocol import (
    DEFAULT_MAX_FRAME_BYTES as DEFAULT_MAX_FRAME_BYTES,
)
from repro.serving.protocol import (
    OP_HYDRATE_DELTA as OP_HYDRATE_DELTA,  # re-export: cluster wire-format parity
)
from repro.obs.metrics import MetricsRegistry, cell_property
from repro.obs.trace import current_wire_trace, global_trace_store, record_span, span
from repro.serving.protocol import (
    OP_INVALIDATE,
    OP_SCORE,
    OP_SCORE_BOUNDED,
    OP_SHUTDOWN,
    OP_STATS,
    OP_TRACES,
    STATUS_ERROR,
    STATUS_OK,
    FrameTooLargeError,
    Reader,
    RpcError,
    WorkerCrashedError,
    encode_error,
    encode_score_bounded_request,
    encode_score_bounded_response,
    encode_score_request,
    encode_traces_request,
    pack_str,
    read_score_bounded_response,
    read_trace_field,
    recv_frame,
    send_frame,
)
from repro.serving.protocol import (
    WIRE_F64 as _WIRE_F64,
)
from repro.serving.protocol import (
    _HEADER,
    _U8,
    _U32,
    _U64,
)
from repro.serving.sharded import (
    ShardedSubjectiveQueryEngine,
    default_num_shards,
    partition_bounds,
)
from repro.utils.timing import now

#: Default per-worker bound on memoised slice degree vectors.
DEFAULT_WORKER_CACHE_SIZE = 4096

#: Backwards-compatible aliases for the pre-extraction private names.
_Reader = Reader
_pack_str = pack_str
_encode_error = encode_error


# --------------------------------------------------------------------------
# The worker (server side)
# --------------------------------------------------------------------------

class ShardServiceWorker:
    """One shard-service worker: owns contiguous slices, serves score RPCs.

    The worker holds a forked snapshot of the database and rebuilds its
    column arrays from it on demand (:class:`ColumnarSummaryStore` builds
    deterministically, so the arrays — and every kernel result — are
    bit-identical to the coordinator's own).  Scored slice vectors are
    memoised in a :class:`~repro.serving.cache.PartitionedLRUCache` with
    one partition per owned slice, so eviction pressure from a hot slice
    never evicts a colder slice's entries; the ``invalidate`` RPC drops
    every partition together.

    ``handle_frame`` is the transport-free dispatch (one request payload in,
    one response payload out), used directly by the in-process tests;
    :meth:`serve` wraps it in the framed socket loop.
    """

    def __init__(
        self,
        index: int,
        database: SubjectiveDatabase,
        membership: object,
        owned_slice_ids: Sequence[int],
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        cache_size: int | None = DEFAULT_WORKER_CACHE_SIZE,
    ) -> None:
        self.index = index
        self.database = database
        self.membership = membership
        self.owned_slice_ids = list(owned_slice_ids)
        self.max_frame_bytes = max_frame_bytes
        self.store = database.columnar_store()
        # Owned slice ids are a contiguous range, so ``slice_id % count``
        # (the default router's hash of the key's first element) maps each
        # owned slice onto its own partition.
        self.cache = PartitionedLRUCache(max(1, len(self.owned_slice_ids)), cache_size)
        # Worker counters live in a per-worker registry; the attributes
        # below are value-read/cell-write properties over the cells, so
        # the ``stats`` RPC dict and the registry always agree.
        self.metrics = MetricsRegistry()
        self._score_requests_cell = self.metrics.counter("score_requests")
        self._kernel_calls_cell = self.metrics.counter("kernel_calls")
        self._invalidations_cell = self.metrics.counter("invalidations")
        self._bounded_requests_cell = self.metrics.counter("bounded_requests")
        self._entities_scored_cell = self.metrics.counter(
            "entities_scored", help="Rows scored exactly on the bounded path"
        )
        self._entities_pruned_cell = self.metrics.counter(
            "entities_pruned", help="Rows answered with a bound alone"
        )

    score_requests = cell_property("_score_requests_cell")
    kernel_calls = cell_property("_kernel_calls_cell")
    invalidations = cell_property("_invalidations_cell")
    bounded_requests = cell_property("_bounded_requests_cell")
    entities_scored = cell_property("_entities_scored_cell")
    entities_pruned = cell_property("_entities_pruned_cell")

    # ------------------------------------------------------------- dispatch
    def handle_frame(self, payload: bytes) -> tuple[bytes, bool]:
        """One request payload → ``(response payload, stop serving?)``.

        Worker-side failures are transported as error responses, never
        exceptions — a bad request must not take the service down.
        """
        try:
            reader = _Reader(payload)
            opcode = reader.read_u8()
            if opcode == OP_SCORE:
                return self._handle_score(reader), False
            if opcode == OP_SCORE_BOUNDED:
                return self._handle_score_bounded(reader), False
            if opcode == OP_INVALIDATE:
                return self._handle_invalidate(reader), False
            if opcode == OP_STATS:
                return self._handle_stats(), False
            if opcode == OP_TRACES:
                return self._handle_traces(reader), False
            if opcode == OP_SHUTDOWN:
                return _U8.pack(STATUS_OK), True
            return _encode_error(f"unknown opcode {opcode}"), False
        except Exception as error:  # noqa: BLE001 - transported to the peer
            return _encode_error(f"{type(error).__name__}: {error}"), False

    def _handle_score(self, reader: _Reader) -> bytes:
        slice_id = reader.read_u32()
        attribute = reader.read_str()
        phrase = reader.read_str()
        start = reader.read_u32()
        stop = reader.read_u32()
        rows: list[int] | None = None
        if reader.read_u8():
            rows = reader.read_u32_array(reader.read_u32())
        trace = read_trace_field(reader)
        started = now()
        self.score_requests += 1
        key = (slice_id, attribute, phrase, start, stop, tuple(rows) if rows is not None else None)
        vector = self.cache.get(key)
        cached = vector is not None
        if vector is None:
            vector = self._score(attribute, phrase, start, stop, rows)
            self.cache.put(key, vector)
        if trace is not None:
            record_span(
                "worker_score",
                trace[0],
                trace[1],
                now() - started,
                worker=self.index,
                slice_id=slice_id,
                attribute=attribute,
                cached=cached,
            )
        return _U8.pack(STATUS_OK) + _U32.pack(len(vector)) + vector.astype(_WIRE_F64).tobytes()

    def _handle_score_bounded(self, reader: _Reader) -> bytes:
        slice_id = reader.read_u32()
        attribute = reader.read_str()
        phrase = reader.read_str()
        start = reader.read_u32()
        stop = reader.read_u32()
        rows: list[int] | None = None
        if reader.read_u8():
            rows = reader.read_u32_array(reader.read_u32())
        threshold = float(reader.read_f64_array(1)[0])
        trace = read_trace_field(reader)
        started = now()
        self.bounded_requests += 1
        key = (slice_id, attribute, phrase, start, stop, tuple(rows) if rows is not None else None)

        def finish(response: bytes, scored: int, pruned: int, cached: bool) -> bytes:
            if trace is not None:
                record_span(
                    "worker_score_bounded",
                    trace[0],
                    trace[1],
                    now() - started,
                    worker=self.index,
                    slice_id=slice_id,
                    attribute=attribute,
                    scored=scored,
                    pruned=pruned,
                    cached=cached,
                )
            return response

        vector = self.cache.get(key)
        if vector is not None:
            # A memoised exact vector answers any threshold without new
            # kernel work — nothing was scored or pruned by this request.
            return finish(
                encode_score_bounded_response(vector, np.ones(len(vector), dtype=bool), 0, 0),
                0,
                0,
                True,
            )
        result = self._score_bounded(attribute, phrase, start, stop, rows, threshold)
        if result is None:
            # No bound envelope for this membership/phrase: degrade to one
            # exact pass — the response is still well-formed (all exact).
            vector = self._score(attribute, phrase, start, stop, rows)
            self.cache.put(key, vector)
            self.entities_scored += len(vector)
            return finish(
                encode_score_bounded_response(
                    vector, np.ones(len(vector), dtype=bool), len(vector), 0
                ),
                len(vector),
                0,
                False,
            )
        values, exact_mask, scored, pruned = result
        self.entities_scored += scored
        self.entities_pruned += pruned
        if pruned == 0:
            # Fully exact results are interchangeable with plain ``score``
            # responses; mixed vectors must never enter the cache (a bound
            # is not a degree).
            self.cache.put(key, values)
        return finish(
            encode_score_bounded_response(values, exact_mask, scored, pruned),
            scored,
            pruned,
            False,
        )

    def _score_bounded(
        self,
        attribute: str,
        phrase: str,
        start: int,
        stop: int,
        rows: list[int] | None,
        threshold: float,
    ) -> "tuple[np.ndarray, np.ndarray, int, int] | None":
        kernel = columnar_kernel(self.membership, self.database)
        if kernel is None:
            raise ExecutionError(
                "the membership function has no usable columnar kernel in this worker"
            )
        columns = self.store.columns(attribute)
        if columns is None:
            raise ExecutionError(f"attribute {attribute!r} has no columns in worker {self.index}")
        if stop > columns.num_entities or start > stop:
            raise ExecutionError(
                f"slice [{start}, {stop}) out of range for attribute {attribute!r} "
                f"({columns.num_entities} entities in worker {self.index})"
            )
        bounds = self.store.score_bounds(attribute, start, stop)
        if bounds is None:
            return None
        if rows is not None:
            bounds = bounds.narrowed(rows)
        view = resolve_slice(columns, start, stop, rows)
        result = bounded_pair_degrees(self.membership, view, bounds, phrase, threshold)
        if result is not None and result[2]:
            self.kernel_calls += 1
        return result

    def _score(
        self, attribute: str, phrase: str, start: int, stop: int, rows: list[int] | None
    ) -> np.ndarray:
        kernel = columnar_kernel(self.membership, self.database)
        if kernel is None:
            raise ExecutionError(
                "the membership function has no usable columnar kernel in this worker"
            )
        columns = self.store.columns(attribute)
        if columns is None:
            raise ExecutionError(f"attribute {attribute!r} has no columns in worker {self.index}")
        if stop > columns.num_entities or start > stop:
            raise ExecutionError(
                f"slice [{start}, {stop}) out of range for attribute {attribute!r} "
                f"({columns.num_entities} entities in worker {self.index})"
            )
        self.kernel_calls += 1
        view = resolve_slice(columns, start, stop, rows)
        return np.asarray(kernel(view, phrase), dtype=np.float64)

    def _handle_invalidate(self, reader: _Reader) -> bytes:
        reader.read_u64()  # coordinator's version; returned version reports skew
        dropped = len(self.cache)
        self.cache.clear()
        self.invalidations += 1
        return _U8.pack(STATUS_OK) + _U64.pack(self.database.data_version) + _U32.pack(dropped)

    def _handle_stats(self) -> bytes:
        stats = {
            "worker": self.index,
            "pid": os.getpid(),
            "data_version": self.database.data_version,
            "owned_slices": self.owned_slice_ids,
            "score_requests": self.score_requests,
            "kernel_calls": self.kernel_calls,
            "invalidations": self.invalidations,
            "bounded_requests": self.bounded_requests,
            "entities_scored": self.entities_scored,
            "entities_pruned": self.entities_pruned,
            "cache_entries": len(self.cache),
            "cache_partitions": self.cache.partition_stats(),
        }
        return _U8.pack(STATUS_OK) + _pack_str(json.dumps(stats))

    def _handle_traces(self, reader: _Reader) -> bytes:
        """Serve the worker's buffered spans (``OP_TRACES``, protocol v5).

        The request carries a trace-id filter (0 = all) and a newest-N
        limit (0 = no limit); the response is a JSON array of span dicts
        from this process's global :class:`~repro.obs.TraceStore`.
        """
        trace_id = reader.read_u64()
        limit = reader.read_u32()
        payload = global_trace_store().to_json(trace_id=trace_id, limit=limit)
        return _U8.pack(STATUS_OK) + _pack_str(payload)

    # ---------------------------------------------------------- socket loop
    def serve(self, sock: socket.socket) -> None:
        """Serve framed requests on ``sock`` until shutdown or peer EOF."""
        while True:
            try:
                payload = recv_frame(sock, self.max_frame_bytes)
            except FrameTooLargeError as error:
                # The stream cannot be resynchronised after refusing a
                # frame; report why, then drop the connection.
                try:
                    send_frame(sock, _encode_error(str(error)), self.max_frame_bytes)
                except OSError:
                    pass
                return
            except (RpcError, OSError):
                return  # peer vanished mid-frame
            if payload is None:
                return  # clean EOF: the coordinator closed its end
            response, stop = self.handle_frame(payload)
            try:
                send_frame(sock, response, self.max_frame_bytes)
            except OSError:
                return
            if stop:
                return


def _worker_main(
    index: int,
    sock: socket.socket,
    close_in_child: list[socket.socket],
    database: SubjectiveDatabase,
    membership: object,
    owned_slice_ids: list[int],
    max_frame_bytes: int,
    cache_size: int | None,
) -> None:
    """Forked worker entry point: close inherited peer sockets, then serve."""
    for other in close_in_child:
        try:
            other.close()
        except OSError:
            pass
    # The fork copies the coordinator's span buffer; without this clear,
    # worker_traces() would re-serve the parent's spans as duplicates.
    global_trace_store().clear()
    worker = ShardServiceWorker(
        index=index,
        database=database,
        membership=membership,
        owned_slice_ids=owned_slice_ids,
        max_frame_bytes=max_frame_bytes,
        cache_size=cache_size,
    )
    try:
        worker.serve(sock)
    finally:
        sock.close()


# --------------------------------------------------------------------------
# The client handle (coordinator side)
# --------------------------------------------------------------------------

class ShardServiceClient:
    """The coordinator's handle to one worker: framed requests, typed reads.

    Writes and reads are decoupled so the coordinator can pipeline — write
    score requests to *every* involved worker, then collect responses —
    which is what lets the workers compute concurrently.  Transport
    failures surface as :class:`WorkerCrashedError` naming the worker.
    """

    def __init__(
        self,
        index: int,
        process: multiprocessing.process.BaseProcess,
        sock: socket.socket,
        owned_slice_ids: Sequence[int],
        max_frame_bytes: int,
        counters: dict[str, int] | None = None,
    ) -> None:
        self.index = index
        self.process = process
        self.sock = sock
        self.owned_slice_ids = list(owned_slice_ids)
        self.max_frame_bytes = max_frame_bytes
        # Per-worker transport counters; the store shares one dict per
        # worker index across respawns so the statistics survive the fleet.
        if counters is None:
            counters = {"requests": 0, "bytes_sent": 0, "bytes_received": 0}
        self.counters = counters

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.is_alive()

    def _crashed(self, detail: str) -> WorkerCrashedError:
        return WorkerCrashedError(
            f"shard worker {self.index} (pid {self.process.pid}) {detail}; "
            "the worker fleet will be respawned on the next query"
        )

    def send(self, payload: bytes) -> None:
        """Write one request frame (no response read — see :meth:`read_ok`)."""
        try:
            send_frame(self.sock, payload, self.max_frame_bytes)
        except FrameTooLargeError:
            raise
        except OSError as error:
            raise self._crashed(f"is unreachable ({error})") from error
        self.counters["requests"] += 1
        self.counters["bytes_sent"] += _HEADER.size + len(payload)

    def read_ok(self) -> _Reader:
        """Read one response frame, raising transported worker errors."""
        try:
            payload = recv_frame(self.sock, self.max_frame_bytes)
        except FrameTooLargeError:
            raise
        except (RpcError, OSError) as error:
            raise self._crashed(f"died mid-request ({error})") from error
        if payload is None:
            raise self._crashed("closed its connection with a request in flight")
        self.counters["bytes_received"] += _HEADER.size + len(payload)
        reader = _Reader(payload)
        if reader.read_u8() == STATUS_ERROR:
            raise RpcError(f"shard worker {self.index}: {reader.read_str()}")
        return reader

    def read_score_vector(self) -> np.ndarray:
        """The degree vector of one previously sent ``score`` request."""
        reader = self.read_ok()
        return reader.read_f64_array(reader.read_u32())

    def read_score_bounded(self) -> tuple[np.ndarray, np.ndarray, int, int]:
        """The ``(values, exact_mask, scored, pruned)`` of one bounded request."""
        return read_score_bounded_response(self.read_ok())

    def invalidate(self, data_version: int) -> tuple[int, int]:
        """Drop the worker's degree caches; returns (snapshot version, dropped)."""
        self.send(_U8.pack(OP_INVALIDATE) + _U64.pack(data_version))
        reader = self.read_ok()
        return reader.read_u64(), reader.read_u32()

    def stats(self) -> dict:
        """The worker's counters and cache statistics (a ``stats`` RPC)."""
        self.send(_U8.pack(OP_STATS))
        return json.loads(self.read_ok().read_str())

    def traces(self, trace_id: int = 0, limit: int = 0) -> list[dict]:
        """Span records from the worker's trace store (a ``traces`` RPC)."""
        self.send(encode_traces_request(trace_id, limit))
        return json.loads(self.read_ok().read_str())

    def close(self, kill: bool = False) -> None:
        """Stop the worker: graceful ``shutdown`` RPC, or ``kill`` outright.

        Idempotent and safe on crashed workers; always reaps the process.
        """
        if not kill and self.alive:
            try:
                self.send(_U8.pack(OP_SHUTDOWN))
                self.read_ok()
            except RpcError:
                pass
        try:
            self.sock.close()
        except OSError:
            pass
        if self.alive:
            self.process.terminate()
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=5)


# --------------------------------------------------------------------------
# The coordinator store
# --------------------------------------------------------------------------

class RpcShardStore:
    """Entity-sliced degree scoring over shard-service worker processes.

    Implements the ``pair_degrees`` protocol of
    :class:`~repro.core.columnar.ColumnarSummaryStore` /
    :class:`~repro.serving.sharded.ShardedColumnarStore`, so a
    :class:`~repro.core.processor.SubjectiveQueryProcessor` routes through
    it unchanged.  The store keeps its own base columnar store for row
    lookup and scalar fallbacks; kernel work ships to the workers as
    ``(attribute, start, stop[, rows])`` slice indices — never arrays.

    Slices are assigned to workers contiguously
    (:func:`~repro.serving.sharded.partition_bounds` over the slice ids),
    so each worker owns a set of contiguous entity slices.  Workers are
    forked lazily on first use and live until the data version moves, the
    membership function changes, a worker crashes, or :meth:`close`.
    """

    def __init__(
        self,
        database: SubjectiveDatabase,
        num_workers: int | None = None,
        num_slices: int | None = None,
        base: ColumnarSummaryStore | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        worker_cache_size: int | None = DEFAULT_WORKER_CACHE_SIZE,
    ) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ExecutionError(
                "the shard-service RPC layer requires the 'fork' start method; "
                "use the in-process sharded engine on this platform"
            )
        if num_workers is None:
            num_workers = default_num_shards()
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if num_slices is None:
            num_slices = num_workers
        if num_slices < num_workers:
            raise ValueError(f"num_slices ({num_slices}) must be >= num_workers ({num_workers})")
        self.database = database
        self.num_workers = num_workers
        self.num_slices = num_slices
        self.base = base if base is not None else database.columnar_store()
        self.max_frame_bytes = max_frame_bytes
        self.worker_cache_size = worker_cache_size
        # Worker w owns the contiguous slice-id range [bounds[w], bounds[w+1]).
        self._ownership = partition_bounds(num_slices, num_workers)
        self._owner_of = [
            worker
            for worker, (start, stop) in enumerate(zip(self._ownership, self._ownership[1:]))
            for _ in range(stop - start)
        ]
        self._workers: list[ShardServiceClient] = []
        self._membership: object | None = None
        self._version = database.data_version
        self.metrics = MetricsRegistry()
        self._invalidations_cell = self.metrics.counter(
            "invalidations", help="Fleet teardowns forced by a data-version bump"
        )
        self._respawns_cell = self.metrics.counter(
            "respawns", help="Worker-fleet forks (lazy spawns and crash recoveries)"
        )
        self._fanouts_cell = self.metrics.counter(
            "fanouts", help="Sharded kernel passes (one per predicate computation)"
        )
        self._rpc_requests_cell = self.metrics.counter(
            "rpc_requests", help="Individual score requests shipped to workers"
        )
        self._entities_scored_cell = self.metrics.counter(
            "entities_scored", help="Requested rows scored exactly (bounded path)"
        )
        self._entities_pruned_cell = self.metrics.counter(
            "entities_pruned", help="Requested rows dismissed on a bound alone"
        )
        # Per-worker transport counters, shared with the client handles and
        # kept across respawns so partition_stats() describes the lifetime.
        self._worker_counters = [
            {"requests": 0, "bytes_sent": 0, "bytes_received": 0, "respawns": 0}
            for _ in range(num_workers)
        ]

    invalidations = cell_property("_invalidations_cell")
    respawns = cell_property("_respawns_cell")
    fanouts = cell_property("_fanouts_cell")
    rpc_requests = cell_property("_rpc_requests_cell")
    entities_scored = cell_property("_entities_scored_cell")
    entities_pruned = cell_property("_entities_pruned_cell")

    # ------------------------------------------------------------ lifecycle
    @property
    def data_version(self) -> int:
        """The database version the current worker fleet was forked against."""
        return self._version

    def _check_version(self) -> None:
        if self._version != self.database.data_version:
            self.invalidate()

    def invalidate(self) -> None:
        """Drop base columns and tear the (stale-snapshot) worker fleet down.

        Forked workers pin the database as of fork time, so a
        ``data_version`` bump makes every worker stale at once; the next
        query re-forks the fleet over the current data.  Base columns, the
        fleet, and the serving engine's caches all fall in the same
        invalidation unit.
        """
        self.base.invalidate()
        self._shutdown_workers()
        self._version = self.database.data_version
        self.invalidations += 1

    def invalidate_worker_caches(self) -> int:
        """Drop every live worker's degree caches; returns entries dropped.

        The ``invalidate`` RPC: cache recycling *within* a snapshot's
        lifetime (the data did not change, so the workers stay up).  Each
        worker reports its snapshot version; skew tears the fleet down —
        the snapshot can only be refreshed by re-forking.
        """
        dropped_total = 0
        stale = False
        for client in self._workers:
            version, dropped = client.invalidate(self.database.data_version)
            dropped_total += dropped
            stale = stale or version != self.database.data_version
        if stale:  # pragma: no cover - defensive; respawn handles skew
            self._shutdown_workers()
        return dropped_total

    def close(self) -> None:
        """Shut the worker fleet down gracefully (idempotent)."""
        self._shutdown_workers()

    def _shutdown_workers(self, kill: bool = False) -> None:
        workers, self._workers = self._workers, []
        for client in workers:
            client.close(kill=kill)

    # --------------------------------------------------------------- spawn
    def _ensure_workers(self, membership: object) -> None:
        """Fork the worker fleet if absent, stale, or bound to another membership."""
        if self._workers and self._membership is not membership:
            self._shutdown_workers()
        if self._workers and not all(client.alive for client in self._workers):
            self._shutdown_workers(kill=True)
        if self._workers:
            return
        context = multiprocessing.get_context("fork")
        clients: list[ShardServiceClient] = []
        for index in range(self.num_workers):
            owned = list(range(self._ownership[index], self._ownership[index + 1]))
            parent_sock, child_sock = socket.socketpair()
            # The child inherits every previously spawned worker's parent-
            # side socket (plus its own); it must close those copies or a
            # sibling crash would never surface as EOF to the coordinator.
            close_in_child = [client.sock for client in clients] + [parent_sock]
            process = context.Process(
                target=_worker_main,
                args=(
                    index,
                    child_sock,
                    close_in_child,
                    self.database,
                    membership,
                    owned,
                    self.max_frame_bytes,
                    self.worker_cache_size,
                ),
                daemon=True,
                name=f"repro-shard-service-{index}",
            )
            process.start()
            child_sock.close()
            self._worker_counters[index]["respawns"] += 1
            clients.append(
                ShardServiceClient(
                    index,
                    process,
                    parent_sock,
                    owned,
                    self.max_frame_bytes,
                    counters=self._worker_counters[index],
                )
            )
        self._workers = clients
        self._membership = membership
        self.respawns += 1

    @property
    def workers(self) -> list[ShardServiceClient]:
        """The live worker handles (empty before the first fan-out)."""
        return self._workers

    # ----------------------------------------------------------- partitions
    def columns(self, attribute: str) -> AttributeColumns | None:
        """The unpartitioned column arrays (delegates to the base store)."""
        self._check_version()
        return self.base.columns(attribute)

    # -------------------------------------------------------------- scoring
    def pair_degrees(
        self,
        membership: object,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
    ) -> list[float] | None:
        """RPC analog of :meth:`ShardedColumnarStore.pair_degrees`.

        Resident entities are grouped into per-slice score requests (the
        in-process store's exact plan), the requests are written to every
        involved worker *before* any response is read — so workers compute
        their slices concurrently — and the returned vectors are scattered
        into one store-wide degree array.  Entities absent from the columns
        fall back to per-entity scalar scoring on the coordinator, and
        ``None`` is returned under the same conditions as the base store,
        so callers' fallback behaviour is unchanged.

        A worker crash surfaces as :class:`WorkerCrashedError`; the fleet
        is torn down so the next query re-forks it cleanly.
        """
        self._check_version()
        kernel = columnar_kernel(membership, self.database)
        if kernel is None:
            return None
        columns = self.base.columns(attribute)
        if columns is None:
            return None
        rows = [columns.row_of.get(entity_id) for entity_id in entity_ids]
        resident = sorted({row for row in rows if row is not None})
        batch: np.ndarray | None = None
        if resident:
            self._ensure_workers(membership)
            bounds = partition_bounds(columns.num_entities, self.num_slices)
            requests = plan_slice_requests(bounds, resident)
            batch = np.empty(columns.num_entities)
            per_worker: dict[int, list[tuple]] = {}
            for request in requests:
                per_worker.setdefault(self._owner_of[request[0]], []).append(request)
            try:
                rounds = max(len(group) for group in per_worker.values())
                with span("transport", layer="rpc", requests=len(requests)):
                    trace = current_wire_trace()
                    for round_index in range(rounds):
                        self._fanout_round(
                            per_worker, round_index, attribute, phrase, batch, trace
                        )
            except Exception:
                # Any failure mid-fan-out — a crash, a transported worker
                # error, an oversized frame — can leave unread responses
                # queued in healthy workers' sockets, desynchronising the
                # framed streams; kill the whole fleet so the next query
                # starts from a clean fork instead of consuming stale frames.
                self._shutdown_workers(kill=True)
                raise
            self.fanouts += 1
            self.rpc_requests += len(requests)
        return gather_degrees(
            batch,
            rows,
            entity_ids,
            scalar_fallback_scorer(membership, self.database, attribute, phrase, columns),
        )

    def pair_degrees_bounded(
        self,
        membership: object,
        entity_ids: Sequence[Hashable],
        attribute: str,
        phrase: str,
        threshold: float,
    ) -> "tuple[np.ndarray, np.ndarray, int, int] | None":
        """Threshold-pruned RPC scoring: workers skip rows their bounds cap.

        The bounded twin of :meth:`pair_degrees`: the same per-slice request
        plan is fanned out as ``score bounded`` frames carrying the
        coordinator's prune threshold, and each worker evaluates its own
        slice's bound envelope first — rows (or whole slices) whose degree
        upper bound is below the threshold never reach the exact kernel.
        Responses scatter values plus a per-row exactness mask; the
        returned counters cover the *requested* entities, mirroring the
        base store.  ``None`` under the base store's fallback conditions
        (no kernel, no bound envelope, absent entities), in which case the
        caller takes the full exact path.
        """
        self._check_version()
        kernel = columnar_kernel(membership, self.database)
        if kernel is None or getattr(membership, "degree_bounds", None) is None:
            return None
        columns = self.base.columns(attribute)
        if columns is None:
            return None
        rows = [columns.row_of.get(entity_id) for entity_id in entity_ids]
        if any(row is None for row in rows):
            return None
        resident = sorted(set(rows))
        self._ensure_workers(membership)
        bounds = partition_bounds(columns.num_entities, self.num_slices)
        requests = plan_slice_requests(bounds, resident)
        values = np.empty(columns.num_entities)
        exact = np.zeros(columns.num_entities, dtype=bool)
        per_worker: dict[int, list[tuple]] = {}
        for request in requests:
            per_worker.setdefault(self._owner_of[request[0]], []).append(request)
        try:
            rounds = max(len(group) for group in per_worker.values())
            with span("transport", layer="rpc", requests=len(requests), bounded=True):
                trace = current_wire_trace()
                for round_index in range(rounds):
                    for worker_index, group in per_worker.items():
                        if round_index < len(group):
                            slice_id, start, stop, slice_rows, _ = group[round_index]
                            self._workers[worker_index].send(
                                encode_score_bounded_request(
                                    slice_id,
                                    attribute,
                                    phrase,
                                    start,
                                    stop,
                                    slice_rows,
                                    threshold,
                                    trace=trace,
                                )
                            )
                    for worker_index, group in per_worker.items():
                        if round_index < len(group):
                            scatter = group[round_index][4]
                            vector, mask, _scored, _pruned = self._workers[
                                worker_index
                            ].read_score_bounded()
                            values[scatter] = vector
                            exact[scatter] = mask
        except Exception:
            # Same hygiene as pair_degrees: a mid-fan-out failure can leave
            # unread responses queued; kill the fleet so the next query
            # starts from a clean fork.
            self._shutdown_workers(kill=True)
            raise
        self.fanouts += 1
        self.rpc_requests += len(requests)
        index = np.fromiter(rows, dtype=np.intp, count=len(rows))
        requested_exact = exact[index]
        scored = int(np.count_nonzero(requested_exact))
        pruned = int(index.size - scored)
        self.entities_scored += scored
        self.entities_pruned += pruned
        return values[index], requested_exact, scored, pruned

    def _fanout_round(
        self,
        per_worker: dict[int, list[tuple]],
        round_index: int,
        attribute: str,
        phrase: str,
        batch: np.ndarray,
        trace: tuple[int, int] | None = None,
    ) -> None:
        """One fan-out round: write at most one request per worker, then read.

        All writes of the round complete before the first read, so every
        involved worker computes concurrently; bounding each round to one
        in-flight request per worker means a blocked peer is always
        draining its socket — the buffers can never fill in both directions
        at once, so the fan-out cannot deadlock at any frame size.
        """
        for worker_index, group in per_worker.items():
            if round_index < len(group):
                slice_id, start, stop, rows, _ = group[round_index]
                payload = encode_score_request(
                    slice_id, attribute, phrase, start, stop, rows, trace=trace
                )
                self._workers[worker_index].send(payload)
        for worker_index, group in per_worker.items():
            if round_index < len(group):
                scatter = group[round_index][4]
                batch[scatter] = self._workers[worker_index].read_score_vector()

    # ------------------------------------------------------------ statistics
    def worker_stats(self) -> list[dict]:
        """One ``stats()`` RPC result per live worker (empty when not spawned).

        Dead or unreachable workers are skipped rather than raised — the
        statistics surface must stay usable while a crash is being handled.
        """
        stats: list[dict] = []
        for client in self._workers:
            if not client.alive:
                continue
            try:
                stats.append(client.stats())
            except RpcError:
                continue
        return stats

    def worker_traces(self, trace_id: int = 0, limit: int = 0) -> list[dict]:
        """Span records collected from every live worker's trace store.

        Workers record spans whenever a score frame carries a trace field,
        so the coordinator can stitch a cross-process span tree by querying
        the fleet after a traced query.  Dead or unreachable workers are
        skipped, mirroring :meth:`worker_stats`.
        """
        spans: list[dict] = []
        for client in self._workers:
            if not client.alive:
                continue
            try:
                spans.extend(client.traces(trace_id=trace_id, limit=limit))
            except RpcError:
                continue
        return spans

    def partition_stats(self) -> list[dict[str, object]]:
        """One dict per worker: transport counters plus worker cache activity.

        Transport counters (``requests``, ``bytes_sent``, ``bytes_received``,
        ``respawns``) are tracked coordinator-side and survive fleet
        respawns.  For live, reachable workers the dict additionally merges
        the worker's own ``stats()`` RPC result (cache entries and
        per-partition hit counts as ``cache_hits``); dead workers report
        transport counters only — the statistics surface must stay usable
        while a crash is being handled.
        """
        by_index = {client.index: client for client in self._workers}
        stats: list[dict[str, object]] = []
        for index, counters in enumerate(self._worker_counters):
            entry: dict[str, object] = {"worker": index, **counters}
            client = by_index.get(index)
            entry["alive"] = bool(client is not None and client.alive)
            if client is not None and client.alive:
                try:
                    remote = client.stats()
                except RpcError:
                    remote = None
                if remote is not None:
                    entry["cache_entries"] = remote.get("cache_entries")
                    entry["cache_hits"] = sum(
                        int(partition.get("hits", 0))
                        for partition in remote.get("cache_partitions", [])
                    )
                    entry["owned_slices"] = remote.get("owned_slices")
                    entry["entities_scored"] = remote.get("entities_scored", 0)
                    entry["entities_pruned"] = remote.get("entities_pruned", 0)
            stats.append(entry)
        return stats

    def transport_counters(self) -> dict[str, int]:
        """Aggregate RPC transport counters (surfaced in ``run_batch`` stats)."""
        return {
            "rpc_requests": sum(c["requests"] for c in self._worker_counters),
            "rpc_bytes_sent": sum(c["bytes_sent"] for c in self._worker_counters),
            "rpc_bytes_received": sum(c["bytes_received"] for c in self._worker_counters),
            "worker_respawns": sum(c["respawns"] for c in self._worker_counters),
        }

    def stats_snapshot(self) -> dict[str, object]:
        """Coordinator counters plus the wrapped base store's snapshot."""
        return {
            "num_workers": self.num_workers,
            "num_slices": self.num_slices,
            "backend": "rpc",
            "data_version": self._version,
            "live_workers": sum(1 for client in self._workers if client.alive),
            "invalidations": self.invalidations,
            "respawns": self.respawns,
            "fanouts": self.fanouts,
            "rpc_requests": self.rpc_requests,
            "entities_scored": self.entities_scored,
            "entities_pruned": self.entities_pruned,
            "base": self.base.stats_snapshot(),
        }


# --------------------------------------------------------------------------
# The coordinator engine
# --------------------------------------------------------------------------

class CoordinatorQueryEngine(ShardedSubjectiveQueryEngine):
    """Serving front end over shard-service workers; results exactly equal
    to the unsharded engine.

    The engine plans once through the inherited plan/candidate caches, and
    every uncached membership degree is computed by the worker fleet
    through the installed :class:`RpcShardStore`.  Ranking reuses the
    sharded engine verbatim: WHERE-tree scoring over degree vectors via
    the fuzzy logic's array connectives, per-shard top-k heaps merged
    under the exact ``(-score, str(entity_id), position)`` stable order.
    Only the degree transport differs — which is precisely why the
    differential suite can pin rankings, scores and degrees bit-identical
    to :class:`~repro.serving.engine.SubjectiveQueryEngine` across worker
    counts.

    Parameters mirror the sharded engine, with ``num_workers`` (worker
    processes; default one per core) replacing the backend choice and
    ``num_shards`` naming the slice count (default ``num_workers``; must
    be at least ``num_workers``).  ``max_frame_bytes`` bounds RPC frame
    sizes in both directions; ``worker_cache_size`` bounds each worker's
    memoised slice vectors.  Call :meth:`close` (or use the engine as a
    context manager) to shut the fleet down.
    """

    engine_backends = ("rpc",)

    def __init__(
        self,
        database: SubjectiveDatabase | None = None,
        processor: SubjectiveQueryProcessor | None = None,
        num_workers: int | None = None,
        num_shards: int | None = None,
        plan_cache_size: int | None = 256,
        membership_cache_size: int | None = 200_000,
        candidate_cache_size: int | None = 64,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        worker_cache_size: int | None = DEFAULT_WORKER_CACHE_SIZE,
    ) -> None:
        if num_workers is None:
            num_workers = default_num_shards()
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers
        self.max_frame_bytes = max_frame_bytes
        self.worker_cache_size = worker_cache_size
        super().__init__(
            database=database,
            processor=processor,
            num_shards=num_shards if num_shards is not None else num_workers,
            backend="rpc",
            max_workers=num_workers,
            plan_cache_size=plan_cache_size,
            membership_cache_size=membership_cache_size,
            candidate_cache_size=candidate_cache_size,
        )

    def _build_sharded_store(
        self, base: ColumnarSummaryStore | None, max_workers: int | None
    ) -> RpcShardStore:
        """Install an :class:`RpcShardStore` as the processor's columnar store."""
        return RpcShardStore(
            self.database,
            num_workers=max_workers,
            num_slices=self.num_shards,
            base=base,
            max_frame_bytes=self.max_frame_bytes,
            worker_cache_size=self.worker_cache_size,
        )

    def stats_snapshot(self) -> dict[str, object]:
        """Serving counters plus coordinator fan-out and live-worker stats."""
        snapshot = super().stats_snapshot()
        snapshot["num_workers"] = self.num_workers
        if self.sharded_store is not None:
            snapshot["workers"] = self.sharded_store.worker_stats()
        return snapshot
