"""The async serving gateway: many concurrent clients, one coordinator.

Every layer below this one scales *execution* — columnar kernels, entity
shards, RPC workers, TCP cluster nodes — but none of them is a front door:
nothing accepts many concurrent client connections and turns their
overlapping traffic into the batched, cache-friendly query stream those
layers were built for.  :class:`ServingGateway` is that front door, an
``asyncio`` server speaking the frame codec of
:mod:`repro.serving.protocol` over asyncio streams:

* **request coalescing** — identical in-flight requests (keyed on
  :func:`repro.serving.plans.normalize_sql`, the exact key the plan cache
  uses) collapse into one execution shared by every waiter, so a popular
  query arriving from a hundred clients costs one ranking pass;
* **micro-batching** — requests arriving within a small window are executed
  as one :meth:`~repro.serving.engine.SubjectiveQueryEngine.run_batch`
  call, which is what lets a cluster engine overlap their node fan-outs
  and reuse degree vectors across the batch;
* **admission control** — a per-connection in-flight cap and a global
  queue-depth bound, enforced by the pure :class:`AdmissionController`;
  a request over either bound is refused *before* any work with a typed
  :data:`~repro.serving.protocol.STATUS_OVERLOADED` frame
  (:class:`~repro.serving.protocol.GatewayOverloadedError` client-side) —
  the gateway never queues unboundedly and an *accepted* request is never
  dropped;
* **live statistics** — a ``stats`` opcode answering from the event loop
  (it stays responsive while the engine thread is saturated) with gateway
  counters, p50/p99 latency, and the engine's ``stats_snapshot()`` /
  ``partition_stats()`` refreshed opportunistically on the engine thread.

The engine itself runs on one dedicated executor thread — every engine in
the stack is single-threaded by design — so the event loop never blocks on
query execution and the engine never sees concurrent calls.  Responses are
matched to requests by an echoed ``request_id``, so clients may pipeline.

Results are byte-identical to calling the engine directly: coalescing only
shares a response all waiters would have computed, micro-batching is the
engine's own ``run_batch`` (pinned bit-identical to serial execution by
the cluster differential suite), and serialization round-trips every float
through ``repr`` (exact for Python floats).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.processor import QueryResult
from repro.obs.metrics import MetricsRegistry, cell_property
from repro.obs.trace import (
    SpanRecord,
    TraceContext,
    activate,
    current_wire_trace,
    global_trace_store,
    new_id,
    tracing_enabled,
)
from repro.serving.plans import normalize_sql
from repro.serving.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    OP_GATEWAY_STATS,
    OP_QUERY,
    OP_TRACES,
    Reader,
    RpcError,
    encode_gateway_error,
    encode_gateway_overload,
    encode_gateway_query,
    encode_gateway_response,
    encode_gateway_stats_request,
    encode_gateway_traces_request,
    frame_bytes,
    read_gateway_response,
    read_trace_field,
    recv_frame,
    send_frame,
)
from repro.utils.timing import monotonic, now

_HEADER_SIZE = 4

#: Default micro-batch accumulation window in seconds: long enough to
#: gather concurrent arrivals into one ``run_batch``, short enough to be
#: invisible next to query execution time.
DEFAULT_BATCH_WINDOW = 0.002

#: Default maximum queries folded into one ``run_batch`` call.
DEFAULT_MAX_BATCH_SIZE = 32

#: Default per-connection in-flight request cap.
DEFAULT_MAX_INFLIGHT_PER_CONNECTION = 64

#: Default global bound on admitted-but-unanswered requests.
DEFAULT_MAX_QUEUE_DEPTH = 1024

#: Latency samples kept for the p50/p99 estimates in ``stats``.
_LATENCY_WINDOW = 8192

#: Minimum seconds between engine statistics refreshes.
_SNAPSHOT_MIN_AGE = 0.2


def coalescing_key(sql: str, top_k: int | None = None) -> tuple[str, int | None]:
    """The in-flight dedup key of one query request.

    Two requests coalesce **iff** their normalized SQL
    (:func:`repro.serving.plans.normalize_sql` — whitespace and keyword
    case collapse, quoted predicates stay byte-exact) and their explicit
    ``top_k`` are identical; this is the same key family the plan cache
    uses, so coalesced requests are exactly the ones that would have
    produced identical responses anyway.
    """
    return (normalize_sql(sql), top_k)


class AdmissionController:
    """Pure admission bookkeeping: a global bound and a per-connection bound.

    Kept free of any asyncio or transport state so its invariants can be
    property-tested directly (hypothesis drives admit/release sequences in
    ``tests/test_properties.py``): the global queue depth never exceeds
    ``max_queue_depth``, no connection ever holds more than
    ``max_inflight_per_connection`` admissions, and every admission is
    accounted for until released — admission control can refuse new work
    but can never lose accepted work.
    """

    def __init__(self, max_queue_depth: int, max_inflight_per_connection: int) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be positive, got {max_queue_depth}")
        if max_inflight_per_connection < 1:
            raise ValueError(
                f"max_inflight_per_connection must be positive, "
                f"got {max_inflight_per_connection}"
            )
        self.max_queue_depth = max_queue_depth
        self.max_inflight_per_connection = max_inflight_per_connection
        self._per_connection: dict[object, int] = {}
        self._total = 0

    @property
    def queue_depth(self) -> int:
        """Admitted requests not yet released (the global queue depth)."""
        return self._total

    def inflight_of(self, connection_id: object) -> int:
        """Admitted requests of one connection not yet released."""
        return self._per_connection.get(connection_id, 0)

    def try_admit(self, connection_id: object) -> str | None:
        """Admit one request, or return the rejection reason.

        ``None`` means admitted (the caller owes exactly one
        :meth:`release`); ``"gateway"`` means the global queue depth is
        saturated, ``"connection"`` means this connection's in-flight cap
        is.  Rejection changes no state.
        """
        if self._total >= self.max_queue_depth:
            return "gateway"
        if self._per_connection.get(connection_id, 0) >= self.max_inflight_per_connection:
            return "connection"
        self._per_connection[connection_id] = self._per_connection.get(connection_id, 0) + 1
        self._total += 1
        return None

    def release(self, connection_id: object) -> None:
        """Release one previously admitted request of ``connection_id``.

        Releasing more than was admitted is a caller bug and raises —
        silent underflow would let the gateway exceed its bounds later.
        """
        count = self._per_connection.get(connection_id, 0)
        if count <= 0:
            raise ValueError(f"release without admission for connection {connection_id!r}")
        if count == 1:
            del self._per_connection[connection_id]
        else:
            self._per_connection[connection_id] = count - 1
        self._total -= 1


class GatewayCounters:
    """Aggregate gateway counters, all monotone, surfaced by ``stats``.

    Storage is registry-backed :class:`repro.obs.metrics.Counter` cells:
    attribute *reads* return plain ``int`` snapshots (``before =
    counters.requests`` must never alias a mutating cell) while attribute
    *writes* land in the registered cell, so ``as_dict()`` and the
    registry's ``snapshot()`` can never disagree.  Pass ``registry`` to
    register the cells in a shared :class:`~repro.obs.MetricsRegistry`
    (the gateway passes its own); by default the counters own a private
    one.
    """

    _CELL_NAMES = (
        "connections",
        "requests",
        "responses",
        "errors",
        "stats_requests",
        "trace_requests",
        "coalesced_hits",
        "batches",
        "batched_queries",
        "max_batch_size",
        "shared_batch_queries",
        "rejected_gateway",
        "rejected_connection",
    )

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        for name in self._CELL_NAMES:
            setattr(self, f"_{name}_cell", self.metrics.counter(name))

    connections = cell_property("_connections_cell")
    requests = cell_property("_requests_cell")
    responses = cell_property("_responses_cell")
    errors = cell_property("_errors_cell")
    stats_requests = cell_property("_stats_requests_cell")
    trace_requests = cell_property("_trace_requests_cell")
    coalesced_hits = cell_property("_coalesced_hits_cell")
    batches = cell_property("_batches_cell")
    batched_queries = cell_property("_batched_queries_cell")
    max_batch_size = cell_property("_max_batch_size_cell")
    shared_batch_queries = cell_property("_shared_batch_queries_cell")
    rejected_gateway = cell_property("_rejected_gateway_cell")
    rejected_connection = cell_property("_rejected_connection_cell")

    @property
    def rejections(self) -> int:
        """Total typed admission-control rejections."""
        return self.rejected_gateway + self.rejected_connection

    @property
    def shared_requests(self) -> int:
        """Requests served by shared work rather than a private execution.

        Coalesced waiters (they never reached the engine) plus leaders that
        executed inside a micro-batch of at least two queries (their node
        fan-outs and degree vectors were shared by ``run_batch``).
        """
        return self.coalesced_hits + self.shared_batch_queries

    def as_dict(self) -> dict[str, int]:
        """The counters plus derived totals, as one flat JSON-safe dict."""
        return {
            "connections": self.connections,
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "stats_requests": self.stats_requests,
            "trace_requests": self.trace_requests,
            "coalesced_hits": self.coalesced_hits,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "max_batch_size": self.max_batch_size,
            "shared_batch_queries": self.shared_batch_queries,
            "shared_requests": self.shared_requests,
            "rejected_gateway": self.rejected_gateway,
            "rejected_connection": self.rejected_connection,
            "rejections": self.rejections,
        }


@dataclass
class _PendingQuery:
    """One admitted query awaiting execution (the leader of its key)."""

    key: tuple[str, int | None]
    sql: str
    top_k: int | None
    future: asyncio.Future = field(repr=False)
    trace: TraceContext | None = None


def serialize_result(result: QueryResult) -> dict[str, object]:
    """One :class:`~repro.core.processor.QueryResult` as a JSON-safe dict.

    Scores and degrees serialize through ``repr`` (what :mod:`json` uses
    for floats), which round-trips every Python float exactly — the
    differential suite compares transported responses bit-for-bit against
    direct engine execution.
    """
    return {
        "sql": result.sql,
        "entity_ids": [str(entity.entity_id) for entity in result.entities],
        "scores": [entity.score for entity in result.entities],
        "predicate_degrees": [dict(entity.predicate_degrees) for entity in result.entities],
    }


async def read_frame_async(reader: asyncio.StreamReader, max_frame_bytes: int) -> bytes | None:
    """Read one length-prefixed frame from an asyncio stream.

    The asyncio analog of :func:`repro.serving.protocol.recv_frame`: same
    framing, same refusal of oversized frames before any payload read,
    ``None`` on clean EOF between frames, :class:`RpcError` on EOF inside
    one.
    """
    try:
        header = await reader.readexactly(_HEADER_SIZE)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise RpcError("connection closed mid-frame") from error
    length = int.from_bytes(header, "big")
    if length > max_frame_bytes:
        raise RpcError(f"peer announced a {length}-byte frame (limit {max_frame_bytes} bytes)")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise RpcError("connection closed mid-frame") from error


class ServingGateway:
    """Asyncio front door over one serving engine.

    Parameters
    ----------
    engine:
        Any serving engine (:class:`~repro.serving.SubjectiveQueryEngine`
        or a subclass; a :class:`~repro.serving.ClusterQueryEngine` makes
        micro-batches overlap node fan-outs).  The gateway owns the
        engine's execution — all queries funnel through one executor
        thread — but not its lifecycle: closing the gateway does not close
        the engine.
    coalesce:
        Dedup identical in-flight requests into one shared execution
        (``False`` gives every request a private execution — the naive
        baseline the gateway benchmark measures against).
    batch_window:
        Seconds to accumulate arrivals before executing them as one
        ``run_batch`` (0 executes each flush immediately; arrivals during
        an ongoing execution still accumulate into the next batch).
    max_batch_size:
        Maximum queries folded into one ``run_batch`` call (1 disables
        micro-batching).
    max_inflight_per_connection / max_queue_depth:
        The admission-control bounds (see :class:`AdmissionController`).
    max_frame_bytes:
        Frame-size ceiling, both directions.
    """

    def __init__(
        self,
        engine,
        coalesce: bool = True,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_inflight_per_connection: int = DEFAULT_MAX_INFLIGHT_PER_CONNECTION,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be non-negative, got {batch_window}")
        self.engine = engine
        self.coalesce = coalesce
        self.batch_window = batch_window
        self.max_batch_size = max_batch_size
        self.max_frame_bytes = max_frame_bytes
        self.admission = AdmissionController(max_queue_depth, max_inflight_per_connection)
        self.metrics = MetricsRegistry()
        self.counters = GatewayCounters(registry=self.metrics)
        self.latency_histogram = self.metrics.histogram(
            "request_latency_seconds", help="Per-request gateway latency"
        )
        self.metrics.func_gauge(
            "queue_depth",
            lambda: self.admission.queue_depth,
            help="Admitted requests not yet released",
        )
        #: One thread: the engine is single-threaded by design, and running
        #: it off the event loop is what keeps ``stats`` responsive while a
        #: batch executes.
        self.engine_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-gateway-engine"
        )
        self._inflight: dict[tuple[str, int | None], asyncio.Future] = {}
        self._backlog: deque[_PendingQuery] = deque()
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._connection_ids = itertools.count(1)
        self._server: asyncio.AbstractServer | None = None
        self._connection_tasks: set[asyncio.Task] = set()
        self._batch_task: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._closed: asyncio.Event | None = None
        self._engine_busy = False
        self._refreshing = False
        self._engine_snapshot: dict[str, object] | None = None
        self._snapshot_time = 0.0

    # ------------------------------------------------------------- lifecycle
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RpcError("gateway is already serving")
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        self._batch_task = loop.create_task(self._batch_loop())
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound listener address."""
        if self._server is None:
            raise RpcError("gateway is not serving; call start() first")
        return self._server.sockets[0].getsockname()[:2]

    async def wait_closed(self) -> None:
        """Block until :meth:`stop` completes (for thread-hosted loops)."""
        if self._closed is None:
            raise RpcError("gateway is not serving; call start() first")
        await self._closed.wait()

    async def stop(self) -> None:
        """Stop serving: close the listener, drain nothing, fail the backlog.

        Idempotent.  Outstanding admitted requests fail with a transported
        shutdown error rather than hanging; the engine executor is shut
        down without waiting for queued work (the failing futures are the
        source of truth).
        """
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        if self._batch_task is not None:
            self._batch_task.cancel()
            try:
                await self._batch_task
            except asyncio.CancelledError:
                pass
            self._batch_task = None
        shutdown = RpcError("gateway shut down before the request completed")
        for item in self._backlog:
            if not item.future.done():
                item.future.set_exception(shutdown)
        self._backlog.clear()
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(shutdown)
        self._inflight.clear()
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*list(self._connection_tasks), return_exceptions=True)
        self._connection_tasks.clear()
        self.engine_executor.shutdown(wait=False)
        if self._closed is not None:
            self._closed.set()

    # ------------------------------------------------------------ connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: read frames, spawn per-request tasks.

        Requests are served concurrently (a pipelined connection's cheap
        stats probe must not wait behind its queued queries), responses are
        serialized through a per-connection write lock, and the admission
        ledger is balanced in every exit path.
        """
        self.counters.connections += 1
        connection_id = next(self._connection_ids)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()
        this_task = asyncio.current_task()
        if this_task is not None:
            self._connection_tasks.add(this_task)
        try:
            while True:
                payload = await read_frame_async(reader, self.max_frame_bytes)
                if payload is None:
                    break
                task = loop.create_task(
                    self._serve_request(payload, connection_id, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (RpcError, OSError, ConnectionError):
            pass
        finally:
            if this_task is not None:
                self._connection_tasks.discard(this_task)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _write_frame(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, payload: bytes
    ) -> None:
        """Write one response frame under the connection's write lock."""
        async with lock:
            writer.write(frame_bytes(payload, self.max_frame_bytes))
            try:
                await writer.drain()
            except (OSError, ConnectionError):
                pass  # client vanished; its admission slot is still released

    async def _serve_request(
        self,
        payload: bytes,
        connection_id: int,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """Dispatch one request frame and write its response."""
        try:
            reader = Reader(payload)
            opcode = reader.read_u8()
            request_id = reader.read_u32()
        except RpcError:
            self.counters.errors += 1
            await self._write_frame(
                writer, lock, encode_gateway_error(0, "malformed request frame")
            )
            return
        if opcode == OP_GATEWAY_STATS:
            self.counters.stats_requests += 1
            body = json.dumps(await self._stats_payload())
            await self._write_frame(writer, lock, encode_gateway_response(request_id, body))
            return
        if opcode == OP_TRACES:
            self.counters.trace_requests += 1
            try:
                trace_id = reader.read_u64()
                limit = reader.read_u32()
            except RpcError as error:
                self.counters.errors += 1
                await self._write_frame(
                    writer,
                    lock,
                    encode_gateway_error(request_id, f"malformed traces frame ({error})"),
                )
                return
            body = json.dumps(await self._traces_payload(trace_id, limit))
            await self._write_frame(writer, lock, encode_gateway_response(request_id, body))
            return
        if opcode != OP_QUERY:
            self.counters.errors += 1
            await self._write_frame(
                writer, lock, encode_gateway_error(request_id, f"unknown opcode {opcode}")
            )
            return
        try:
            sql = reader.read_str()
            top_k = reader.read_u32() if reader.read_u8() else None
            wire = read_trace_field(reader)
        except RpcError as error:
            self.counters.errors += 1
            await self._write_frame(
                writer, lock, encode_gateway_error(request_id, f"malformed query frame ({error})")
            )
            return
        self.counters.requests += 1
        reason = self.admission.try_admit(connection_id)
        if reason is not None:
            if reason == "gateway":
                self.counters.rejected_gateway += 1
                message = (
                    f"gateway overloaded: global queue depth "
                    f"{self.admission.max_queue_depth} saturated"
                )
            else:
                self.counters.rejected_connection += 1
                message = (
                    f"connection overloaded: in-flight cap "
                    f"{self.admission.max_inflight_per_connection} reached"
                )
            await self._write_frame(writer, lock, encode_gateway_overload(request_id, message))
            return
        trace_ctx: TraceContext | None = None
        if tracing_enabled():
            # The request's root span: continue a trace the client stamped
            # on the frame, or mint a fresh one at the front door.
            if wire is not None:
                trace_ctx = TraceContext(trace_id=wire[0], span_id=new_id(), parent_id=wire[1])
            else:
                trace_ctx = TraceContext.new_root()
        started = now()
        try:
            try:
                body = await self._submit(sql, top_k, trace_ctx)
            finally:
                # The admission slot guards queued *work*, which ends when
                # _submit returns or fails — release before the response
                # write, otherwise a client that already received its
                # response could still observe itself occupying the queue.
                self.admission.release(connection_id)
        except Exception as error:  # noqa: BLE001 - transported to the client
            self.counters.errors += 1
            await self._write_frame(
                writer,
                lock,
                encode_gateway_error(request_id, f"{type(error).__name__}: {error}"),
            )
        else:
            self.counters.responses += 1
            elapsed = now() - started
            self._latencies.append(elapsed)
            self.latency_histogram.observe(elapsed)
            if trace_ctx is not None:
                # Recorded directly (not via record_span) so the span id is
                # exactly the one batch-execution spans parented onto.
                global_trace_store().record(
                    SpanRecord(
                        name="gateway_request",
                        trace_id=trace_ctx.trace_id,
                        span_id=trace_ctx.span_id,
                        parent_id=trace_ctx.parent_id,
                        start=started,
                        duration=elapsed,
                        attrs={"sql": sql},
                    )
                )
            await self._write_frame(writer, lock, encode_gateway_response(request_id, body))

    # ---------------------------------------------------- coalescing + batching
    async def _submit(
        self, sql: str, top_k: int | None, trace: TraceContext | None = None
    ) -> str:
        """Resolve one admitted query to its serialized response body.

        The first request of a key becomes the leader: it enters the
        backlog and its future resolves when a micro-batch executes it.
        While that future is unresolved, every further request of the same
        key awaits it instead of entering the backlog — one execution,
        many responses.
        """
        loop = asyncio.get_running_loop()
        if self.coalesce:
            key = coalescing_key(sql, top_k)
            shared = self._inflight.get(key)
            if shared is not None:
                self.counters.coalesced_hits += 1
                return await asyncio.shield(shared)
            future = loop.create_future()
            self._inflight[key] = future
        else:
            key = (object(), None)  # unique, never matched
            future = loop.create_future()
        self._backlog.append(
            _PendingQuery(key=key, sql=sql, top_k=top_k, future=future, trace=trace)
        )
        if self._wake is not None:
            self._wake.set()
        return await asyncio.shield(future)

    async def _batch_loop(self) -> None:
        """Accumulate backlog into micro-batches and run them on the engine.

        One flush takes up to ``max_batch_size`` queries after waiting
        ``batch_window`` from the first arrival; while the engine thread
        executes a flush, new arrivals keep accumulating, so under load the
        window widens itself to the engine's pace (natural adaptive
        batching) without any extra latency when idle.
        """
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            if not self._backlog:
                continue
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            items = [
                self._backlog.popleft()
                for _ in range(min(self.max_batch_size, len(self._backlog)))
            ]
            if self._backlog:
                self._wake.set()
            if not items:
                continue
            self._engine_busy = True
            try:
                outcomes = await asyncio.get_running_loop().run_in_executor(
                    self.engine_executor, self._execute_batch, items
                )
            except Exception as error:  # noqa: BLE001 - executor infrastructure failure
                outcomes = [error] * len(items)
            finally:
                self._engine_busy = False
            self.counters.batches += 1
            self.counters.batched_queries += len(items)
            self.counters.max_batch_size = max(self.counters.max_batch_size, len(items))
            if len(items) >= 2:
                self.counters.shared_batch_queries += len(items)
            for item, outcome in zip(items, outcomes):
                if self.coalesce:
                    self._inflight.pop(item.key, None)
                if item.future.done():
                    continue
                if isinstance(outcome, Exception):
                    item.future.set_exception(outcome)
                else:
                    item.future.set_result(outcome)

    def _execute_batch(self, items: Sequence[_PendingQuery]) -> list[object]:
        """Engine-thread execution of one flush; per-item outcomes, no raise.

        Items sharing a ``top_k`` execute as one ``run_batch`` call (the
        micro-batch proper); a failure inside a group falls back to
        per-query execution so one malformed query cannot poison its
        batchmates.  Returns one serialized-JSON body or one exception per
        item, in item order.
        """
        outcomes: list[object] = [None] * len(items)
        groups: dict[int | None, list[int]] = {}
        for index, item in enumerate(items):
            groups.setdefault(item.top_k, []).append(index)
        for top_k, indexes in groups.items():
            ran_group = False
            if len(indexes) > 1:
                # One run_batch shares fan-outs across the group; its spans
                # parent onto the first traced item's request context.
                group_trace = next(
                    (items[index].trace for index in indexes if items[index].trace is not None),
                    None,
                )
                scope = activate(group_trace) if group_trace is not None else nullcontext()
                try:
                    with scope:
                        batch = self.engine.run_batch(
                            [items[index].sql for index in indexes], top_k=top_k
                        )
                except Exception:  # noqa: BLE001 - isolate the failing query below
                    ran_group = False
                else:
                    for index, result in zip(indexes, batch.results):
                        outcomes[index] = json.dumps(serialize_result(result))
                    ran_group = True
            if not ran_group:
                for index in indexes:
                    item = items[index]
                    scope = activate(item.trace) if item.trace is not None else nullcontext()
                    try:
                        with scope:
                            result = self.engine.execute(item.sql, top_k=top_k)
                    except Exception as error:  # noqa: BLE001 - transported per item
                        outcomes[index] = error
                    else:
                        outcomes[index] = json.dumps(serialize_result(result))
        self._maybe_refresh_snapshot()
        return outcomes

    # ------------------------------------------------------------- statistics
    def _maybe_refresh_snapshot(self) -> None:
        """Refresh the cached engine statistics (engine thread only)."""
        if monotonic() - self._snapshot_time < _SNAPSHOT_MIN_AGE:
            return
        self._refresh_snapshot()

    def _refresh_snapshot(self) -> None:
        """Collect ``stats_snapshot()`` and ``partition_stats()`` (engine thread)."""
        snapshot: dict[str, object] = {"stats": self.engine.stats_snapshot()}
        partition_stats = getattr(self.engine, "partition_stats", None)
        if partition_stats is not None:
            snapshot["partitions"] = partition_stats()
        self._engine_snapshot = snapshot
        self._snapshot_time = monotonic()

    def _latency_percentiles(self) -> dict[str, float]:
        """p50/p99 over the recent latency window, in milliseconds."""
        if not self._latencies:
            return {"latency_p50_ms": 0.0, "latency_p99_ms": 0.0}
        ordered = sorted(self._latencies)
        p50 = ordered[(len(ordered) - 1) // 2]
        p99 = ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)]
        return {
            "latency_p50_ms": round(p50 * 1000, 3),
            "latency_p99_ms": round(p99 * 1000, 3),
        }

    async def _stats_payload(self) -> dict[str, object]:
        """The ``stats`` response body: gateway counters + engine statistics.

        Answers from the event loop: when the engine thread is idle the
        engine snapshot is refreshed first (live ``partition_stats()``);
        when it is busy executing a batch, the most recent snapshot is
        served instead — the stats opcode must stay responsive under
        exactly the overload conditions it exists to observe.  A snapshot
        served while the engine was busy carries ``"stale": true`` plus
        its age in seconds, so an operator reading stats under saturation
        knows the engine section describes a recent past, not the present.
        """
        busy = self._engine_busy or self._refreshing
        if not busy:
            self._refreshing = True
            try:
                await asyncio.get_running_loop().run_in_executor(
                    self.engine_executor, self._maybe_refresh_snapshot
                )
            finally:
                self._refreshing = False
        gateway: dict[str, object] = dict(self.counters.as_dict())
        gateway["queue_depth"] = self.admission.queue_depth
        gateway["max_queue_depth"] = self.admission.max_queue_depth
        gateway["max_inflight_per_connection"] = self.admission.max_inflight_per_connection
        gateway["inflight_keys"] = len(self._inflight)
        gateway["backlog"] = len(self._backlog)
        gateway.update(self._latency_percentiles())
        engine: dict[str, object] | None = self._engine_snapshot
        if engine is not None:
            engine = dict(engine)
            engine["stale"] = busy
            engine["snapshot_age_seconds"] = round(max(0.0, monotonic() - self._snapshot_time), 6)
        return {"gateway": gateway, "engine": engine}

    async def _traces_payload(self, trace_id: int = 0, limit: int = 0) -> list[dict]:
        """The ``traces`` response body: local spans plus remote fleet spans.

        Coordinator-side spans come straight from the process-global
        :class:`~repro.obs.trace.TraceStore`; when the engine exposes a
        remote collector (``node_traces`` on the cluster store,
        ``worker_traces`` on the RPC store) and the engine thread is idle,
        the fleet's spans are fetched through the engine executor and
        appended — one flat list covering the whole distributed query.
        """
        records = [record.as_dict() for record in global_trace_store().spans(trace_id, limit)]
        store = getattr(self.engine, "sharded_store", None)
        collector = getattr(store, "node_traces", None) or getattr(store, "worker_traces", None)
        if collector is not None and not self._engine_busy:
            try:
                remote = await asyncio.get_running_loop().run_in_executor(
                    self.engine_executor, lambda: collector(trace_id, limit)
                )
            except Exception:  # noqa: BLE001 - remote trace stores are best-effort
                remote = []
            records.extend(remote)
        return records

    def stats_snapshot(self) -> dict[str, object]:
        """Gateway counters as one dict (in-process convenience, no RPC)."""
        snapshot: dict[str, object] = dict(self.counters.as_dict())
        snapshot["queue_depth"] = self.admission.queue_depth
        snapshot.update(self._latency_percentiles())
        return snapshot


# --------------------------------------------------------------------------
# Clients
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class GatewayReply:
    """One decoded gateway query response."""

    sql: str
    entity_ids: list[str]
    scores: list[float]
    predicate_degrees: list[dict[str, float]]

    @classmethod
    def from_json(cls, body: str) -> "GatewayReply":
        """Decode one response body produced by :func:`serialize_result`."""
        decoded = json.loads(body)
        return cls(
            sql=decoded["sql"],
            entity_ids=list(decoded["entity_ids"]),
            scores=list(decoded["scores"]),
            predicate_degrees=list(decoded["predicate_degrees"]),
        )


class AsyncGatewayClient:
    """A pipelining asyncio gateway client.

    Every request carries a fresh id and registers a future; one reader
    task resolves futures as response frames arrive, in whatever order the
    gateway finishes them.  ``query`` calls may therefore overlap freely —
    ``asyncio.gather`` over many ``query`` coroutines pipelines them on
    the one connection.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncGatewayClient":
        """Open a connection to a gateway at ``(host, port)``."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    async def _read_loop(self) -> None:
        """Resolve pending futures from arriving response frames."""
        failure: Exception | None = None
        try:
            while True:
                payload = await read_frame_async(self._reader, self.max_frame_bytes)
                if payload is None:
                    failure = RpcError("gateway closed the connection")
                    break
                try:
                    request_id, body = read_gateway_response(payload)
                except RpcError as error:
                    request_id = getattr(error, "request_id", None)
                    future = self._pending.pop(request_id, None)
                    if future is not None and not future.done():
                        future.set_exception(error)
                    continue
                future = self._pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result(body)
        except (RpcError, OSError, ConnectionError) as error:
            failure = error
        except asyncio.CancelledError:
            failure = RpcError("client closed")
        for future in self._pending.values():
            if not future.done():
                future.set_exception(failure or RpcError("connection lost"))
        self._pending.clear()

    async def _request(self, payload: bytes, request_id: int) -> str:
        """Send one framed request and await its matching response body."""
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(frame_bytes(payload, self.max_frame_bytes))
        await self._writer.drain()
        return await future

    async def query(self, sql: str, top_k: int | None = None) -> GatewayReply:
        """Execute one query; raises typed errors on rejection or failure.

        When tracing is enabled client-side inside an active span, the
        request frame carries the trace field so the gateway continues the
        client's trace instead of minting a fresh root.
        """
        request_id = next(self._ids)
        body = await self._request(
            encode_gateway_query(request_id, sql, top_k, trace=current_wire_trace()),
            request_id,
        )
        return GatewayReply.from_json(body)

    async def stats(self) -> dict[str, object]:
        """Fetch the gateway's live statistics payload."""
        request_id = next(self._ids)
        body = await self._request(encode_gateway_stats_request(request_id), request_id)
        return json.loads(body)

    async def traces(self, trace_id: int = 0, limit: int = 0) -> list[dict]:
        """Fetch recorded spans (gateway-local plus remote fleet spans)."""
        request_id = next(self._ids)
        body = await self._request(
            encode_gateway_traces_request(request_id, trace_id, limit), request_id
        )
        return json.loads(body)

    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, ConnectionError):
            pass


class GatewayClient:
    """A blocking, one-request-at-a-time gateway client (examples, tests).

    Uses the synchronous frame helpers of :mod:`repro.serving.protocol`
    over a plain socket; with a single outstanding request, responses
    arrive strictly in order, so no reader task is needed.
    """

    def __init__(
        self,
        host: str,
        port: int,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        timeout: float = 30.0,
    ) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._ids = itertools.count(1)

    def _request(self, payload: bytes) -> str:
        send_frame(self._sock, payload, self.max_frame_bytes)
        response = recv_frame(self._sock, self.max_frame_bytes)
        if response is None:
            raise RpcError("gateway closed the connection")
        _, body = read_gateway_response(response)
        return body

    def query(self, sql: str, top_k: int | None = None) -> GatewayReply:
        """Execute one query; raises typed errors on rejection or failure."""
        request_id = next(self._ids)
        return GatewayReply.from_json(
            self._request(
                encode_gateway_query(request_id, sql, top_k, trace=current_wire_trace())
            )
        )

    def stats(self) -> dict[str, object]:
        """Fetch the gateway's live statistics payload."""
        return json.loads(self._request(encode_gateway_stats_request(next(self._ids))))

    def traces(self, trace_id: int = 0, limit: int = 0) -> list[dict]:
        """Fetch recorded spans (gateway-local plus remote fleet spans)."""
        return json.loads(
            self._request(encode_gateway_traces_request(next(self._ids), trace_id, limit))
        )

    def close(self) -> None:
        """Close the connection."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "GatewayClient":
        """Enter a ``with`` block; the connection closes on exit."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Close the connection when the ``with`` block exits."""
        self.close()


# --------------------------------------------------------------------------
# Background-thread hosting (sync callers: examples, tests, notebooks)
# --------------------------------------------------------------------------


class GatewayHandle:
    """A gateway running on its own event-loop thread.

    Produced by :func:`start_gateway`; exposes the bound address and a
    thread-safe :meth:`stop`.
    """

    def __init__(
        self,
        gateway: ServingGateway,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        address: tuple[str, int],
    ) -> None:
        self.gateway = gateway
        self.address = address
        self._loop = loop
        self._thread = thread

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the gateway and join its loop thread (idempotent)."""
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(self.gateway.stop(), self._loop).result(timeout)
        self._thread.join(timeout)

    def __enter__(self) -> "GatewayHandle":
        """Enter a ``with`` block; the gateway stops on exit."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Stop the gateway when the ``with`` block exits."""
        self.stop()


def start_gateway(
    engine,
    host: str = "127.0.0.1",
    port: int = 0,
    startup_timeout: float = 10.0,
    **gateway_options,
) -> GatewayHandle:
    """Run a :class:`ServingGateway` on a daemon event-loop thread.

    The synchronous analog of ``await gateway.start(...)`` for callers
    without an event loop (examples, blocking clients, tests): returns
    once the listener is bound, with the address on the handle.  Keyword
    options are forwarded to :class:`ServingGateway`.
    """
    gateway = ServingGateway(engine, **gateway_options)
    started = threading.Event()
    state: dict[str, object] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        state["loop"] = loop

        async def main() -> None:
            try:
                await gateway.start(host, port)
                state["address"] = gateway.address
            except Exception as error:  # noqa: BLE001 - surfaced to the caller below
                state["error"] = error
                return
            finally:
                started.set()
            await gateway.wait_closed()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-gateway", daemon=True)
    thread.start()
    if not started.wait(startup_timeout):
        raise RpcError("gateway failed to start within the startup timeout")
    error = state.get("error")
    if error is not None:
        thread.join(startup_timeout)
        raise error  # type: ignore[misc]
    return GatewayHandle(gateway, state["loop"], thread, state["address"])
