"""Query plans and the SQL normalisation that keys the plan cache.

A :class:`QueryPlan` bundles everything about a query that does not depend
on the data being current: the parsed (entity-retargeted) statement, the
subjective predicate texts, and their interpretations.  Plans are cached
under :func:`normalize_sql` keys so textual variants of the same query
("SELECT * FROM Entities ..." vs "select  *  from entities ...") share one
plan; the data-dependent parts (candidate rows, membership degrees) are
recomputed or served from the membership cache per execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interpreter import Interpretation
from repro.engine.executor import SelectStatement
from repro.engine.sqlparser import _KEYWORDS

_QUOTES = ("'", '"')


def normalize_sql(sql: str) -> str:
    """Canonical cache key for a subjective-SQL string.

    Collapses runs of whitespace to single spaces and lowercases SQL
    *keywords* (which the parser treats case-insensitively), so formatting
    and keyword-casing variants map to the same plan.  Identifiers keep
    their case — column resolution is case-sensitive, so ``City`` and
    ``city`` are different queries and must not share a plan.  Quoted
    regions — string literals *and* subjective predicates, which are
    double-quoted natural language — are preserved byte-for-byte because
    predicate interpretation is case- and wording-sensitive.
    """
    out: list[str] = []
    word: list[str] = []
    quote: str | None = None
    pending_space = False

    def flush_word() -> None:
        """Emit the pending token, lowercased when it is a SQL keyword."""
        if word:
            token = "".join(word)
            out.append(token.lower() if token.lower() in _KEYWORDS else token)
            word.clear()

    for char in sql:
        if quote is not None:
            out.append(char)
            if char == quote:
                quote = None
            continue
        if char in _QUOTES:
            flush_word()
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(char)
            quote = char
            continue
        if char.isspace():
            flush_word()
            pending_space = True
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        if char.isalnum() or char == "_":
            word.append(char)
        else:
            flush_word()
            out.append(char)
    flush_word()
    return "".join(out)


@dataclass(frozen=True)
class QueryPlan:
    """A cached, reusable execution plan for one normalised query.

    ``data_version`` records the database state the interpretations were
    computed against; the serving engine drops plans wholesale when the
    version moves (interpretations read linguistic domains, review indexes
    and extraction statistics, all of which ingest can change).
    """

    normalized_sql: str
    statement: SelectStatement
    interpretations: dict[str, Interpretation]
    data_version: int

    @property
    def predicates(self) -> tuple[str, ...]:
        """The subjective predicate texts of the plan, in statement order."""
        return tuple(self.interpretations)
