"""Phrase banks and domain specifications for the synthetic review generators.

Every domain (hotels, restaurants) is described by a :class:`DomainSpec`: a
list of aspects, each with its aspect terms (the nouns reviewers use for it)
and an opinion-phrase bank stratified into five quality levels, from level 0
(terrible) to level 4 (excellent).  The banks deliberately include *negated
positive* phrasings at the low levels ("not clean at all", "never quiet") —
these contain the positive keyword and are exactly the cases where keyword
search (the IR baseline) is misled while OpineDB's sentiment-aware
aggregation is not, reproducing the failure mode discussed in Section 5.3
and Appendix D of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.markers import SummaryKind

#: Number of quality levels in every opinion bank (0 = worst, 4 = best).
NUM_LEVELS = 5


@dataclass(frozen=True)
class AspectSpec:
    """One subjective aspect of a domain.

    Attributes
    ----------
    attribute:
        The subjective-attribute name this aspect populates.
    aspect_terms:
        Nouns reviewers use to refer to the aspect.
    opinion_levels:
        Five lists of opinion phrases, index 0 = most negative, 4 = most
        positive.
    mention_probability:
        Chance that any given review mentions this aspect.
    kind:
        Whether the attribute's linguistic domain is linear or categorical.
    """

    attribute: str
    aspect_terms: tuple[str, ...]
    opinion_levels: tuple[tuple[str, ...], ...]
    mention_probability: float = 0.5
    kind: SummaryKind = SummaryKind.LINEAR

    def __post_init__(self) -> None:
        if len(self.opinion_levels) != NUM_LEVELS:
            raise ValueError(
                f"aspect {self.attribute!r} needs {NUM_LEVELS} opinion levels"
            )
        if not self.aspect_terms:
            raise ValueError(f"aspect {self.attribute!r} needs aspect terms")
        if not 0.0 < self.mention_probability <= 1.0:
            raise ValueError("mention_probability must be in (0, 1]")


@dataclass(frozen=True)
class ExperienceSpec:
    """An experiential phrase reviewers use when certain aspects are great.

    ``sentence`` is emitted into a review (with some probability) when the
    mean latent quality of ``attributes`` is high.  These sentences are what
    ground the co-occurrence interpretation method: "a perfect romantic
    getaway" co-occurs with exceptional service and luxurious bathrooms, so
    OpineDB can interpret the out-of-schema predicate from data alone.
    """

    sentence: str
    attributes: tuple[str, ...]
    quality_threshold: float = 0.62
    probability: float = 0.5


@dataclass(frozen=True)
class DomainSpec:
    """A full domain description: its aspects plus naming metadata."""

    name: str
    entity_key: str
    entity_label: str
    aspects: tuple[AspectSpec, ...]
    experiences: tuple[ExperienceSpec, ...] = ()

    def aspect(self, attribute: str) -> AspectSpec:
        for aspect in self.aspects:
            if aspect.attribute == attribute:
                return aspect
        raise KeyError(f"domain {self.name!r} has no aspect {attribute!r}")

    @property
    def attribute_names(self) -> list[str]:
        return [aspect.attribute for aspect in self.aspects]


# --------------------------------------------------------------------------
# Hotel domain: 15 subjective attributes (the paper reports 15 for hotels).
# --------------------------------------------------------------------------

_HOTEL_ASPECTS: tuple[AspectSpec, ...] = (
    AspectSpec(
        attribute="room_cleanliness",
        aspect_terms=("room", "rooms", "carpet", "bedroom", "suite", "floor"),
        opinion_levels=(
            ("filthy", "absolutely filthy", "disgusting", "never cleaned", "covered in grime"),
            ("dirty", "quite dirty", "stained", "dusty", "not clean", "not clean at all"),
            ("average", "reasonably clean", "acceptable", "nothing special", "fairly tidy"),
            ("clean", "very tidy", "well kept", "nice and clean", "pretty clean"),
            ("spotless", "very clean", "immaculate", "spotlessly clean", "extremely clean"),
        ),
        mention_probability=0.65,
    ),
    AspectSpec(
        attribute="bed_comfort",
        aspect_terms=("bed", "beds", "mattress", "pillow", "pillows"),
        opinion_levels=(
            ("horribly uncomfortable", "worn out", "broken springs", "awful"),
            ("too soft", "lumpy", "saggy", "uncomfortable", "not comfortable"),
            ("ok", "decent", "average", "firm enough"),
            ("comfortable", "comfy", "firm", "nice and soft"),
            ("extremely comfortable", "heavenly", "perfect firmness", "wonderfully soft"),
        ),
        mention_probability=0.5,
    ),
    AspectSpec(
        attribute="bathroom_style",
        aspect_terms=("bathroom", "shower", "bath", "faucet", "bathtub"),
        opinion_levels=(
            ("mouldy", "falling apart", "disgusting", "broken"),
            ("old", "dated", "worn", "old-fashioned", "outdated"),
            ("standard", "basic", "adequate", "ordinary"),
            ("modern", "stylish", "renovated", "nicely updated"),
            ("luxurious", "gorgeous", "marble and spotless", "stunning"),
        ),
        mention_probability=0.45,
        kind=SummaryKind.CATEGORICAL,
    ),
    AspectSpec(
        attribute="service",
        aspect_terms=("service", "reception", "front desk", "concierge", "check in"),
        opinion_levels=(
            ("appalling", "the worst", "unacceptable", "a nightmare"),
            ("slow", "rude", "unhelpful", "indifferent", "not helpful"),
            ("average", "ok", "acceptable", "fine"),
            ("good", "friendly", "helpful", "prompt", "attentive"),
            ("exceptional", "outstanding", "went above and beyond", "impeccable"),
        ),
        mention_probability=0.6,
    ),
    AspectSpec(
        attribute="staff",
        aspect_terms=("staff", "housekeeping", "porter", "manager", "team"),
        opinion_levels=(
            ("hostile", "incredibly rude", "awful"),
            ("rude", "unfriendly", "dismissive", "not friendly"),
            ("polite", "ok", "professional enough"),
            ("friendly", "very kind", "welcoming", "helpful"),
            ("wonderful", "exceptionally kind", "amazing", "truly caring"),
        ),
        mention_probability=0.55,
    ),
    AspectSpec(
        attribute="breakfast",
        aspect_terms=("breakfast", "buffet", "coffee", "morning meal"),
        opinion_levels=(
            ("inedible", "disgusting", "a disaster"),
            ("poor", "stale", "cold", "very limited", "not fresh"),
            ("average", "standard", "ok", "basic"),
            ("good", "tasty", "fresh", "plenty of choice", "good options"),
            ("delicious", "outstanding", "superb spread", "fantastic variety"),
        ),
        mention_probability=0.5,
    ),
    AspectSpec(
        attribute="location",
        aspect_terms=("location", "area", "neighborhood", "surroundings"),
        opinion_levels=(
            ("terrible", "dangerous", "awful"),
            ("inconvenient", "far from everything", "sketchy", "not great"),
            ("ok", "decent", "fine", "acceptable"),
            ("good", "convenient", "central", "great place", "close to everything"),
            ("perfect", "unbeatable", "right in the heart of the city", "amazing"),
        ),
        mention_probability=0.6,
    ),
    AspectSpec(
        attribute="room_quietness",
        aspect_terms=("room noise", "noise", "street noise", "walls", "soundproofing"),
        opinion_levels=(
            ("unbearably noisy", "constant noise", "impossible to sleep"),
            ("noisy", "loud", "traffic noise all night", "not quiet", "never quiet"),
            ("acceptable", "some noise", "mostly fine"),
            ("quiet", "peaceful", "calm", "quiet place"),
            ("very quiet", "perfectly silent", "wonderfully peaceful"),
        ),
        mention_probability=0.45,
    ),
    AspectSpec(
        attribute="wifi",
        aspect_terms=("wifi", "internet", "connection", "wi-fi"),
        opinion_levels=(
            ("useless", "never worked", "completely broken"),
            ("slow", "unreliable", "kept dropping", "not working"),
            ("ok", "adequate", "usable"),
            ("fast", "reliable", "good"),
            ("blazing fast", "excellent", "flawless"),
        ),
        mention_probability=0.35,
    ),
    AspectSpec(
        attribute="bar",
        aspect_terms=("bar", "lounge", "rooftop bar", "cocktails"),
        opinion_levels=(
            ("dreadful", "avoid it", "awful"),
            ("overpriced", "dull", "boring", "not worth it"),
            ("ok", "decent", "fine"),
            ("lively", "fun", "great cocktails", "nice atmosphere"),
            ("fantastic", "amazing vibe", "best rooftop in town", "buzzing"),
        ),
        mention_probability=0.3,
    ),
    AspectSpec(
        attribute="view",
        aspect_terms=("view", "window view", "balcony", "scenery"),
        opinion_levels=(
            ("depressing", "a brick wall", "awful"),
            ("disappointing", "nothing to see", "blocked", "not much of a view"),
            ("ok", "fine", "average"),
            ("nice", "lovely", "pretty", "great"),
            ("breathtaking", "stunning", "spectacular panorama", "unforgettable"),
        ),
        mention_probability=0.3,
    ),
    AspectSpec(
        attribute="value",
        aspect_terms=("price", "value", "rate", "cost"),
        opinion_levels=(
            ("a rip off", "outrageous", "daylight robbery"),
            ("overpriced", "too expensive", "poor value", "not worth the price"),
            ("fair", "reasonable", "ok"),
            ("good value", "affordable", "worth it"),
            ("a bargain", "incredible value", "unbeatable for the price"),
        ),
        mention_probability=0.45,
    ),
    AspectSpec(
        attribute="facilities",
        aspect_terms=("pool", "gym", "spa", "facilities", "sauna"),
        opinion_levels=(
            ("closed", "broken", "unusable"),
            ("tiny", "run down", "disappointing", "not maintained"),
            ("adequate", "ok", "standard"),
            ("good", "well equipped", "nice", "clean and modern"),
            ("world class", "superb", "luxurious", "outstanding"),
        ),
        mention_probability=0.35,
        kind=SummaryKind.CATEGORICAL,
    ),
    AspectSpec(
        attribute="parking",
        aspect_terms=("parking", "garage", "car park"),
        opinion_levels=(
            ("impossible", "a nightmare", "nonexistent"),
            ("expensive", "cramped", "hard to find", "not available"),
            ("ok", "adequate", "fine"),
            ("easy", "convenient", "plenty of space"),
            ("free and spacious", "perfect", "effortless"),
        ),
        mention_probability=0.25,
    ),
    AspectSpec(
        attribute="air_conditioning",
        aspect_terms=("air conditioning", "ac", "heating", "temperature"),
        opinion_levels=(
            ("broken", "did not work at all", "useless"),
            ("noisy", "weak", "unreliable", "not working properly"),
            ("ok", "adequate", "fine"),
            ("effective", "quiet and cool", "worked well"),
            ("perfect", "whisper quiet and icy cold", "excellent"),
        ),
        mention_probability=0.3,
    ),
)


# --------------------------------------------------------------------------
# Restaurant domain: 11 subjective attributes (the paper reports 11).
# --------------------------------------------------------------------------

_RESTAURANT_ASPECTS: tuple[AspectSpec, ...] = (
    AspectSpec(
        attribute="food_quality",
        aspect_terms=("food", "dishes", "meal", "cooking", "flavors"),
        opinion_levels=(
            ("inedible", "disgusting", "revolting"),
            ("bland", "greasy", "disappointing", "not fresh", "not tasty"),
            ("ok", "decent", "average", "fine"),
            ("tasty", "delicious", "fresh", "flavorful", "really good"),
            ("exceptional", "out of this world", "the best i have ever had", "divine"),
        ),
        mention_probability=0.8,
    ),
    AspectSpec(
        attribute="service",
        aspect_terms=("service", "server", "waiter", "waitress", "host"),
        opinion_levels=(
            ("appalling", "the worst service", "hostile"),
            ("slow", "rude", "inattentive", "not attentive", "forgot our order"),
            ("ok", "fine", "acceptable"),
            ("friendly", "attentive", "prompt", "helpful"),
            ("impeccable", "outstanding", "made us feel special"),
        ),
        mention_probability=0.65,
    ),
    AspectSpec(
        attribute="ambience",
        aspect_terms=("ambience", "atmosphere", "vibe", "decor", "music"),
        opinion_levels=(
            ("dreadful", "grim", "depressing"),
            ("noisy", "cramped", "chaotic", "too loud", "not relaxing"),
            ("ok", "casual", "fine"),
            ("cozy", "charming", "relaxing", "warm", "quiet place"),
            ("magical", "stunning", "absolutely enchanting", "romantic and intimate"),
        ),
        mention_probability=0.55,
    ),
    AspectSpec(
        attribute="value",
        aspect_terms=("price", "prices", "value", "bill", "cost"),
        opinion_levels=(
            ("a rip off", "outrageous", "insulting for the price"),
            ("overpriced", "expensive for what you get", "not worth it"),
            ("fair", "reasonable", "ok"),
            ("good value", "affordable", "worth every penny"),
            ("a steal", "incredible value", "unbeatable prices"),
        ),
        mention_probability=0.5,
    ),
    AspectSpec(
        attribute="cleanliness",
        aspect_terms=("restroom", "tables", "kitchen", "cutlery", "floor"),
        opinion_levels=(
            ("filthy", "disgusting", "health hazard"),
            ("dirty", "sticky", "grimy", "not clean"),
            ("acceptable", "ok", "fine"),
            ("clean", "tidy", "well kept", "spotless tables"),
            ("immaculate", "sparkling", "spotless"),
        ),
        mention_probability=0.35,
    ),
    AspectSpec(
        attribute="portions",
        aspect_terms=("portion", "portions", "serving", "servings"),
        opinion_levels=(
            ("microscopic", "a joke", "insultingly small"),
            ("small", "tiny", "skimpy", "not enough"),
            ("ok", "average", "adequate"),
            ("generous", "large", "hearty", "filling"),
            ("enormous", "huge", "impossible to finish"),
        ),
        mention_probability=0.4,
    ),
    AspectSpec(
        attribute="drinks",
        aspect_terms=("drinks", "cocktails", "wine", "wine list", "beer"),
        opinion_levels=(
            ("undrinkable", "awful", "terrible"),
            ("limited", "overpriced", "watered down", "not great"),
            ("ok", "decent", "standard"),
            ("good", "creative cocktails", "well curated", "excellent wine list"),
            ("phenomenal", "best cocktails in town", "world class"),
        ),
        mention_probability=0.35,
    ),
    AspectSpec(
        attribute="desserts",
        aspect_terms=("dessert", "desserts", "cake", "pastry", "sweets"),
        opinion_levels=(
            ("inedible", "stale", "awful"),
            ("dry", "bland", "disappointing", "not fresh"),
            ("ok", "fine", "average"),
            ("delicious", "heavenly", "lovely", "great"),
            ("unforgettable", "spectacular", "the best dessert ever"),
        ),
        mention_probability=0.3,
    ),
    AspectSpec(
        attribute="wait_time",
        aspect_terms=("wait", "wait time", "queue", "line", "seating time"),
        opinion_levels=(
            ("endless", "over two hours", "absurd"),
            ("long", "slow", "forty five minutes", "not quick"),
            ("ok", "reasonable", "expected"),
            ("short", "quick", "seated right away"),
            ("instant", "no wait at all", "walked straight in"),
        ),
        mention_probability=0.35,
    ),
    AspectSpec(
        attribute="staff",
        aspect_terms=("staff", "team", "manager", "chef", "kitchen staff"),
        opinion_levels=(
            ("hostile", "horrible", "aggressive"),
            ("rude", "unfriendly", "dismissive", "not welcoming"),
            ("polite", "ok", "professional"),
            ("friendly", "very kind", "welcoming", "very kind staff"),
            ("wonderful", "treated us like family", "amazing"),
        ),
        mention_probability=0.45,
    ),
    AspectSpec(
        attribute="seating",
        aspect_terms=("table", "tables", "seating", "chairs", "booth"),
        opinion_levels=(
            ("broken", "unbearable", "awful"),
            ("cramped", "uncomfortable", "wobbly", "too close together"),
            ("ok", "fine", "standard"),
            ("comfortable", "spacious", "cozy booths", "high chair for kids"),
            ("luxurious", "wonderfully comfortable", "perfect"),
        ),
        mention_probability=0.35,
        kind=SummaryKind.CATEGORICAL,
    ),
)


_HOTEL_EXPERIENCES: tuple[ExperienceSpec, ...] = (
    ExperienceSpec("a perfect romantic getaway", ("service", "bathroom_style")),
    ExperienceSpec("wonderful for our anniversary", ("service", "view")),
    ExperienceSpec("ideal for a business trip", ("wifi", "location")),
    ExperienceSpec("perfect for families with kids", ("staff", "facilities")),
    ExperienceSpec("slept like a baby every night", ("room_quietness", "bed_comfort")),
    ExperienceSpec("felt like a home away from home", ("staff", "service")),
    ExperienceSpec("plenty of eating options nearby", ("location", "breakfast")),
    ExperienceSpec("great base for exploring on a motorcycle", ("parking", "location")),
)

_RESTAURANT_EXPERIENCES: tuple[ExperienceSpec, ...] = (
    ExperienceSpec("a perfect spot for a romantic dinner", ("ambience", "service")),
    ExperienceSpec("great place to bring the kids for dinner", ("seating", "staff")),
    ExperienceSpec("lovely private dinner vibe", ("ambience",)),
    ExperienceSpec("ideal for a first date", ("ambience", "service")),
    ExperienceSpec("works really well for large groups", ("seating", "service")),
    ExperienceSpec("perfect for a quick lunch break", ("wait_time", "value")),
    ExperienceSpec("a hidden gem", ("food_quality", "value")),
    ExperienceSpec("celebrated a birthday here and it was wonderful", ("ambience", "desserts")),
)


def hotel_domain_spec() -> DomainSpec:
    """The hotel domain specification (15 subjective aspects)."""
    return DomainSpec(
        name="hotels",
        entity_key="hotelname",
        entity_label="hotel",
        aspects=_HOTEL_ASPECTS,
        experiences=_HOTEL_EXPERIENCES,
    )


def restaurant_domain_spec() -> DomainSpec:
    """The restaurant domain specification (11 subjective aspects)."""
    return DomainSpec(
        name="restaurants",
        entity_key="restaurantname",
        entity_label="restaurant",
        aspects=_RESTAURANT_ASPECTS,
        experiences=_RESTAURANT_EXPERIENCES,
    )
