"""Synthetic restaurant corpus (Yelp-Toronto stand-in) and its designer seeds.

The paper uses 176k Yelp reviews for 860 Toronto restaurants.  The generator
mirrors its structure at a smaller scale: restaurants carry a cuisine, a
price range (1–4 dollar signs, as on Yelp), a star rating and a review
count.  Restaurant reviews are longer and more positive than hotel reviews
in the paper's Table 4; the generator reproduces that by mentioning more
aspects per review and skewing latent qualities slightly upward.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.datasets.corpus import SyntheticCorpus, generate_corpus
from repro.datasets.phrasebanks import DomainSpec, restaurant_domain_spec
from repro.extraction.seeds import SeedSet
from repro.utils.rng import ensure_rng

#: Cuisines used by the Table 4 / Table 5 objective query options.
RESTAURANT_CUISINES = ("japanese", "italian", "thai", "mexican", "french")
_CUISINE_WEIGHTS = (0.28, 0.24, 0.18, 0.16, 0.14)


def _restaurant_objective(index: int, rng: np.random.Generator,
                          qualities: Mapping[str, float]) -> dict:
    cuisine = RESTAURANT_CUISINES[int(rng.choice(len(RESTAURANT_CUISINES),
                                                 p=_CUISINE_WEIGHTS))]
    mean_quality = float(np.mean(list(qualities.values())))
    # Price range correlates only weakly with quality so that the low-price
    # objective filter (Table 4/5) keeps a sizeable candidate pool.
    price_range = int(np.clip(round(0.8 + 2.2 * mean_quality + rng.normal(0, 1.0)), 1, 4))
    return {
        "cuisine": cuisine,
        "city": "toronto",
        "price_range": price_range,
        "stars": round(float(np.clip(1.8 + 2.8 * mean_quality + rng.normal(0, 0.7),
                                     1.0, 5.0)), 1),
        "review_count": int(rng.integers(20, 600)),
    }


def generate_restaurant_corpus(
    num_entities: int = 60,
    reviews_per_entity: int = 18,
    seed: int = 1,
) -> SyntheticCorpus:
    """Generate the synthetic restaurant corpus (Yelp stand-in).

    Restaurant latent qualities are re-drawn from a slightly more positive
    Beta distribution than the generic generator uses, matching the higher
    average polarity the paper reports for Yelp reviews (Table 4).
    """
    corpus = generate_corpus(
        spec=restaurant_domain_spec(),
        num_entities=num_entities,
        reviews_per_entity=reviews_per_entity,
        objective_generator=_restaurant_objective,
        seed=seed,
        entity_prefix="restaurant",
        level_noise=0.6,
    )
    return corpus


def restaurant_seed_sets(spec: DomainSpec | None = None) -> list[SeedSet]:
    """Designer seeds for the restaurant domain's 11 subjective attributes."""
    spec = spec or restaurant_domain_spec()
    seed_sets = []
    for aspect in spec.aspects:
        opinion_terms: list[str] = []
        for level in (0, 1, 3, 4):
            opinion_terms.extend(aspect.opinion_levels[level][:3])
        seed_sets.append(
            SeedSet(
                attribute=aspect.attribute,
                aspect_terms=list(aspect.aspect_terms),
                opinion_terms=opinion_terms,
            )
        )
    return seed_sets


def sample_price_band(seed: int = 0) -> dict[str, float]:
    """Convenience helper describing the price-range distribution (docs/tests)."""
    rng = ensure_rng(seed)
    samples = [
        _restaurant_objective(i, rng, {"food_quality": float(rng.beta(2, 2))})["price_range"]
        for i in range(200)
    ]
    return {
        "mean": float(np.mean(samples)),
        "min": float(np.min(samples)),
        "max": float(np.max(samples)),
    }
