"""ABSA-style tagged corpora for the extractor experiments (Table 6).

The paper evaluates its extractor on three SemEval ABSA datasets (laptops and
restaurants) and a 912-sentence Booking.com hotel dataset it labelled itself.
Those datasets cannot be redistributed, so this module generates synthetic
ABSA corpora with gold ``AS``/``OP`` token tags: sentences are composed from
aspect/opinion phrase banks through templates whose span positions are known
by construction.  Sizes of the four standard datasets match the paper's
Table 6 (3,841 / 3,845 / 2,000 / 912 sentences).

The generator injects realistic difficulty: distractor sentences with no
opinions, multi-aspect sentences, hedged opinions, and a configurable
fraction of out-of-bank opinion words so lexicon-only taggers cannot reach a
perfect score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.phrasebanks import (
    DomainSpec,
    hotel_domain_spec,
    restaurant_domain_spec,
)
from repro.extraction.tagger import TaggedSentence
from repro.utils.rng import ensure_rng

# A compact laptop domain used only for the SemEval-14 Laptop stand-in.
_LAPTOP_ASPECTS: tuple[tuple[str, tuple[str, ...], tuple[tuple[str, ...], ...]], ...] = (
    ("screen", ("screen", "display", "monitor"),
     (("cracked", "unusable"), ("dim", "washed out", "grainy"), ("ok", "decent"),
      ("sharp", "bright", "vivid"), ("gorgeous", "stunning", "flawless"))),
    ("battery", ("battery", "battery life", "charge"),
     (("dead", "useless"), ("short", "weak", "drains fast"), ("average", "ok"),
      ("long", "solid", "reliable"), ("incredible", "lasts all day"))),
    ("keyboard", ("keyboard", "keys", "trackpad"),
     (("broken", "unresponsive"), ("mushy", "cramped", "stiff"), ("fine", "usable"),
      ("comfortable", "responsive", "snappy"), ("perfect", "a joy to type on"))),
    ("performance", ("performance", "speed", "processor"),
     (("unbearable", "crashes constantly"), ("slow", "laggy", "sluggish"),
      ("adequate", "ok"), ("fast", "smooth", "snappy"), ("blazing fast", "flawless"))),
    ("build", ("build", "chassis", "hinge", "case"),
     (("falling apart", "flimsy"), ("creaky", "cheap feeling", "plasticky"),
      ("solid enough", "ok"), ("sturdy", "well built", "premium"),
      ("impeccable", "tank-like"))),
)

_FILLER_SENTENCES = (
    "i bought it last month from the online store",
    "we arrived late in the evening after a long flight",
    "my friend recommended this place a while ago",
    "it comes with a one year warranty",
    "the booking process was handled online",
    "we ordered at the counter and waited for our number",
)

_HEDGES = ("a wee bit", "a little", "somewhat", "kind of")


@dataclass(frozen=True)
class AbsaDataset:
    """A named tagged corpus split into train and test portions."""

    name: str
    train: tuple[TaggedSentence, ...]
    test: tuple[TaggedSentence, ...]

    @property
    def total(self) -> int:
        return len(self.train) + len(self.test)


def _spec_banks(domain: str) -> list[tuple[str, tuple[str, ...], tuple[tuple[str, ...], ...]]]:
    if domain == "laptop":
        return list(_LAPTOP_ASPECTS)
    spec: DomainSpec = hotel_domain_spec() if domain == "hotel" else restaurant_domain_spec()
    return [
        (aspect.attribute, aspect.aspect_terms, aspect.opinion_levels)
        for aspect in spec.aspects
    ]


def _compose(
    aspect_tokens: list[str],
    opinion_tokens: list[str],
    rng: np.random.Generator,
    hedge_probability: float,
) -> tuple[list[str], list[str]]:
    """Build one clause: tokens + gold tags for a single aspect/opinion pair."""
    if rng.random() < hedge_probability:
        hedge = _HEDGES[int(rng.integers(len(_HEDGES)))].split()
        opinion_tokens = hedge + opinion_tokens
    layout = int(rng.integers(3))
    if layout == 0:  # "the <aspect> was <opinion>"
        tokens = ["the", *aspect_tokens, "was", *opinion_tokens]
        tags = ["O"] + ["AS"] * len(aspect_tokens) + ["O"] + ["OP"] * len(opinion_tokens)
    elif layout == 1:  # "<opinion> <aspect>"
        tokens = [*opinion_tokens, *aspect_tokens]
        tags = ["OP"] * len(opinion_tokens) + ["AS"] * len(aspect_tokens)
    else:  # "<aspect> a bit <opinion> for the price"
        tokens = [*aspect_tokens, *opinion_tokens, "for", "sure"]
        tags = ["AS"] * len(aspect_tokens) + ["OP"] * len(opinion_tokens) + ["O", "O"]
    return tokens, tags


def generate_absa_dataset(
    domain: str,
    num_train: int,
    num_test: int,
    seed: int = 0,
    filler_fraction: float = 0.2,
    multi_aspect_fraction: float = 0.35,
    hedge_probability: float = 0.15,
) -> AbsaDataset:
    """Generate one tagged ABSA corpus.

    ``domain`` is ``"hotel"``, ``"restaurant"`` or ``"laptop"``.  A
    ``filler_fraction`` of the sentences carry no opinion at all, and a
    ``multi_aspect_fraction`` carry two aspect/opinion pairs in one sentence
    (the situation of the paper's Figure 6 example).
    """
    rng = ensure_rng(seed)
    banks = _spec_banks(domain)
    total = num_train + num_test
    sentences: list[TaggedSentence] = []
    for _ in range(total):
        draw = rng.random()
        if draw < filler_fraction:
            filler = _FILLER_SENTENCES[int(rng.integers(len(_FILLER_SENTENCES)))]
            tokens = filler.split()
            sentences.append(TaggedSentence(tuple(tokens), tuple(["O"] * len(tokens))))
            continue
        num_clauses = 2 if rng.random() < multi_aspect_fraction else 1
        tokens: list[str] = []
        tags: list[str] = []
        for clause_index in range(num_clauses):
            _name, aspect_terms, opinion_levels = banks[int(rng.integers(len(banks)))]
            aspect = aspect_terms[int(rng.integers(len(aspect_terms)))].split()
            level = int(rng.integers(5))
            options = opinion_levels[level]
            opinion = options[int(rng.integers(len(options)))].split()
            clause_tokens, clause_tags = _compose(aspect, opinion, rng, hedge_probability)
            if clause_index > 0:
                tokens.append(",")
                tags.append("O")
            tokens.extend(clause_tokens)
            tags.extend(clause_tags)
        sentences.append(TaggedSentence(tuple(tokens), tuple(tags)))
    rng.shuffle(sentences)
    return AbsaDataset(
        name=domain,
        train=tuple(sentences[:num_train]),
        test=tuple(sentences[num_train:num_train + num_test]),
    )


def standard_absa_datasets(seed: int = 0, scale: float = 1.0) -> list[AbsaDataset]:
    """The four Table-6 datasets at the paper's sizes (scaled by ``scale``).

    Returns datasets named after their paper counterparts:
    ``semeval14_restaurant`` (3,041/800), ``semeval14_laptop`` (3,045/800),
    ``semeval15_restaurant`` (1,315/685), ``booking_hotel`` (800/112).
    """
    def scaled(value: int) -> int:
        return max(20, int(round(value * scale)))

    blueprints = [
        ("semeval14_restaurant", "restaurant", 3041, 800),
        ("semeval14_laptop", "laptop", 3045, 800),
        ("semeval15_restaurant", "restaurant", 1315, 685),
        ("booking_hotel", "hotel", 800, 112),
    ]
    datasets = []
    for offset, (name, domain, train, test) in enumerate(blueprints):
        dataset = generate_absa_dataset(
            domain, scaled(train), scaled(test), seed=seed + offset
        )
        datasets.append(AbsaDataset(name=name, train=dataset.train, test=dataset.test))
    return datasets
