"""Synthetic datasets standing in for the paper's proprietary corpora.

The paper evaluates on the Booking.com hotel-review dump and a Toronto
subset of the Yelp dataset, plus SemEval ABSA corpora and an MTurk survey.
None of these can be redistributed here, so this package generates synthetic
equivalents with controlled ground truth:

* :mod:`repro.datasets.hotels` / :mod:`repro.datasets.restaurants` — review
  corpora where every entity has a latent quality per aspect and review
  sentences voice opinions correlated with those latent qualities (including
  negated phrasings that confuse keyword search, the paper's motivating
  failure mode for the IR baseline);
* :mod:`repro.datasets.semeval` — ABSA-style corpora with gold AS/OP token
  tags for the extractor experiments (Table 6);
* :mod:`repro.datasets.survey` — a simulated MTurk criteria survey
  (Table 3);
* :mod:`repro.datasets.queries` — the subjective query-predicate banks and
  the easy/medium/hard workload generator with a ground-truth ``sat(q, e)``
  oracle (Tables 5, 7, 8).
"""

from repro.datasets.phrasebanks import (
    AspectSpec,
    DomainSpec,
    hotel_domain_spec,
    restaurant_domain_spec,
)
from repro.datasets.corpus import SyntheticCorpus, SyntheticEntity, generate_corpus
from repro.datasets.hotels import generate_hotel_corpus, hotel_seed_sets
from repro.datasets.restaurants import generate_restaurant_corpus, restaurant_seed_sets
from repro.datasets.semeval import AbsaDataset, generate_absa_dataset, standard_absa_datasets
from repro.datasets.survey import SurveyResult, run_survey_simulation
from repro.datasets.queries import (
    PredicateSpec,
    QueryWorkload,
    SubjectiveQuery,
    hotel_predicate_bank,
    restaurant_predicate_bank,
    generate_workload,
    satisfaction_oracle,
)

__all__ = [
    "AspectSpec",
    "DomainSpec",
    "hotel_domain_spec",
    "restaurant_domain_spec",
    "SyntheticCorpus",
    "SyntheticEntity",
    "generate_corpus",
    "generate_hotel_corpus",
    "hotel_seed_sets",
    "generate_restaurant_corpus",
    "restaurant_seed_sets",
    "AbsaDataset",
    "generate_absa_dataset",
    "standard_absa_datasets",
    "SurveyResult",
    "run_survey_simulation",
    "PredicateSpec",
    "SubjectiveQuery",
    "QueryWorkload",
    "hotel_predicate_bank",
    "restaurant_predicate_bank",
    "generate_workload",
    "satisfaction_oracle",
]
