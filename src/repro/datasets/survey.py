"""Simulated search-criteria survey (Table 3, Section 5.1).

The paper asked 30 Mechanical Turk workers per domain to list the 7 criteria
(other than cost) they value most when choosing a hotel, restaurant,
vacation, college, home, career or car, then manually classified each
criterion as subjective or objective.  This module simulates that pipeline:
each domain has a bank of criteria pre-classified as subjective or objective
with empirical popularity weights calibrated so that the aggregate
subjective share matches the magnitudes reported in Table 3 (hotel ≈ 69%,
vacation ≈ 83%, car ≈ 56%, ...).  The simulation still runs the full
collect-classify-aggregate pipeline, so the harness exercises the same code
path the paper's analysis did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import ensure_rng

# (criterion, is_subjective, popularity weight)
_CRITERIA_BANKS: dict[str, list[tuple[str, bool, float]]] = {
    "Hotel": [
        ("cleanliness", True, 3.0), ("comfortable beds", True, 2.5),
        ("friendly staff", True, 2.2), ("good breakfast", True, 2.0),
        ("quiet rooms", True, 1.8), ("nice view", True, 1.2),
        ("overall atmosphere", True, 1.2), ("good service", True, 2.4),
        ("safety of the area", True, 1.4),
        ("location", False, 2.8), ("free wifi", False, 2.0),
        ("parking available", False, 1.4), ("pool", False, 1.0),
        ("pet friendly", False, 0.7), ("room size in sqm", False, 0.8),
    ],
    "Restaurant": [
        ("delicious food", True, 3.0), ("good service", True, 2.4),
        ("nice ambiance", True, 2.0), ("variety of menu", True, 1.6),
        ("portion size", True, 1.2), ("cleanliness", True, 1.6),
        ("romantic atmosphere", True, 0.8),
        ("cuisine type", False, 2.2), ("distance from home", False, 1.8),
        ("opening hours", False, 1.2), ("vegetarian options", False, 1.2),
        ("accepts reservations", False, 0.9),
    ],
    "Vacation": [
        ("good weather", True, 2.8), ("safety", True, 2.4),
        ("interesting culture", True, 2.2), ("nightlife", True, 1.6),
        ("relaxing beaches", True, 2.0), ("friendly locals", True, 1.6),
        ("beautiful scenery", True, 2.2), ("food scene", True, 1.8),
        ("direct flights", False, 1.2), ("visa requirements", False, 0.8),
        ("currency exchange rate", False, 0.7),
    ],
    "College": [
        ("dorm quality", True, 2.0), ("faculty quality", True, 2.6),
        ("campus diversity", True, 1.8), ("social life", True, 1.8),
        ("academic reputation", True, 2.2), ("career support", True, 1.6),
        ("class sizes", False, 1.6), ("tuition fees", False, 2.0),
        ("location", False, 1.6), ("available majors", False, 1.8),
    ],
    "Home": [
        ("spacious rooms", True, 2.4), ("good schools nearby", True, 2.2),
        ("quiet neighborhood", True, 2.2), ("safe area", True, 2.6),
        ("natural light", True, 1.4), ("charming character", True, 1.0),
        ("number of bedrooms", False, 2.4), ("lot size", False, 1.4),
        ("year built", False, 1.0), ("distance to work", False, 1.8),
    ],
    "Career": [
        ("work-life balance", True, 2.8), ("great colleagues", True, 2.2),
        ("company culture", True, 2.4), ("interesting work", True, 2.4),
        ("supportive manager", True, 1.8), ("growth opportunities", True, 2.0),
        ("salary", False, 2.8), ("remote policy", False, 1.6),
        ("commute time", False, 1.4), ("benefits package", False, 1.8),
    ],
    "Car": [
        ("comfortable ride", True, 2.4), ("safety", True, 2.6),
        ("reliability", True, 2.6), ("fun to drive", True, 1.4),
        ("stylish design", True, 1.4), ("quiet cabin", True, 1.2),
        ("smooth handling", True, 1.4),
        ("fuel economy", False, 2.4), ("cargo space", False, 1.6),
        ("number of seats", False, 1.6), ("warranty length", False, 1.2),
        ("horsepower", False, 1.2),
    ],
}


@dataclass(frozen=True)
class SurveyResult:
    """Aggregate of one domain's simulated survey."""

    domain: str
    num_workers: int
    num_criteria: int
    subjective_fraction: float
    subjective_examples: tuple[str, ...]

    @property
    def percent_subjective(self) -> float:
        return 100.0 * self.subjective_fraction


def run_survey_simulation(
    num_workers: int = 30,
    criteria_per_worker: int = 7,
    seed: int = 0,
    domains: list[str] | None = None,
) -> list[SurveyResult]:
    """Simulate the Table 3 survey and aggregate subjective shares per domain."""
    rng = ensure_rng(seed)
    results = []
    for domain in domains or list(_CRITERIA_BANKS):
        bank = _CRITERIA_BANKS[domain]
        weights = [weight for _criterion, _subjective, weight in bank]
        total = sum(weights)
        probabilities = [weight / total for weight in weights]
        subjective_count = 0
        total_count = 0
        example_counts: dict[str, int] = {}
        for _worker in range(num_workers):
            chosen = rng.choice(
                len(bank), size=min(criteria_per_worker, len(bank)),
                replace=False, p=probabilities,
            )
            for index in chosen:
                criterion, is_subjective, _weight = bank[int(index)]
                total_count += 1
                if is_subjective:
                    subjective_count += 1
                    example_counts[criterion] = example_counts.get(criterion, 0) + 1
        top_examples = tuple(
            criterion
            for criterion, _count in sorted(
                example_counts.items(), key=lambda item: (-item[1], item[0])
            )[:4]
        )
        results.append(
            SurveyResult(
                domain=domain,
                num_workers=num_workers,
                num_criteria=total_count,
                subjective_fraction=subjective_count / max(1, total_count),
                subjective_examples=top_examples,
            )
        )
    return results
