"""Generic synthetic review-corpus generator with latent ground truth.

Every synthetic entity has a latent quality in [0, 1] for each aspect of its
domain.  Reviews voice opinions whose polarity is sampled around the latent
quality, so the corpus has a known ground truth: "does hotel h really have
clean rooms?" is answered by the latent ``room_cleanliness`` quality of h.
The experiment harness uses this as the ``sat(q, e)`` oracle of Section 5.2.3
instead of the paper's manual labelling.

Reviews are composed of templated sentences.  The templates deliberately mix
direct opinions ("the room was spotless"), attributive phrasings ("spotless
room"), and negated positives at the low levels ("the room was not clean") —
the latter keep positive keywords in negative reviews, which is what defeats
keyword retrieval but not sentiment-aware aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

import numpy as np

from repro.core.database import ReviewRecord
from repro.datasets.phrasebanks import NUM_LEVELS, AspectSpec, DomainSpec
from repro.errors import DatasetError
from repro.utils.rng import ensure_rng

ObjectiveGenerator = Callable[[int, np.random.Generator, Mapping[str, float]], dict]

_SENTENCE_TEMPLATES = (
    "the {aspect} was {opinion}",
    "{opinion} {aspect}",
    "the {aspect} felt {opinion}",
    "we found the {aspect} {opinion}",
    "{aspect} was {opinion} during our stay",
)

_OPENERS = (
    "we stayed here last month",
    "visited with my family",
    "this was our second visit",
    "came here for a special occasion",
    "spent a few nights here",
    "stopped by on a weekend trip",
)

_CLOSERS_POSITIVE = (
    "overall we had a great time",
    "would definitely recommend",
    "we will be back",
    "a lovely experience overall",
)

_CLOSERS_NEGATIVE = (
    "overall quite disappointing",
    "would not recommend",
    "we will not be coming back",
    "a frustrating experience overall",
)


@dataclass(frozen=True)
class SyntheticEntity:
    """A generated entity: objective attributes plus latent aspect qualities."""

    entity_id: str
    objective: dict
    qualities: dict[str, float]

    def quality(self, attribute: str) -> float:
        """Latent quality of ``attribute`` in [0, 1] (ground truth)."""
        return self.qualities[attribute]


@dataclass
class SyntheticCorpus:
    """A generated corpus: domain spec, entities, reviews, and ground truth."""

    spec: DomainSpec
    entities: list[SyntheticEntity]
    reviews: list[ReviewRecord]
    seed: int

    _by_id: dict[str, SyntheticEntity] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_id = {entity.entity_id: entity for entity in self.entities}

    def entity(self, entity_id: Hashable) -> SyntheticEntity:
        try:
            return self._by_id[str(entity_id)]
        except KeyError:
            raise DatasetError(f"unknown synthetic entity: {entity_id!r}") from None

    def quality(self, entity_id: Hashable, attribute: str) -> float:
        """Ground-truth latent quality of (entity, attribute)."""
        return self.entity(entity_id).quality(attribute)

    def reviews_of(self, entity_id: Hashable) -> list[ReviewRecord]:
        return [review for review in self.reviews if review.entity_id == str(entity_id)]

    @property
    def num_reviews(self) -> int:
        return len(self.reviews)

    def entity_pairs(self) -> list[tuple[str, dict]]:
        """(entity_id, objective attributes) pairs in builder-ready form."""
        return [(entity.entity_id, dict(entity.objective)) for entity in self.entities]


def _sample_level(quality: float, rng: np.random.Generator, noise: float) -> int:
    """Map a latent quality in [0, 1] to a noisy discrete opinion level 0..4."""
    value = quality * (NUM_LEVELS - 1) + rng.normal(0.0, noise)
    return int(np.clip(round(value), 0, NUM_LEVELS - 1))


_NEGATED_TEMPLATES = (
    "the {aspect} was not {positive} at all",
    "the {aspect} was never {positive}",
    "{aspect} not {positive} and hardly acceptable",
)

#: Probability that a low-level (0 or 1) mention is voiced as a negated
#: positive phrase ("not clean at all") instead of a plain negative one.
NEGATED_POSITIVE_PROBABILITY = 0.35


def _aspect_sentence(
    aspect: AspectSpec, level: int, rng: np.random.Generator
) -> str:
    aspect_term = aspect.aspect_terms[int(rng.integers(len(aspect.aspect_terms)))]
    if level <= 1 and rng.random() < NEGATED_POSITIVE_PROBABILITY:
        # Negated positive phrasing: the sentence is negative but contains the
        # positive keyword, which is what misleads keyword retrieval (the IR
        # baseline) while sentiment-aware aggregation handles it correctly.
        positive_bank = aspect.opinion_levels[3] + aspect.opinion_levels[4]
        positive = positive_bank[int(rng.integers(len(positive_bank)))]
        template = _NEGATED_TEMPLATES[int(rng.integers(len(_NEGATED_TEMPLATES)))]
        return template.format(aspect=aspect_term, positive=positive)
    opinions = aspect.opinion_levels[level]
    opinion = opinions[int(rng.integers(len(opinions)))]
    template = _SENTENCE_TEMPLATES[int(rng.integers(len(_SENTENCE_TEMPLATES)))]
    return template.format(aspect=aspect_term, opinion=opinion)


def generate_corpus(
    spec: DomainSpec,
    num_entities: int,
    reviews_per_entity: int,
    objective_generator: ObjectiveGenerator,
    seed: int = 0,
    level_noise: float = 0.7,
    reviewer_pool: int | None = None,
    entity_prefix: str | None = None,
) -> SyntheticCorpus:
    """Generate a synthetic corpus for ``spec``.

    Parameters
    ----------
    num_entities / reviews_per_entity:
        Corpus size; the number of reviews per entity is Poisson-distributed
        around ``reviews_per_entity`` (minimum 3).
    objective_generator:
        Callable producing the objective attribute dict of entity ``i`` given
        the RNG and the entity's latent qualities (so objective attributes
        such as price can correlate with quality, as in real data).
    level_noise:
        Standard deviation of the noise between latent quality and the
        opinion level voiced in a review sentence.
    reviewer_pool:
        Number of distinct reviewers; defaults to ``3 × num_entities``.
        Reviewer assignment is Zipf-like so a few reviewers are prolific
        (supporting "reviewed at least 10 hotels" style qualifications).
    """
    if num_entities < 1 or reviews_per_entity < 1:
        raise DatasetError("corpus sizes must be positive")
    rng = ensure_rng(seed)
    prefix = entity_prefix or spec.entity_label
    reviewer_pool = reviewer_pool or max(3, 3 * num_entities)
    reviewer_weights = 1.0 / np.arange(1, reviewer_pool + 1)
    reviewer_weights /= reviewer_weights.sum()

    entities: list[SyntheticEntity] = []
    reviews: list[ReviewRecord] = []
    review_id = 0
    for index in range(num_entities):
        qualities = {
            aspect.attribute: float(np.clip(rng.beta(2.0, 2.0), 0.02, 0.98))
            for aspect in spec.aspects
        }
        objective = objective_generator(index, rng, qualities)
        entity_id = f"{prefix}_{index:04d}"
        entities.append(
            SyntheticEntity(entity_id=entity_id, objective=objective, qualities=qualities)
        )

        num_reviews = max(3, int(rng.poisson(reviews_per_entity)))
        for _ in range(num_reviews):
            sentences = [_OPENERS[int(rng.integers(len(_OPENERS)))]]
            mentioned_levels: list[int] = []
            for aspect in spec.aspects:
                if rng.random() > aspect.mention_probability:
                    continue
                level = _sample_level(qualities[aspect.attribute], rng, level_noise)
                mentioned_levels.append(level)
                sentences.append(_aspect_sentence(aspect, level, rng))
            if not mentioned_levels:
                aspect = spec.aspects[int(rng.integers(len(spec.aspects)))]
                level = _sample_level(qualities[aspect.attribute], rng, level_noise)
                mentioned_levels.append(level)
                sentences.append(_aspect_sentence(aspect, level, rng))
            # Experiential sentences ("a perfect romantic getaway") appear in
            # reviews of entities whose underlying aspects are genuinely good;
            # they ground the co-occurrence interpretation method.
            for experience in spec.experiences:
                mean_quality = float(
                    np.mean([qualities[a] for a in experience.attributes])
                )
                if mean_quality >= experience.quality_threshold and \
                        rng.random() < experience.probability:
                    sentences.append(experience.sentence)
            mean_level = float(np.mean(mentioned_levels))
            if mean_level >= 2.5:
                sentences.append(_CLOSERS_POSITIVE[int(rng.integers(len(_CLOSERS_POSITIVE)))])
            elif mean_level <= 1.5:
                sentences.append(_CLOSERS_NEGATIVE[int(rng.integers(len(_CLOSERS_NEGATIVE)))])
            rating = float(np.clip(1.0 + mean_level + rng.normal(0.0, 0.4), 1.0, 5.0))
            reviewer = f"reviewer_{int(rng.choice(reviewer_pool, p=reviewer_weights)):05d}"
            reviews.append(
                ReviewRecord(
                    review_id=review_id,
                    entity_id=entity_id,
                    text=". ".join(sentences) + ".",
                    reviewer_id=reviewer,
                    rating=rating,
                    year=int(rng.integers(2008, 2019)),
                    helpful_votes=int(rng.poisson(1.2)),
                )
            )
            review_id += 1
    return SyntheticCorpus(spec=spec, entities=entities, reviews=reviews, seed=seed)
