"""Subjective query-predicate banks and workload generation (Section 5.2.2).

The paper collected 190 subjective query predicates for hotels and 185 for
restaurants, then built query workloads as uniform random conjunctions of 2
(easy), 4 (medium) or 7 (hard) predicates, each further extended with one of
two objective options per domain (London < $300 / Amsterdam; low-price /
Japanese cuisine).  This module reproduces that setup:

* predicate banks are generated from the domain phrase banks (positive
  phrasings of each aspect) plus a hand-written set of out-of-schema
  predicates ("is a romantic getaway") that exercise the co-occurrence and
  text-retrieval interpretation paths;
* every predicate carries its gold attribute(s) so the Table 8 experiment
  can score interpretation accuracy and the ``sat(q, e)`` oracle can judge
  result quality against the synthetic corpora's latent ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import SubjectiveQueryBuilder
from repro.datasets.corpus import SyntheticCorpus
from repro.datasets.phrasebanks import DomainSpec, hotel_domain_spec, restaurant_domain_spec
from repro.errors import DatasetError
from repro.utils.rng import ensure_rng

#: Number of subjective conjuncts per difficulty level (Section 5.2.2).
DIFFICULTY_CONJUNCTS = {"easy": 2, "medium": 4, "hard": 7}


@dataclass(frozen=True)
class PredicateSpec:
    """One subjective query predicate with its gold interpretation.

    ``attributes`` lists the subjective attributes the predicate is about
    (usually one; out-of-schema predicates may map to several proxies).
    ``in_schema`` is False for predicates whose wording is far from any
    linguistic variation, i.e. the cases that should exercise the
    co-occurrence or text-retrieval fallback.
    """

    text: str
    attributes: tuple[str, ...]
    polarity: float = 1.0
    in_schema: bool = True

    @property
    def primary_attribute(self) -> str:
        return self.attributes[0]


@dataclass(frozen=True)
class SubjectiveQuery:
    """One generated workload query."""

    sql: str
    predicates: tuple[PredicateSpec, ...]
    difficulty: str
    option: str
    domain: str


@dataclass
class QueryWorkload:
    """A set of generated queries for one (domain, option, difficulty) cell."""

    domain: str
    option: str
    difficulty: str
    queries: list[SubjectiveQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


_PREDICATE_TEMPLATES = (
    "has {opinion} {aspect}",
    "with {opinion} {aspect}",
    "{opinion} {aspect}",
    "looking for {opinion} {aspect}",
)

# Out-of-schema predicates: wording far from the linguistic domains, with the
# proxy attributes the paper's co-occurrence method should discover.
_HOTEL_SPECIAL = (
    PredicateSpec("is a romantic getaway", ("service", "bathroom_style"), in_schema=False),
    PredicateSpec("hotel for our anniversary", ("service", "view"), in_schema=False),
    PredicateSpec("good for a business trip", ("wifi", "location"), in_schema=False),
    PredicateSpec("perfect for families with kids", ("staff", "facilities"), in_schema=False),
    PredicateSpec("a lively bar scene", ("bar",), in_schema=False),
    PredicateSpec("easy to get a good night of sleep", ("room_quietness", "bed_comfort"), in_schema=False),
    PredicateSpec("feels like a home away from home", ("staff", "service"), in_schema=False),
    PredicateSpec("great for motorcyclists", ("parking", "location"), in_schema=False),
    PredicateSpec("multiple eating options nearby", ("location", "breakfast"), in_schema=False),
    PredicateSpec("a quiet place to work remotely", ("room_quietness", "wifi"), in_schema=False),
)

_RESTAURANT_SPECIAL = (
    PredicateSpec("a romantic dinner spot", ("ambience", "service"), in_schema=False),
    PredicateSpec("dinner with kids", ("seating", "staff"), in_schema=False),
    PredicateSpec("private dinner vibe", ("ambience",), in_schema=False),
    PredicateSpec("good for a first date", ("ambience", "service"), in_schema=False),
    PredicateSpec("great for large groups", ("seating", "service"), in_schema=False),
    PredicateSpec("close to public transportation", ("value", "wait_time"), in_schema=False),
    PredicateSpec("perfect for a quick lunch break", ("wait_time", "value"), in_schema=False),
    PredicateSpec("a hidden gem", ("food_quality", "value"), in_schema=False),
    PredicateSpec("ideal for celebrating a birthday", ("ambience", "desserts"), in_schema=False),
)


def _bank_from_spec(
    spec: DomainSpec,
    specials: tuple[PredicateSpec, ...],
    target_size: int,
    per_attribute: int,
) -> list[PredicateSpec]:
    predicates: list[PredicateSpec] = []
    seen: set[str] = set()
    for aspect in spec.aspects:
        produced = 0
        positive_phrases = list(aspect.opinion_levels[4]) + list(aspect.opinion_levels[3])
        for opinion in positive_phrases:
            for template in _PREDICATE_TEMPLATES:
                if produced >= per_attribute:
                    break
                aspect_term = aspect.aspect_terms[produced % len(aspect.aspect_terms)]
                text = template.format(opinion=opinion, aspect=aspect_term)
                if text in seen:
                    continue
                seen.add(text)
                predicates.append(
                    PredicateSpec(text=text, attributes=(aspect.attribute,))
                )
                produced += 1
            if produced >= per_attribute:
                break
    predicates.extend(specials)
    if len(predicates) < target_size:
        raise DatasetError(
            f"predicate bank too small: {len(predicates)} < {target_size}"
        )
    return predicates[:target_size]


def hotel_predicate_bank() -> list[PredicateSpec]:
    """190 hotel query predicates (Section 5.2.2), gold-labelled by attribute."""
    return _bank_from_spec(hotel_domain_spec(), _HOTEL_SPECIAL,
                           target_size=190, per_attribute=12)


def restaurant_predicate_bank() -> list[PredicateSpec]:
    """185 restaurant query predicates, gold-labelled by attribute."""
    return _bank_from_spec(restaurant_domain_spec(), _RESTAURANT_SPECIAL,
                           target_size=185, per_attribute=16)


#: The objective query options of Table 4 / Table 5, per domain.
HOTEL_OPTIONS: dict[str, list[tuple[str, str, object]]] = {
    "london_under_300": [("city", "=", "london"), ("price_pn", "<", 300)],
    "amsterdam": [("city", "=", "amsterdam")],
}
RESTAURANT_OPTIONS: dict[str, list[tuple[str, str, object]]] = {
    "low_price": [("price_range", "=", 1)],
    "jp_cuisine": [("cuisine", "=", "japanese")],
}


def generate_workload(
    bank: list[PredicateSpec],
    option_name: str,
    option_conditions: list[tuple[str, str, object]],
    difficulty: str,
    num_queries: int,
    domain: str,
    table: str = "Entities",
    limit: int = 10,
    seed: int = 0,
) -> QueryWorkload:
    """Sample ``num_queries`` conjunctive queries for one workload cell.

    Each query is a uniform random sample (without replacement) of
    ``DIFFICULTY_CONJUNCTS[difficulty]`` predicates from the bank, extended
    with the objective conditions of the option, rendered to subjective SQL.
    """
    if difficulty not in DIFFICULTY_CONJUNCTS:
        raise DatasetError(f"unknown difficulty: {difficulty!r}")
    if not bank:
        raise DatasetError("empty predicate bank")
    rng = ensure_rng(seed)
    conjuncts = DIFFICULTY_CONJUNCTS[difficulty]
    workload = QueryWorkload(domain=domain, option=option_name, difficulty=difficulty)
    for _ in range(num_queries):
        indices = rng.choice(len(bank), size=min(conjuncts, len(bank)), replace=False)
        predicates = tuple(bank[int(index)] for index in indices)
        builder = SubjectiveQueryBuilder(table)
        for column, operator, value in option_conditions:
            builder.where_compare(column, operator, value)
        for predicate in predicates:
            builder.where_subjective(predicate.text)
        builder.limit(limit)
        workload.queries.append(
            SubjectiveQuery(
                sql=builder.to_sql(),
                predicates=predicates,
                difficulty=difficulty,
                option=option_name,
                domain=domain,
            )
        )
    return workload


def satisfaction_oracle(
    corpus: SyntheticCorpus,
    predicate: PredicateSpec,
    entity_id: object,
    threshold: float = 0.6,
) -> int:
    """Ground-truth ``sat(q, e)``: does the entity really satisfy the predicate?

    An entity satisfies a positive predicate when the mean latent quality of
    the predicate's gold attributes reaches ``threshold`` (0.6 by default —
    "clearly above average"), and a negative predicate when it stays below
    ``1 − threshold``.  This replaces the paper's manual labelling of
    sat(q, e) with the synthetic corpora's known ground truth.
    """
    qualities = [
        corpus.quality(entity_id, attribute)
        for attribute in predicate.attributes
        if attribute in corpus.spec.attribute_names
    ]
    if not qualities:
        return 0
    mean_quality = sum(qualities) / len(qualities)
    if predicate.polarity >= 0:
        return int(mean_quality >= threshold)
    return int(mean_quality <= 1.0 - threshold)
