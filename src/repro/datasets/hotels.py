"""Synthetic hotel corpus (Booking.com stand-in) and its designer seeds.

The paper's hotel dataset is the 515k-review Booking.com dump for 1,493
hotels in London and Amsterdam.  The generator mirrors its structure at a
configurable (much smaller) scale: hotels carry a city, nightly price, star
class and capacity; London hotels skew more expensive; the price per night
is positively correlated with the latent quality so that "rank by price"
(the ByPrice baseline) is informative but far from perfect — matching the
baseline orderings of Table 5.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.datasets.corpus import SyntheticCorpus, generate_corpus
from repro.datasets.phrasebanks import DomainSpec, hotel_domain_spec
from repro.extraction.seeds import SeedSet

#: Cities used by the Table 4 / Table 5 objective query options.
HOTEL_CITIES = ("london", "amsterdam", "paris")
_CITY_WEIGHTS = (0.5, 0.3, 0.2)


def _hotel_objective(index: int, rng: np.random.Generator,
                     qualities: Mapping[str, float]) -> dict:
    city = HOTEL_CITIES[int(rng.choice(len(HOTEL_CITIES), p=_CITY_WEIGHTS))]
    mean_quality = float(np.mean(list(qualities.values())))
    base_price = 90.0 if city != "london" else 130.0
    # Price is only loosely tied to quality (location, brand and season move
    # it as much), so the ByPrice baseline is informative but weak — as in
    # the paper's Table 5 where it trails every other method.
    price = base_price + 120.0 * mean_quality + float(rng.normal(0.0, 60.0))
    price = float(np.clip(price, 45.0, 650.0))
    stars = int(np.clip(round(1.0 + 4.0 * mean_quality + rng.normal(0, 0.8)), 1, 5))
    return {
        "city": city,
        "price_pn": round(price, 2),
        "stars": stars,
        "capacity": int(rng.integers(40, 400)),
        # The aggregate guest rating a booking site would display; a coarse,
        # noisy echo of the latent quality (used by the ByRating baseline).
        "rating": round(float(np.clip(2.5 + 6.0 * mean_quality + rng.normal(0, 1.1),
                                      1.0, 10.0)), 1),
    }


def generate_hotel_corpus(
    num_entities: int = 60,
    reviews_per_entity: int = 30,
    seed: int = 0,
) -> SyntheticCorpus:
    """Generate the synthetic hotel corpus (Booking.com stand-in)."""
    return generate_corpus(
        spec=hotel_domain_spec(),
        num_entities=num_entities,
        reviews_per_entity=reviews_per_entity,
        objective_generator=_hotel_objective,
        seed=seed,
        entity_prefix="hotel",
    )


def hotel_seed_sets(spec: DomainSpec | None = None) -> list[SeedSet]:
    """Designer seeds for the hotel domain's 15 subjective attributes.

    The seeds are the paper's (E, P) pairs of Section 4.2: a handful of
    aspect terms and opinion terms per attribute, taken from the domain's
    phrase banks (the designer would write these from domain knowledge; they
    amount to 277 seed phrases in the paper and a similar order here).
    """
    spec = spec or hotel_domain_spec()
    seed_sets = []
    for aspect in spec.aspects:
        opinion_terms: list[str] = []
        for level in (0, 1, 3, 4):
            opinion_terms.extend(aspect.opinion_levels[level][:3])
        seed_sets.append(
            SeedSet(
                attribute=aspect.attribute,
                aspect_terms=list(aspect.aspect_terms),
                opinion_terms=opinion_terms,
            )
        )
    return seed_sets
