"""Exception hierarchy shared by all repro subpackages.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish parse errors, schema errors, and query errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table or subjective schema is malformed or violated."""


class ParseError(ReproError):
    """A SQL / subjective-SQL string could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class ExecutionError(ReproError):
    """A parsed query could not be executed against the database."""


class InterpretationError(ReproError):
    """A subjective predicate could not be interpreted at all."""


class ExtractionError(ReproError):
    """The opinion-extraction pipeline was misused or failed."""


class NotFittedError(ReproError):
    """A model was used before it was trained."""


class DatasetError(ReproError):
    """A synthetic dataset generator was configured inconsistently."""


class SnapshotError(ReproError):
    """A packed column snapshot is malformed, truncated, or unsupported."""


class SnapshotIntegrityError(SnapshotError):
    """A packed column snapshot failed its checksum (corrupted in transit)."""


class StorageError(ReproError):
    """The persistent storage tier is missing, malformed, or inconsistent."""


class CatalogError(StorageError):
    """The storage catalog (SQLite) is missing, corrupt, or version-skewed."""
