"""repro — a reproduction of "Subjective Databases" (OpineDB, VLDB 2019).

The package implements the paper's subjective data model (linguistic
domains, markers, marker summaries), its query language and processor
(predicate interpretation, fuzzy combination, membership functions), the
construction pipeline (opinion extraction, attribute classification, marker
discovery, aggregation), the baselines of the evaluation, and synthetic
datasets plus an experiment harness that regenerates every table and figure
of the paper's evaluation section.  On top of the paper, ``repro.serving``
adds a production-style serving layer (plan/membership caches, batch
scoring, ``run_batch``) — see :class:`repro.serving.SubjectiveQueryEngine`.

Quick start::

    from repro.datasets import generate_hotel_corpus, hotel_seed_sets
    from repro.experiments.common import build_subjective_database
    from repro.core import SubjectiveQueryProcessor

    corpus = generate_hotel_corpus(num_entities=20, reviews_per_entity=15)
    database = build_subjective_database(corpus, hotel_seed_sets())
    processor = SubjectiveQueryProcessor(database)
    result = processor.execute(
        'select * from Entities where price_pn < 300 and "has really clean rooms" limit 5'
    )
    for entity in result:
        print(entity.entity_id, round(entity.score, 3))
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
