"""Per-query distributed tracing: contexts, spans, and the ring-buffer store.

A query acquires a :class:`TraceContext` (trace id, span id, parent id)
when it enters the gateway or an engine's ``execute``.  In-process the
context propagates through a :mod:`contextvars` variable, so nested
:func:`span` blocks parent themselves automatically; across the wire the
coordinator appends ``(trace_id, span_id)`` as an optional trailing
field on ``OP_SCORE`` / ``OP_SCORE_BOUNDED`` / ``OP_QUERY`` frames
(protocol v5 — v4 peers negotiate the field off at hello) and the remote
side records its spans with :func:`record_span`, parented on the
coordinator's span id, into its own process-global :class:`TraceStore`.
Stores are queryable over the ``OP_TRACES`` opcode, which is how the
coordinator assembles one cross-process span tree per trace id.

Tracing is **off by default** and every instrumentation point funnels
through :func:`span`, whose disabled path is a single flag test — the
``bench_obs_overhead`` benchmark gates the enabled warm path within 5%
of disabled.  Enable with :func:`enable_tracing` or ``REPRO_TRACE=1``
in the environment (forked workers and spawned nodes inherit either).
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import threading
from collections import deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Iterator

from repro.utils.timing import now

__all__ = [
    "SpanRecord",
    "TraceContext",
    "TraceStore",
    "activate",
    "current_context",
    "disable_tracing",
    "enable_tracing",
    "global_trace_store",
    "record_span",
    "span",
    "tracing_enabled",
]

TRACE_ENV_FLAG = "REPRO_TRACE"

# 63-bit ids: always positive, always fit the wire's u64 slot, and a
# zero id can therefore mean "absent" both on the wire and in records.
_ID_BITS = 63


def new_id() -> int:
    """A fresh non-zero 63-bit random id (trace or span)."""
    while True:
        value = random.getrandbits(_ID_BITS)
        if value:
            return value


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Identity of one span within one trace.

    ``trace_id`` names the query end to end; ``span_id`` names this
    stage; ``parent_id`` is the enclosing stage's span id (0 at the
    root).  Contexts are immutable — children are minted with
    :meth:`child`.
    """

    trace_id: int
    span_id: int
    parent_id: int = 0

    @classmethod
    def new_root(cls) -> "TraceContext":
        """Mint a fresh root context (new trace id, no parent)."""
        return cls(trace_id=new_id(), span_id=new_id(), parent_id=0)

    def child(self) -> "TraceContext":
        """Mint a child context: same trace, this span as parent."""
        return TraceContext(trace_id=self.trace_id, span_id=new_id(), parent_id=self.span_id)

    def wire_pair(self) -> tuple[int, int]:
        """The ``(trace_id, span_id)`` pair shipped in a frame's trace field."""
        return (self.trace_id, self.span_id)


@dataclass(slots=True)
class SpanRecord:
    """One finished span: identity, name, timing, and free-form attributes."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int
    start: float
    duration: float
    attrs: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """JSON-safe dict (the ``OP_TRACES`` payload / export row shape)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, row: dict[str, object]) -> "SpanRecord":
        """Rebuild a record from :meth:`as_dict` output."""
        return cls(
            name=str(row["name"]),
            trace_id=int(row["trace_id"]),  # type: ignore[arg-type]
            span_id=int(row["span_id"]),  # type: ignore[arg-type]
            parent_id=int(row["parent_id"]),  # type: ignore[arg-type]
            start=float(row["start"]),  # type: ignore[arg-type]
            duration=float(row["duration"]),  # type: ignore[arg-type]
            attrs=dict(row.get("attrs") or {}),  # type: ignore[arg-type]
        )


class TraceStore:
    """Bounded ring buffer of finished :class:`SpanRecord`\\ s.

    Oldest spans fall off when ``capacity`` is exceeded — tracing is a
    diagnostic window, not an archive.  Thread-safe: gateway, engine
    thread and node serve loops all record into the same store.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._spans: deque[SpanRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, record: SpanRecord) -> None:
        """Append one finished span (drops the oldest when full)."""
        with self._lock:
            self._spans.append(record)

    def spans(self, trace_id: int = 0, limit: int = 0) -> list[SpanRecord]:
        """Recorded spans, oldest first.

        ``trace_id`` filters to one trace (0 means all); ``limit`` keeps
        only the newest N matches (0 means no limit).
        """
        with self._lock:
            matched = [s for s in self._spans if not trace_id or s.trace_id == trace_id]
        if limit and len(matched) > limit:
            matched = matched[-limit:]
        return matched

    def trace_ids(self) -> list[int]:
        """Distinct trace ids currently buffered, oldest-trace first."""
        seen: dict[int, None] = {}
        with self._lock:
            for record in self._spans:
                seen.setdefault(record.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        """Drop every buffered span."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def to_json(self, trace_id: int = 0, limit: int = 0) -> str:
        """JSON array of span dicts (the ``OP_TRACES`` response payload)."""
        return json.dumps([s.as_dict() for s in self.spans(trace_id, limit)])

    def to_json_lines(self, trace_id: int = 0) -> str:
        """One span dict per line — the ``tools/trace_report.py`` input."""
        rows = [json.dumps(s.as_dict(), sort_keys=True) for s in self.spans(trace_id)]
        return "\n".join(rows) + ("\n" if rows else "")


_global_store = TraceStore()
_enabled = bool(os.environ.get(TRACE_ENV_FLAG, ""))

_current_context: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def global_trace_store() -> TraceStore:
    """The process-global store every :func:`span` records into."""
    return _global_store


def tracing_enabled() -> bool:
    """Whether spans are being minted and recorded in this process."""
    return _enabled


def enable_tracing(store: TraceStore | None = None) -> None:
    """Turn span recording on (optionally swapping the global store)."""
    global _enabled, _global_store
    if store is not None:
        _global_store = store
    _enabled = True


def disable_tracing() -> None:
    """Turn span recording off (the store keeps its buffered spans)."""
    global _enabled
    _enabled = False


def current_context() -> TraceContext | None:
    """The active span's context, or ``None`` outside any span."""
    return _current_context.get()


def current_wire_trace() -> tuple[int, int] | None:
    """The ``(trace_id, span_id)`` to stamp on an outgoing frame.

    ``None`` when tracing is off or no span is active — callers pass the
    result straight to the protocol encoders' ``trace=`` keyword.
    """
    if not _enabled:
        return None
    context = _current_context.get()
    if context is None:
        return None
    return context.wire_pair()


@contextmanager
def activate(context: TraceContext) -> Iterator[TraceContext]:
    """Make ``context`` current without recording a span.

    The cross-boundary hop primitive: the gateway's engine thread
    re-activates the context minted on the asyncio side, so spans opened
    during batch execution parent onto the request's root span.
    """
    token = _current_context.set(context)
    try:
        yield context
    finally:
        _current_context.reset(token)


class _SpanHandle:
    """The live object a ``with span(...)`` block binds; mutable attrs."""

    __slots__ = ("context", "attrs")

    def __init__(self, context: TraceContext, attrs: dict[str, object]) -> None:
        self.context = context
        self.attrs = attrs

    def set(self, key: str, value: object) -> None:
        """Attach or update one attribute on the span being recorded."""
        self.attrs[key] = value


@contextmanager
def _recording_span(name: str, attrs: dict[str, object]) -> Iterator[_SpanHandle]:
    parent = _current_context.get()
    context = parent.child() if parent is not None else TraceContext.new_root()
    handle = _SpanHandle(context, attrs)
    token = _current_context.set(context)
    start = now()
    try:
        yield handle
    finally:
        duration = now() - start
        _current_context.reset(token)
        _global_store.record(
            SpanRecord(
                name=name,
                trace_id=context.trace_id,
                span_id=context.span_id,
                parent_id=context.parent_id,
                start=start,
                duration=duration,
                attrs=attrs,
            )
        )


def span(name: str, **attrs: object):
    """Open a span named ``name``; a no-op context manager when disabled.

    Usage::

        with span("score", slice_id=3):
            ...

    When tracing is enabled the block's wall time is recorded into the
    global :class:`TraceStore`, parented on the enclosing span (a fresh
    root is minted when there is none).  When disabled the cost is this
    one flag test.
    """
    if not _enabled:
        return nullcontext()
    return _recording_span(name, attrs)


def record_span(
    name: str,
    trace_id: int,
    parent_id: int,
    duration: float,
    start: float | None = None,
    **attrs: object,
) -> SpanRecord:
    """Record an already-timed span with explicit identity (wire-side).

    Shard workers and cluster nodes call this with the ``(trace_id,
    span_id)`` pair parsed off an incoming frame as ``trace_id`` /
    ``parent_id``: the remote work becomes a child of the coordinator
    span that issued the request, in the *remote* process's store.
    Recording happens regardless of the local enable flag — the
    coordinator only stamps frames when its own tracing is on, so the
    flag travels with the traffic.
    """
    record = SpanRecord(
        name=name,
        trace_id=trace_id,
        span_id=new_id(),
        parent_id=parent_id,
        start=now() - duration if start is None else start,
        duration=duration,
        attrs=attrs,
    )
    _global_store.record(record)
    return record
